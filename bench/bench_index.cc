// Experiment E2 — Section 4's claim: the trajectory index answers
// "retrieve the objects for which currently lo < A < hi" with logarithmic
// access instead of examining all objects, and — unlike a plain spatial
// index over positions — never needs updating as time passes.
//
// Benchmarks:
//  * BM_IndexQuery vs BM_FullScanQuery — instantaneous range query cost as
//    the object count grows (shape: ~log n + answer vs ~n).
//  * BM_IndexMaintenance vs BM_NaiveReindexPerTick — cost of keeping the
//    structure usable over H ticks under a trickle of motion updates.
//  * BM_HorizonRebuild — the T ablation: smaller horizons mean more
//    frequent reconstruction (DESIGN.md's open question).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "index/trajectory_index.h"
#include "index/velocity_index.h"

namespace most {
namespace {

std::vector<DynamicAttribute> MakeAttributes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<DynamicAttribute> attrs;
  attrs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    attrs.emplace_back(rng.UniformDouble(-1000, 1000), 0,
                       TimeFunction::Linear(rng.UniformDouble(-2, 2)));
  }
  return attrs;
}

void BM_IndexQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto attrs = MakeAttributes(n, 1997);
  TrajectoryIndex index(0, {.horizon = 1024, .rtree_fanout = 16});
  for (size_t i = 0; i < n; ++i) {
    index.Upsert(static_cast<ObjectId>(i), attrs[i]);
  }
  Rng rng(7);
  size_t found = 0;
  size_t nodes = 0;
  size_t queries = 0;
  for (auto _ : state) {
    double lo = rng.UniformDouble(-1000, 990);
    Tick t = rng.UniformInt(0, 1023);
    auto result = index.QueryExact(lo, lo + 10, t);
    found += result.size();
    nodes += index.last_search_nodes();
    ++queries;
    benchmark::DoNotOptimize(result);
  }
  state.counters["avg_matches"] =
      static_cast<double>(found) / static_cast<double>(queries);
  state.counters["avg_rtree_nodes"] =
      static_cast<double>(nodes) / static_cast<double>(queries);
  state.counters["objects"] = static_cast<double>(n);
}
BENCHMARK(BM_IndexQuery)->RangeMultiplier(4)->Range(1024, 262144);

void BM_FullScanQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto attrs = MakeAttributes(n, 1997);
  Rng rng(7);
  size_t found = 0;
  for (auto _ : state) {
    double lo = rng.UniformDouble(-1000, 990);
    double hi = lo + 10;
    Tick t = rng.UniformInt(0, 1023);
    std::vector<ObjectId> result;
    for (size_t i = 0; i < n; ++i) {
      double v = attrs[i].ValueAt(t);
      if (lo <= v && v <= hi) result.push_back(static_cast<ObjectId>(i));
    }
    found += result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["objects"] = static_cast<double>(n);
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_FullScanQuery)->RangeMultiplier(4)->Range(1024, 262144);

// The paper's stated future work: "experimentally compare various
// mechanisms for indexing dynamic attributes". Mechanism 2: slope-bucketed
// B+-trees with query-range expansion. Same workload as BM_IndexQuery;
// the `dt` argument controls how far from the reference time queries land
// (expansion, and therefore candidate count, grows with dt).
void BM_VelocityIndexQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Tick dt = state.range(1);
  auto attrs = MakeAttributes(n, 1997);
  VelocityBucketIndex index(0, {.bucket_width = 0.5, .horizon = 1024});
  for (size_t i = 0; i < n; ++i) {
    index.Upsert(static_cast<ObjectId>(i), attrs[i]);
  }
  Rng rng(7);
  size_t found = 0, probed = 0, queries = 0;
  for (auto _ : state) {
    double lo = rng.UniformDouble(-1000, 990);
    auto result = index.QueryExact(lo, lo + 10, dt);
    found += result.size();
    probed += index.last_entries_probed();
    ++queries;
    benchmark::DoNotOptimize(result);
  }
  state.counters["avg_matches"] =
      static_cast<double>(found) / static_cast<double>(queries);
  state.counters["avg_entries_probed"] =
      static_cast<double>(probed) / static_cast<double>(queries);
  state.counters["dt"] = static_cast<double>(dt);
}
BENCHMARK(BM_VelocityIndexQuery)
    ->ArgsProduct({{65536, 262144}, {8, 128, 1023}});

// Maintenance over H ticks: the trajectory index is touched only by the
// motion updates (fraction `update_rate` of objects per tick).
void BM_IndexMaintenance(benchmark::State& state) {
  size_t n = 10000;
  double update_fraction =
      static_cast<double>(state.range(0)) / 10000.0;  // Per tick.
  auto attrs = MakeAttributes(n, 1997);
  for (auto _ : state) {
    state.PauseTiming();
    TrajectoryIndex index(0, {.horizon = 1024, .rtree_fanout = 16});
    for (size_t i = 0; i < n; ++i) {
      index.Upsert(static_cast<ObjectId>(i), attrs[i]);
    }
    Rng rng(13);
    state.ResumeTiming();
    uint64_t touches = 0;
    for (Tick t = 0; t < 256; ++t) {
      size_t updates = static_cast<size_t>(update_fraction * n);
      for (size_t u = 0; u < updates; ++u) {
        ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, n - 1));
        index.Upsert(id, DynamicAttribute(rng.UniformDouble(-1000, 1000), t,
                                          TimeFunction::Linear(
                                              rng.UniformDouble(-2, 2))));
        ++touches;
      }
    }
    state.counters["index_touches"] = static_cast<double>(touches);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexMaintenance)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// The strawman the paper rejects: a spatial index over current values must
// be rebuilt (or fully re-inserted) every tick because every value moved.
void BM_NaiveReindexPerTick(benchmark::State& state) {
  size_t n = 10000;
  auto attrs = MakeAttributes(n, 1997);
  for (auto _ : state) {
    uint64_t touches = 0;
    for (Tick t = 0; t < 8; ++t) {  // 8 ticks is already painful.
      TrajectoryIndex snapshot(t, {.horizon = 1, .rtree_fanout = 16});
      for (size_t i = 0; i < n; ++i) {
        // Index the *current position* only: value v at tick t, horizon 1.
        snapshot.Upsert(static_cast<ObjectId>(i),
                        DynamicAttribute(attrs[i].ValueAt(t), t,
                                         TimeFunction()));
        ++touches;
      }
      benchmark::DoNotOptimize(snapshot);
    }
    state.counters["index_touches_per_tick"] =
        static_cast<double>(touches) / 8.0;
  }
}
BENCHMARK(BM_NaiveReindexPerTick)->Unit(benchmark::kMillisecond);

// Ablation: time-slab width. slab = horizon reproduces the naive
// one-box-per-piece plot whose dead space makes the index useless; smaller
// slabs hug the trajectory line at the cost of more segments.
void BM_SlabAblation(benchmark::State& state) {
  Tick slab = state.range(0);
  size_t n = 65536;
  auto attrs = MakeAttributes(n, 1997);
  TrajectoryIndex index(0,
                        {.horizon = 1024, .rtree_fanout = 16,
                         .time_slab = slab});
  for (size_t i = 0; i < n; ++i) {
    index.Upsert(static_cast<ObjectId>(i), attrs[i]);
  }
  Rng rng(7);
  size_t nodes = 0, queries = 0;
  for (auto _ : state) {
    double lo = rng.UniformDouble(-1000, 990);
    Tick t = rng.UniformInt(0, 1023);
    auto result = index.QueryExact(lo, lo + 10, t);
    nodes += index.last_search_nodes();
    ++queries;
    benchmark::DoNotOptimize(result);
  }
  state.counters["slab"] = static_cast<double>(slab);
  state.counters["segments"] = static_cast<double>(index.num_segments());
  state.counters["avg_rtree_nodes"] =
      static_cast<double>(nodes) / static_cast<double>(queries);
}
BENCHMARK(BM_SlabAblation)->Arg(1024)->Arg(256)->Arg(64)->Arg(16);

// Construction strategy for the periodic horizon rebuild: one-at-a-time
// insertion (Guttman) vs. Sort-Tile-Recursive bulk loading.
void BM_RTreeConstruction(benchmark::State& state) {
  bool bulk = state.range(0) == 1;
  size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1997);
  std::vector<std::pair<RTreeBox<2>, ObjectId>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double t = rng.UniformDouble(0, 1024);
    double v = rng.UniformDouble(-1000, 1000);
    RTreeBox<2> box;
    box.min = {t, v};
    box.max = {t + 64, v + rng.UniformDouble(0, 128)};
    entries.emplace_back(box, static_cast<ObjectId>(i));
  }
  size_t nodes = 0;
  for (auto _ : state) {
    RTree<2, ObjectId> tree(16);
    if (bulk) {
      tree.BulkLoad(entries);
    } else {
      for (const auto& [box, id] : entries) tree.Insert(box, id);
    }
    // Probe query quality: packed trees should touch fewer nodes.
    tree.last_search_nodes = 0;
    RTreeBox<2> probe;
    probe.min = {512, 0};
    probe.max = {512, 10};
    tree.Search(probe, [](const RTreeBox<2>&, const ObjectId&) {});
    nodes = tree.last_search_nodes;
    benchmark::DoNotOptimize(tree);
  }
  state.counters["bulk"] = bulk ? 1 : 0;
  state.counters["probe_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_RTreeConstruction)
    ->ArgsProduct({{0, 1}, {100000}})
    ->Unit(benchmark::kMillisecond);

// Ablation: horizon T trades rebuild frequency against segment count.
void BM_HorizonRebuild(benchmark::State& state) {
  Tick horizon = state.range(0);
  size_t n = 10000;
  auto attrs = MakeAttributes(n, 1997);
  for (auto _ : state) {
    TrajectoryIndex index(0, {.horizon = horizon, .rtree_fanout = 16});
    for (size_t i = 0; i < n; ++i) {
      index.Upsert(static_cast<ObjectId>(i), attrs[i]);
    }
    uint64_t rebuilds = 0;
    for (Tick t = 0; t < 2048; t += 64) {
      if (index.NeedsRebuild(t)) {
        index.Rebuild(t);
        ++rebuilds;
      }
      auto r = index.QueryExact(0, 10, t);
      benchmark::DoNotOptimize(r);
    }
    state.counters["rebuilds"] = static_cast<double>(rebuilds);
    state.counters["segments"] = static_cast<double>(index.num_segments());
  }
}
BENCHMARK(BM_HorizonRebuild)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace most
