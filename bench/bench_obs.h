#ifndef MOST_BENCH_BENCH_OBS_H_
#define MOST_BENCH_BENCH_OBS_H_

// Shared plumbing for the BENCH_*.json emitters:
//
//  * every summary gains a "metrics" section — the global registry's JSON
//    snapshot, so a bench artifact carries the engine counters (cache
//    hits, WAL syncs, retransmissions, ...) that explain its numbers;
//  * each run can be appended to the committed result-trajectory files
//    under bench/trajectories/, one JSON array per benchmark, so headline
//    numbers are tracked across commits. The append is opt-in via
//    MOST_BENCH_TRAJECTORY_DIR (CI and developers point it at the repo's
//    bench/trajectories; ad-hoc runs leave the files alone). Trajectory
//    entries omit the bulky metrics section.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/exporters.h"
#include "obs/metrics.h"

namespace most::benchio {

// The global registry's metric series as a JSON array (the "metrics"
// member's value). JsonSnapshot renders {"metrics": [...]}; splice out the
// array so it can sit under the bench summary's own "metrics" key.
inline std::string MetricsJsonArray(const std::string& indent = "  ") {
  std::string snap = obs::JsonSnapshot(obs::MetricsRegistry::Global(), indent);
  size_t lo = snap.find('[');
  size_t hi = snap.rfind(']');
  if (lo == std::string::npos || hi == std::string::npos || hi < lo) {
    return "[]";
  }
  return snap.substr(lo, hi - lo + 1);
}

// Appends one run summary (a complete JSON object) to the trajectory
// array <MOST_BENCH_TRAJECTORY_DIR>/<name>.json. No-op when the env var
// is unset. An empty / missing / "[]" file starts a fresh array.
inline void AppendTrajectory(const std::string& name,
                             const std::string& entry) {
  const char* dir = std::getenv("MOST_BENCH_TRAJECTORY_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".json";
  std::string existing;
  {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    existing = ss.str();
  }
  std::string indented = "  ";
  for (char c : entry) {
    indented += c;
    if (c == '\n') indented += "  ";
  }
  while (!indented.empty() &&
         (indented.back() == ' ' || indented.back() == '\n')) {
    indented.pop_back();
  }
  size_t close = existing.rfind(']');
  std::ofstream out(path);
  if (close == std::string::npos) {
    out << "[\n" << indented << "\n]\n";
    return;
  }
  std::string head = existing.substr(0, close);
  while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
    head.pop_back();
  }
  if (head == "[") {
    out << "[\n" << indented << "\n]\n";
  } else {
    out << head << ",\n" << indented << "\n]\n";
  }
}

// Finishes a BENCH_*.json emission. `body` is the summary object WITHOUT
// its closing brace (trailing newline optional). Writes `path` with the
// metrics section appended as the last member, and records the plain
// summary (no metrics) on the benchmark's trajectory.
inline void FinishBenchJson(const std::string& path, const std::string& name,
                            std::string body) {
  while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
    body.pop_back();
  }
  {
    std::ofstream out(path);
    out << body << ",\n  \"metrics\": " << MetricsJsonArray("  ") << "\n}\n";
  }
  AppendTrajectory(name, body + "\n}\n");
}

}  // namespace most::benchio

#endif  // MOST_BENCH_BENCH_OBS_H_
