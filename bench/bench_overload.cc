// Experiment E9 — graceful degradation under overload (docs/robustness.md).
//
// A continuous query over a fleet is driven with an update storm at 1x,
// 4x and 16x a baseline rate, with and without the resource governor's
// refresh budget. The question the numbers answer: does the governor turn
// "p99 refresh latency grows with offered load" into "p99 stays bounded
// near the budget while the shed rate absorbs the excess"?
//
//  * BM_OverloadShed — interactive form: one (multiplier, governed) cell
//    per benchmark run, reporting shed_rate and p99 as counters.
//  * main() measures the full grid directly and writes
//    BENCH_overload.json (appended to bench/trajectories/overload.json
//    when MOST_BENCH_TRAJECTORY_DIR is set).
//
// The governed budget is sized relative to the machine -- 4x the measured
// warm mean refresh at 1x load, which clears the delta-path cost of
// moderate storms but not the full re-evaluation that a heavy storm
// forces -- so 1x/4x stay fresh while 16x must shed to hold the line. A
// fixed nanosecond constant would make the comparison meaningless across
// hosts.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_obs.h"
#include "common/rng.h"
#include "obs/governor.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "workload/fleet.h"

namespace most {
namespace {

constexpr Tick kHorizon = 256;
constexpr size_t kBaseUpdatesPerTick = 20;
constexpr int kTicks = 128;

size_t Vehicles() {
  if (const char* env = std::getenv("MOST_BENCH_VEHICLES")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return 300;
}

std::unique_ptr<MostDatabase> MakeWorld(size_t vehicles) {
  auto db = std::make_unique<MostDatabase>();
  FleetGenerator fleet({.num_vehicles = vehicles, .area = 1000.0,
                        .change_probability = 0.0, .seed = 1997});
  (void)fleet.Populate(db.get(), "CARS");
  (void)db->DefineRegion("P", Polygon::Rectangle({400, 400}, {600, 600}));
  return db;
}

struct CellResult {
  double p50_ms = 0;
  double p99_ms = 0;
  double shed_rate = 0;       ///< Shed refreshes / offered refreshes.
  size_t answer_rows = 0;
  uint64_t sheds = 0;
};

QueryManager::Options CommonOpts(bool governed) {
  QueryManager::Options opts;
  opts.horizon = kHorizon;
  // Let a 1x storm ride the delta path while heavy storms (most of the
  // fleet dirty every tick) fall back to full re-evaluation.
  opts.delta_max_dirty_fraction = 0.5;
  if (governed) {
    opts.refresh_queue_limit = 4;
    opts.degrade_cooldown_ticks = 2;
  }
  return opts;
}

/// Drives one grid cell: `multiplier` x the baseline update rate for
/// kTicks ticks against a fresh world, timing each per-tick refresh.
/// `budget_ns` == 0 means ungoverned. The budget is armed through the
/// process-global governor only after the initial evaluation has warmed
/// the answer and the cache: an SLO binds steady state, not boot.
CellResult RunCell(size_t vehicles, size_t multiplier, uint64_t budget_ns) {
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), CommonOpts(budget_ns > 0));
  auto query = ParseQuery("RETRIEVE o, n FROM CARS o, CARS n WHERE DIST(o, n) <= 15");
  auto cq = qm.RegisterContinuous(*query);
  for (int t = 0; t < 2; ++t) {
    db->clock().Advance();
    (void)qm.TickAll();
    (void)qm.ContinuousAnswer(*cq);
  }
  if (budget_ns > 0) {
    ResourceGovernor::Limits limits;
    limits.refresh_budget.deadline_ns = budget_ns;
    ResourceGovernor::Global().set_limits(limits);
  }

  Rng rng(1997 + multiplier);
  const size_t updates = kBaseUpdatesPerTick * multiplier;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kTicks);
  CellResult result;
  for (int tick = 0; tick < kTicks; ++tick) {
    for (size_t u = 0; u < updates; ++u) {
      ObjectId id = static_cast<ObjectId>(
          rng.UniformInt(0, static_cast<int64_t>(vehicles) - 1));
      (void)db->SetMotion(
          "CARS", id,
          {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)},
          {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)});
    }
    db->clock().Advance();
    auto t0 = std::chrono::steady_clock::now();
    (void)qm.TickAll();
    auto answer = qm.ContinuousAnswer(*cq);
    auto t1 = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
            t1 - t0).count()) * 1e-6);
    result.answer_rows = answer.ok() ? answer->size() : 0;
  }
  ResourceGovernor::Global().set_limits({});
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = latencies_ms[latencies_ms.size() / 2];
  result.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  result.sheds = qm.QueryDegradeInfo(*cq)->shed_refreshes;
  result.shed_rate =
      static_cast<double>(result.sheds) / static_cast<double>(kTicks);
  return result;
}

/// Mean warm ungoverned refresh time at 1x load (the delta path in steady
/// state): the yardstick the governed budget is derived from.
uint64_t BaselineRefreshNs(size_t vehicles) {
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), CommonOpts(false));
  auto query = ParseQuery("RETRIEVE o, n FROM CARS o, CARS n WHERE DIST(o, n) <= 15");
  auto cq = qm.RegisterContinuous(*query);
  for (int t = 0; t < 2; ++t) {
    db->clock().Advance();
    (void)qm.TickAll();
    (void)qm.ContinuousAnswer(*cq);
  }
  Rng rng(7);
  uint64_t total_ns = 0;
  constexpr int kProbeTicks = 16;
  for (int tick = 0; tick < kProbeTicks; ++tick) {
    for (size_t u = 0; u < kBaseUpdatesPerTick; ++u) {
      ObjectId id = static_cast<ObjectId>(
          rng.UniformInt(0, static_cast<int64_t>(vehicles) - 1));
      (void)db->SetMotion(
          "CARS", id,
          {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)},
          {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)});
    }
    db->clock().Advance();
    auto t0 = std::chrono::steady_clock::now();
    (void)qm.TickAll();
    auto t1 = std::chrono::steady_clock::now();
    total_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }
  (void)cq;
  return std::max<uint64_t>(total_ns / kProbeTicks, 1);
}

void BM_OverloadShed(benchmark::State& state) {
  const size_t vehicles = Vehicles();
  const size_t multiplier = static_cast<size_t>(state.range(0));
  const bool governed = state.range(1) != 0;
  const uint64_t budget =
      governed ? 4 * BaselineRefreshNs(vehicles) : 0;
  CellResult cell;
  for (auto _ : state) {
    cell = RunCell(vehicles, multiplier, budget);
  }
  state.counters["p99_ms"] = cell.p99_ms;
  state.counters["shed_rate"] = cell.shed_rate;
  state.counters["vehicles"] = static_cast<double>(vehicles);
}
BENCHMARK(BM_OverloadShed)
    ->ArgsProduct({{1, 4, 16}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void EmitBenchJson(const char* path) {
  const size_t vehicles = Vehicles();
  const uint64_t budget_ns = 4 * BaselineRefreshNs(vehicles);

  std::ostringstream out;
  out << "{\n"
      << "  \"benchmark\": \"overload\",\n"
      << "  \"query\": \"dist_join\",\n"
      << "  \"vehicles\": " << vehicles << ",\n"
      << "  \"base_updates_per_tick\": " << kBaseUpdatesPerTick << ",\n"
      << "  \"ticks\": " << kTicks << ",\n"
      << "  \"governed_budget_ns\": " << budget_ns << ",\n"
      << "  \"cells\": [\n";
  bool first = true;
  for (size_t multiplier : {1u, 4u, 16u}) {
    for (bool governed : {false, true}) {
      CellResult cell =
          RunCell(vehicles, multiplier, governed ? budget_ns : 0);
      if (!first) out << ",\n";
      first = false;
      out << "    {\"overload\": " << multiplier
          << ", \"governed\": " << (governed ? "true" : "false")
          << ", \"p50_ms\": " << cell.p50_ms
          << ", \"p99_ms\": " << cell.p99_ms
          << ", \"shed_rate\": " << cell.shed_rate
          << ", \"sheds\": " << cell.sheds
          << ", \"answer_rows\": " << cell.answer_rows << "}";
    }
  }
  out << "\n  ]";
  benchio::FinishBenchJson(path, "overload", out.str());
}

}  // namespace
}  // namespace most

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  most::EmitBenchJson("BENCH_overload.json");
  return 0;
}
