// Experiment E1 — the paper's motivating claim (Section 1): representing
// position as a motion vector needs far fewer updates (wireless messages)
// than keeping the position current by explicit updates.
//
// Three reporting policies over the same fleet trace:
//  * per_tick   — position transmitted every tick (the strawman).
//  * deadband   — dead-reckoning: position re-transmitted only when the
//                 true position deviates more than `threshold` from the
//                 last transmitted linear prediction (a common practical
//                 middle ground).
//  * motion_vec — the MOST policy: transmit only motion-vector changes.
//
// Expected shape: per_tick = N * H messages; motion_vec proportional to
// the number of velocity changes; deadband in between, approaching
// motion_vec as the threshold grows.

#include <benchmark/benchmark.h>

#include "workload/fleet.h"

namespace most {
namespace {

struct Policy {
  uint64_t messages = 0;
};

// Simulates H ticks of the fleet trace and counts messages per policy.
void SimulateUpdateCost(size_t vehicles, double change_prob, Tick horizon,
                        double deadband_threshold, uint64_t* per_tick,
                        uint64_t* deadband, uint64_t* motion_vec) {
  FleetGenerator fleet({.num_vehicles = vehicles,
                        .area = 2000.0,
                        .change_probability = change_prob,
                        .seed = 1997});
  auto updates = fleet.GenerateUpdates(horizon);

  *per_tick = static_cast<uint64_t>(vehicles) * static_cast<uint64_t>(horizon);
  *motion_vec = updates.size();

  // Deadband: per vehicle, walk the true piecewise trajectory and compare
  // against the last report's linear prediction.
  *deadband = 0;
  std::vector<std::vector<MotionUpdate>> per_vehicle(vehicles);
  for (const MotionUpdate& u : updates) {
    per_vehicle[u.id].push_back(u);
  }
  for (const ObjectState& start : fleet.initial_states()) {
    Point2 true_pos = start.position;
    Vec2 true_vel = start.velocity;
    Tick seg_at = 0;
    Point2 report_pos = start.position;
    Vec2 report_vel = start.velocity;
    Tick report_at = 0;
    *deadband += 1;  // Initial report.
    size_t next_update = 0;
    const auto& mine = per_vehicle[start.id];
    for (Tick t = 1; t <= horizon; ++t) {
      while (next_update < mine.size() && mine[next_update].at <= t) {
        true_pos = mine[next_update].position;
        true_vel = mine[next_update].velocity;
        seg_at = mine[next_update].at;
        ++next_update;
      }
      Point2 actual = true_pos + true_vel * static_cast<double>(t - seg_at);
      Point2 predicted =
          report_pos + report_vel * static_cast<double>(t - report_at);
      if (actual.DistanceTo(predicted) > deadband_threshold) {
        *deadband += 1;
        report_pos = actual;
        report_vel = true_vel;
        report_at = t;
      }
    }
  }
}

void BM_UpdateCost(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  double change_prob = static_cast<double>(state.range(1)) / 1000.0;
  Tick horizon = 1000;
  uint64_t per_tick = 0, deadband = 0, motion_vec = 0;
  for (auto _ : state) {
    SimulateUpdateCost(vehicles, change_prob, horizon, /*threshold=*/5.0,
                       &per_tick, &deadband, &motion_vec);
    benchmark::DoNotOptimize(motion_vec);
  }
  state.counters["msgs_per_tick_policy"] = static_cast<double>(per_tick);
  state.counters["msgs_deadband"] = static_cast<double>(deadband);
  state.counters["msgs_motion_vector"] = static_cast<double>(motion_vec);
  state.counters["savings_factor"] =
      static_cast<double>(per_tick) /
      std::max<double>(1.0, static_cast<double>(motion_vec));
}

// Sweep fleet size and motion-change probability (per mille per tick).
BENCHMARK(BM_UpdateCost)
    ->ArgsProduct({{100, 1000}, {2, 10, 50, 200}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace most
