// WAL append throughput: what durability costs. Axes:
//
//   * framing: v1 (length only) vs v2 (CRC32 per record) — the CRC's CPU
//     overhead on the commit path;
//   * durability: flush-only vs fdatasync-per-commit — the dominant cost,
//     orders of magnitude above the CRC.
//
// Emits BENCH_wal.json (ns per append for each configuration) after the
// google-benchmark run, for the results table in docs/durability.md.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "bench_obs.h"
#include "storage/wal.h"

namespace most {
namespace {

WalRecord SampleRecord() {
  WalRecord record;
  record.kind = WalRecord::Kind::kUpdate;
  record.table = "CARS";
  record.rid = 12345;
  record.row = {Value("AAA111"), Value(3.14159), Value(int64_t{42})};
  return record;
}

// Args: {format_version, sync_per_append}.
void BM_WalAppend(benchmark::State& state) {
  const int format_version = static_cast<int>(state.range(0));
  const bool sync = state.range(1) != 0;
  std::string path = "bench_wal_append.log";
  std::remove(path.c_str());
  WalWriter writer;
  WalWriter::Options options;
  options.format_version = format_version;
  if (!writer.Open(path, options).ok()) {
    state.SkipWithError("open failed");
    return;
  }
  WalRecord record = SampleRecord();
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.Append(record));
    if (sync) {
      benchmark::DoNotOptimize(writer.Sync());
    }
  }
  state.SetLabel(std::string("v") + std::to_string(format_version) +
                 (sync ? "+fdatasync" : "+flush"));
  state.SetItemsProcessed(state.iterations());
  writer.Close();
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppend)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({1, 1})
    ->Args({2, 1});

void BM_WalEncode(benchmark::State& state) {
  const int format_version = static_cast<int>(state.range(0));
  WalRecord record = SampleRecord();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeWalRecord(record, format_version));
  }
  state.SetLabel(format_version == 2 ? "crc32" : "length-only");
}
BENCHMARK(BM_WalEncode)->Arg(1)->Arg(2);

double MeasureNsPerOp(const std::function<void()>& op, int iters,
                      int batches = 3) {
  op();  // Warm-up.
  double best = std::numeric_limits<double>::infinity();
  for (int b = 0; b < batches; ++b) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) op();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()) /
                  iters);
  }
  return best;
}

}  // namespace

void EmitBenchJson(const char* out_path) {
  WalRecord record = SampleRecord();
  std::map<std::string, double> results;
  for (int version : {1, 2}) {
    for (bool sync : {false, true}) {
      std::string path = "bench_wal_emit.log";
      std::remove(path.c_str());
      WalWriter writer;
      WalWriter::Options options;
      options.format_version = version;
      if (!writer.Open(path, options).ok()) continue;
      // fdatasync configs get fewer iterations: each op is a disk flush.
      int iters = sync ? 50 : 5000;
      double ns = MeasureNsPerOp(
          [&] {
            (void)writer.Append(record);
            if (sync) (void)writer.Sync();
          },
          iters);
      results["append_v" + std::to_string(version) +
              (sync ? "_fdatasync" : "_flush")] = ns;
      writer.Close();
      std::remove(path.c_str());
    }
    double ns = MeasureNsPerOp(
        [&] { benchmark::DoNotOptimize(EncodeWalRecord(record, version)); },
        20000);
    results["encode_v" + std::to_string(version)] = ns;
  }

  std::ostringstream out;
  out << "{\n  \"benchmark\": \"wal_append\",\n";
  out << "  \"record_bytes\": " << EncodeWalRecord(record).size() << ",\n";
  size_t i = 0;
  for (const auto& [key, ns] : results) {
    out << "  \"" << key << "_ns\": " << ns
        << (++i == results.size() ? "\n" : ",\n");
  }
  benchio::FinishBenchJson(out_path, "wal", out.str());
}

}  // namespace most

// Custom main: run the registered benchmarks, then emit the summary that
// docs/durability.md's results table is built from.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  most::EmitBenchJson("BENCH_wal.json");
  return 0;
}
