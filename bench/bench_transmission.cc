// Experiment E8 — Section 5.2: immediate vs delayed transmission of
// Answer(CQ) to a mobile client, under client memory limits B and
// disconnection.
//
// Shape expectations from the paper's discussion:
//  * immediate/unlimited: 1 message, whole set; client buffers everything.
//  * immediate with memory B: ceil(|Answer|/B) block messages; client
//    buffer bounded by B.
//  * delayed: one message per tuple, each arriving exactly at its begin
//    time; minimal client memory, most messages, and the most exposure to
//    disconnection (a tuple missed while disconnected is simply never
//    displayed).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "distributed/transmission.h"

namespace most {
namespace {

std::vector<AnswerTuple> MakeAnswer(size_t tuples, uint64_t seed) {
  Rng rng(seed);
  std::vector<AnswerTuple> answer;
  for (size_t i = 0; i < tuples; ++i) {
    Tick begin = rng.UniformInt(1, 400);
    answer.push_back(
        {{static_cast<ObjectId>(i)},
         Interval(begin, begin + rng.UniformInt(2, 40))});
  }
  return answer;
}

struct RunResult {
  SimNetwork::Stats net;
  size_t peak_buffer = 0;
  uint64_t displayed_tuple_ticks = 0;
};

RunResult RunTransmission(TransmissionMode mode, size_t memory_limit,
                          size_t tuples, double disconnect_prob) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  NodeId server = net.AddNode(nullptr);
  AnswerClient client(&clock);
  NodeId client_node = net.AddNode(nullptr);
  client.Attach(&net, client_node);
  AnswerTransmitter tx(&net, &clock, server, client_node, 1,
                       {mode, memory_limit, 1});
  tx.SetAnswer(MakeAnswer(tuples, 1997));
  Rng rng(13);
  RunResult result;
  for (Tick t = 0; t <= 460; ++t) {
    clock.AdvanceTo(t);
    if (disconnect_prob > 0.0) {
      net.SetConnected(client_node, !rng.Bernoulli(disconnect_prob));
    }
    tx.Step();
    net.DeliverDue();
    client.Compact();
    result.displayed_tuple_ticks += client.Display().size();
  }
  result.net = net.stats();
  result.peak_buffer = client.peak_buffered();
  return result;
}

void BM_TransmissionModes(benchmark::State& state) {
  TransmissionMode mode = state.range(0) == 0 ? TransmissionMode::kImmediate
                                              : TransmissionMode::kDelayed;
  size_t memory_limit = static_cast<size_t>(state.range(1));
  size_t tuples = static_cast<size_t>(state.range(2));
  RunResult result;
  for (auto _ : state) {
    result = RunTransmission(mode, memory_limit, tuples, 0.0);
    benchmark::DoNotOptimize(result);
  }
  state.counters["messages"] =
      static_cast<double>(result.net.messages_sent);
  state.counters["bytes"] = static_cast<double>(result.net.bytes_sent);
  state.counters["client_peak_tuples"] =
      static_cast<double>(result.peak_buffer);
  state.counters["displayed_tuple_ticks"] =
      static_cast<double>(result.displayed_tuple_ticks);
  state.counters["mode_delayed"] = state.range(0);
  state.counters["memory_limit"] = static_cast<double>(memory_limit);
}
BENCHMARK(BM_TransmissionModes)
    ->ArgsProduct({{0, 1}, {0, 8, 64}, {64, 512}})
    ->Unit(benchmark::kMillisecond);

// Disconnection sensitivity: the delayed mode silently loses tuples whose
// transmission instant falls in a disconnected window; the immediate mode
// only risks the single bulk transfer.
void BM_TransmissionUnderDisconnection(benchmark::State& state) {
  TransmissionMode mode = state.range(0) == 0 ? TransmissionMode::kImmediate
                                              : TransmissionMode::kDelayed;
  double disconnect_prob = static_cast<double>(state.range(1)) / 100.0;
  RunResult result;
  for (auto _ : state) {
    result = RunTransmission(mode, 0, 256, disconnect_prob);
    benchmark::DoNotOptimize(result);
  }
  // Compare against the perfectly-connected run to expose display loss.
  RunResult clean = RunTransmission(mode, 0, 256, 0.0);
  state.counters["displayed_tuple_ticks"] =
      static_cast<double>(result.displayed_tuple_ticks);
  state.counters["display_loss_pct"] =
      100.0 *
      (1.0 - static_cast<double>(result.displayed_tuple_ticks) /
                 std::max<double>(1.0, static_cast<double>(
                                           clean.displayed_tuple_ticks)));
  state.counters["dropped_messages"] =
      static_cast<double>(result.net.dropped_total());
  state.counters["mode_delayed"] = state.range(0);
}
BENCHMARK(BM_TransmissionUnderDisconnection)
    ->ArgsProduct({{0, 1}, {0, 10, 30}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace most
