// Experiment E4 — Section 3.5 / appendix: the interval-relation algorithm
// evaluates an FTL query once, versus the naive semantics that would check
// the formula at every state of the history.
//
// Workload: the paper's example queries I, II, III (Section 3.4) over a
// moving fleet, for growing fleet sizes and history lengths. Expected
// shape: the interval evaluator is roughly independent of the history
// length H, while the naive evaluator grows superlinearly with H.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <thread>

#include "bench_obs.h"
#include "common/thread_pool.h"
#include "ftl/eval.h"
#include "ftl/interval_cache.h"
#include "ftl/naive_eval.h"
#include "ftl/parser.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "workload/fleet.h"

namespace most {
namespace {

std::unique_ptr<MostDatabase> MakeWorld(size_t vehicles) {
  auto db = std::make_unique<MostDatabase>();
  FleetGenerator fleet({.num_vehicles = vehicles, .area = 600.0,
                        .change_probability = 0.0, .seed = 1997});
  (void)fleet.Populate(db.get(), "CARS");
  (void)db->DefineRegion("P", Polygon::Rectangle({200, 200}, {400, 400}));
  (void)db->DefineRegion("Q", Polygon::Rectangle({450, 450}, {600, 600}));
  return db;
}

const char* kQueries[] = {
    // Paper query I.
    "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 30 INSIDE(o, P)",
    // Paper query II.
    "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 30 "
    "(INSIDE(o, P) AND ALWAYS FOR 20 INSIDE(o, P))",
    // Paper query III.
    "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 30 (INSIDE(o, P) AND "
    "ALWAYS FOR 20 INSIDE(o, P) AND EVENTUALLY AFTER 50 INSIDE(o, Q))",
};

void BM_IntervalEvaluator(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  Tick horizon = state.range(1);
  int query_idx = static_cast<int>(state.range(2));
  auto db = MakeWorld(vehicles);
  auto query = ParseQuery(kQueries[query_idx]);
  FtlEvaluator eval(*db);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = eval.EvaluateQuery(*query, Interval(0, horizon));
    rows = rel->rows.size();
    benchmark::DoNotOptimize(rel);
  }
  state.counters["answer_rows"] = static_cast<double>(rows);
  state.counters["H"] = static_cast<double>(horizon);
}
BENCHMARK(BM_IntervalEvaluator)
    ->ArgsProduct({{200, 1000}, {64, 256, 1024}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

void BM_NaiveEvaluator(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  Tick horizon = state.range(1);
  int query_idx = static_cast<int>(state.range(2));
  auto db = MakeWorld(vehicles);
  auto query = ParseQuery(kQueries[query_idx]);
  NaiveFtlEvaluator eval(*db);
  size_t rows = 0;
  for (auto _ : state) {
    auto rel = eval.EvaluateQuery(*query, Interval(0, horizon));
    rows = rel->rows.size();
    benchmark::DoNotOptimize(rel);
  }
  state.counters["answer_rows"] = static_cast<double>(rows);
  state.counters["H"] = static_cast<double>(horizon);
}
// The naive evaluator is O(N * H^2)-ish; keep the sweep smaller.
BENCHMARK(BM_NaiveEvaluator)
    ->ArgsProduct({{200}, {64, 256}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

// Section 4 + Section 3.5 combined: the same FTL query with the motion
// index pruning INSIDE candidates. The region covers ~11% of the area;
// trajectories that never sweep near it are skipped without any geometry.
void BM_IntervalEvaluatorWithIndex(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  bool use_index = state.range(1) == 1;
  auto db = MakeWorld(vehicles);
  MotionIndexManager manager(db.get(), {.horizon = 2048});
  if (use_index) {
    (void)manager.IndexClass("CARS");
  }
  auto query = ParseQuery(kQueries[0]);
  FtlEvaluator::Options opts;
  opts.motion_indexes = use_index ? &manager : nullptr;
  FtlEvaluator eval(*db, opts);
  for (auto _ : state) {
    eval.ResetStats();
    auto rel = eval.EvaluateQuery(*query, Interval(0, 256));
    benchmark::DoNotOptimize(rel);
    state.counters["pruned"] =
        static_cast<double>(eval.stats().index_pruned);
    state.counters["atomic_evals"] =
        static_cast<double>(eval.stats().atomic_evaluations);
  }
  state.counters["indexed"] = use_index ? 1 : 0;
}
BENCHMARK(BM_IntervalEvaluatorWithIndex)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Ablation: the AND semi-join (evaluate the selective INSIDE side first,
// restrict the expensive all-pairs DIST side to joinable objects).
void BM_SemijoinAblation(benchmark::State& state) {
  bool semijoin = state.range(0) == 1;
  auto db = MakeWorld(400);
  auto query = ParseQuery(
      "RETRIEVE o, n FROM CARS o, CARS n "
      "WHERE EVENTUALLY WITHIN 30 INSIDE(o, P) AND DIST(o, n) <= 40");
  FtlEvaluator eval(*db, {.enable_semijoin = semijoin});
  for (auto _ : state) {
    eval.ResetStats();
    auto rel = eval.EvaluateQuery(*query, Interval(0, 256));
    benchmark::DoNotOptimize(rel);
    state.counters["atomic_evals"] =
        static_cast<double>(eval.stats().atomic_evaluations);
  }
  state.counters["semijoin"] = semijoin ? 1 : 0;
}
BENCHMARK(BM_SemijoinAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Two-variable query Q from Section 3.2 (the DIST Until pair query):
// exercises the join machinery of the interval algorithm.
void BM_IntervalEvaluatorPairQuery(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(vehicles);
  auto query = ParseQuery(
      "RETRIEVE o, n FROM CARS o, CARS n "
      "WHERE DIST(o, n) <= 50 UNTIL (INSIDE(o, P) AND INSIDE(n, P))");
  FtlEvaluator eval(*db);
  for (auto _ : state) {
    auto rel = eval.EvaluateQuery(*query, Interval(0, 256));
    benchmark::DoNotOptimize(rel);
  }
  state.counters["pairs"] = static_cast<double>(vehicles * vehicles);
}
BENCHMARK(BM_IntervalEvaluatorPairQuery)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

// Parallel atomic extraction: query I over a large fleet, partitioned
// across a worker pool. threads == 1 is the exact serial path. Speedups
// require real cores; on a single-CPU container every configuration
// degrades to roughly serial time (the "hardware_threads" counter records
// what was available).
void BM_ParallelEval(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  size_t threads = static_cast<size_t>(state.range(1));
  auto db = MakeWorld(vehicles);
  auto query = ParseQuery(kQueries[0]);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  FtlEvaluator::Options opts;
  opts.pool = pool.get();
  FtlEvaluator eval(*db, opts);
  for (auto _ : state) {
    auto rel = eval.EvaluateQuery(*query, Interval(0, 256));
    benchmark::DoNotOptimize(rel);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelEval)
    ->ArgsProduct({{8192, 65536}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// Cache ablation: cold re-solves every object, warm answers from the
// atomic-interval cache (the continuous-query steady state, where only
// updated objects miss).
void BM_CachedEval(benchmark::State& state) {
  bool warm = state.range(0) == 1;
  auto db = MakeWorld(8192);
  auto query = ParseQuery(kQueries[0]);
  IntervalCache cache;
  FtlEvaluator::Options opts;
  opts.interval_cache = &cache;
  FtlEvaluator eval(*db, opts);
  for (auto _ : state) {
    if (!warm) cache.Clear();
    auto rel = eval.EvaluateQuery(*query, Interval(0, 256));
    benchmark::DoNotOptimize(rel);
  }
  state.counters["warm"] = warm ? 1 : 0;
  state.counters["cache_entries"] =
      static_cast<double>(cache.stats().entries);
}
BENCHMARK(BM_CachedEval)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

// ---------------------------------------------------------------------------
// Machine-readable summary: the headline configurations measured directly
// and written to BENCH_ftl_eval.json (consumed by CI dashboards / scripts,
// no benchmark-output parsing required).
// ---------------------------------------------------------------------------

namespace {

double MeasureNsPerOp(const std::function<void()>& op, int iters = 3) {
  op();  // Warm-up (also populates caches where the config wants that).
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    op();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()));
  }
  return best;
}

}  // namespace

void EmitBenchJson(const char* path) {
  size_t vehicles = 65536;
  if (const char* env = std::getenv("MOST_BENCH_VEHICLES")) {
    vehicles = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  const Interval window(0, 256);
  auto db = MakeWorld(vehicles);
  auto query = ParseQuery(kQueries[0]);

  auto eval_with = [&](ThreadPool* pool, IntervalCache* cache) {
    FtlEvaluator::Options opts;
    opts.pool = pool;
    opts.interval_cache = cache;
    FtlEvaluator eval(*db, opts);
    auto rel = eval.EvaluateQuery(*query, window);
    benchmark::DoNotOptimize(rel);
  };

  double serial_ns = MeasureNsPerOp([&] { eval_with(nullptr, nullptr); });
  std::map<size_t, double> parallel_ns;
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    parallel_ns[threads] =
        MeasureNsPerOp([&] { eval_with(&pool, nullptr); });
  }
  IntervalCache cache;
  double cold_ns = MeasureNsPerOp([&] {
    cache.Clear();
    eval_with(nullptr, &cache);
  });
  // MeasureNsPerOp's warm-up fills the cache; every timed run then hits.
  double warm_ns = MeasureNsPerOp([&] { eval_with(nullptr, &cache); });

  // Instrumentation overhead: the same serial evaluation with the metrics
  // registry armed vs. the MOST_METRICS=off kill switch. CI holds the
  // delta under 5%. The two sides are measured interleaved (armed,
  // disarmed, armed, ...) taking the best of each, so clock-frequency
  // drift or cache warm-up skews both equally instead of one side.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  auto time_once = [&] {
    auto t0 = std::chrono::steady_clock::now();
    eval_with(nullptr, nullptr);
    auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  };
  eval_with(nullptr, nullptr);  // Shared warm-up.
  double instrumented_ns = std::numeric_limits<double>::infinity();
  double uninstrumented_ns = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 7; ++round) {
    registry.set_enabled(true);
    instrumented_ns = std::min(instrumented_ns, time_once());
    registry.set_enabled(false);
    uninstrumented_ns = std::min(uninstrumented_ns, time_once());
  }
  registry.set_enabled(true);
  double overhead_pct =
      (instrumented_ns - uninstrumented_ns) / uninstrumented_ns * 100.0;

  // Tracing + telemetry overhead, measured the same interleaved way on
  // top of an armed registry: spans recording into the global ring plus
  // one per-tick telemetry sample, vs both subsystems disabled. CI holds
  // this delta under 5% too (the PR-10 acceptance bound).
  obs::TraceSink& sink = obs::TraceSink::Global();
  obs::TelemetryRecorder& telemetry = obs::TelemetryRecorder::Global();
  const bool sink_was_enabled = sink.enabled();
  const bool telemetry_was_enabled = telemetry.enabled();
  telemetry.Track("most_ftl_eval_total");
  Tick telemetry_tick = 1;
  auto time_once_traced = [&] {
    auto t0 = std::chrono::steady_clock::now();
    eval_with(nullptr, nullptr);
    telemetry.OnTick(telemetry_tick++);  // No-op when disabled.
    auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  };
  double traced_ns = std::numeric_limits<double>::infinity();
  double untraced_ns = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 7; ++round) {
    sink.set_enabled(true);
    telemetry.set_enabled(true);
    traced_ns = std::min(traced_ns, time_once_traced());
    sink.set_enabled(false);
    telemetry.set_enabled(false);
    untraced_ns = std::min(untraced_ns, time_once_traced());
  }
  sink.set_enabled(sink_was_enabled);
  telemetry.set_enabled(telemetry_was_enabled);
  double trace_overhead_pct =
      (traced_ns - untraced_ns) / untraced_ns * 100.0;

  std::ostringstream out;
  out << "{\n"
      << "  \"benchmark\": \"ftl_eval\",\n"
      << "  \"query\": \"paper_query_I\",\n"
      << "  \"vehicles\": " << vehicles << ",\n"
      << "  \"window\": [" << window.begin << ", " << window.end << "],\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"serial_ns_per_op\": " << serial_ns << ",\n"
      << "  \"parallel_ns_per_op\": {";
  bool first = true;
  for (const auto& [threads, ns] : parallel_ns) {
    out << (first ? "" : ", ") << "\"" << threads << "\": " << ns;
    first = false;
  }
  out << "},\n"
      << "  \"speedup_4_threads\": " << serial_ns / parallel_ns[4] << ",\n"
      << "  \"cache_cold_ns_per_op\": " << cold_ns << ",\n"
      << "  \"cache_warm_ns_per_op\": " << warm_ns << ",\n"
      << "  \"metrics_on_ns_per_op\": " << instrumented_ns << ",\n"
      << "  \"metrics_off_ns_per_op\": " << uninstrumented_ns << ",\n"
      << "  \"metrics_overhead_pct\": " << overhead_pct << ",\n"
      << "  \"trace_on_ns_per_op\": " << traced_ns << ",\n"
      << "  \"trace_off_ns_per_op\": " << untraced_ns << ",\n"
      << "  \"trace_overhead_pct\": " << trace_overhead_pct << "\n";
  benchio::FinishBenchJson(path, "ftl_eval", out.str());
}

}  // namespace most

// Custom main (this binary does not link benchmark_main): run the
// registered benchmarks, then emit the machine-readable summary.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  most::EmitBenchJson("BENCH_ftl_eval.json");
  return 0;
}
