// Extension experiment: the paper's opening query ("...from the nearest
// hospital?") answered over a future window. Compares the exact
// lower-envelope computation (one evaluation, interval answers — the MOST
// philosophy applied to nearest-neighbor) against re-running the
// instantaneous nearest-neighbor query at every tick.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ftl/nearest.h"

namespace most {
namespace {

std::unique_ptr<MostDatabase> MakeWorld(size_t hospitals, uint64_t seed) {
  auto db = std::make_unique<MostDatabase>();
  (void)db->CreateClass("HOSPITALS", {}, true);
  (void)db->CreateClass("CARS", {}, true);
  Rng rng(seed);
  for (size_t i = 0; i < hospitals; ++i) {
    auto obj = db->CreateObject("HOSPITALS");
    (void)db->SetMotion("HOSPITALS", (*obj)->id(),
                        {rng.UniformDouble(-1000, 1000),
                         rng.UniformDouble(-1000, 1000)},
                        {0, 0});
  }
  auto car = db->CreateObject("CARS");
  (void)db->SetMotion("CARS", (*car)->id(), {0, 0}, {2, 1});
  return db;
}

void BM_NearestOverWindowEnvelope(benchmark::State& state) {
  size_t hospitals = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(hospitals, 1997);
  auto cars = db->GetClass("CARS");
  const MostObject* car = &cars.value()->objects().begin()->second;
  size_t segments = 0;
  for (auto _ : state) {
    auto result = NearestOverWindow(*db, "HOSPITALS", *car, Interval(0, 512));
    segments = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["distinct_winners"] = static_cast<double>(segments);
  state.counters["hospitals"] = static_cast<double>(hospitals);
}
BENCHMARK(BM_NearestOverWindowEnvelope)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_NearestPerTickRescan(benchmark::State& state) {
  size_t hospitals = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(hospitals, 1997);
  auto cars = db->GetClass("CARS");
  const MostObject* car = &cars.value()->objects().begin()->second;
  for (auto _ : state) {
    ObjectId previous = kInvalidObjectId;
    size_t handovers = 0;
    for (Tick t = 0; t <= 512; ++t) {
      auto nearest = NearestNeighbor(*db, "HOSPITALS", *car, t);
      if (nearest->id != previous) {
        ++handovers;
        previous = nearest->id;
      }
      benchmark::DoNotOptimize(nearest);
    }
    state.counters["handovers"] = static_cast<double>(handovers);
  }
  state.counters["hospitals"] = static_cast<double>(hospitals);
}
BENCHMARK(BM_NearestPerTickRescan)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace most
