// Shard-per-core scaling (docs/sharding.md).
//
// A fleet world drives a continuous query through the sharded engine at
// shard counts 1/2/4/8: every tick enqueues a batch of motion updates
// (routed lock-free to owner shards), advances the clock, drains +
// refreshes every shard, and gathers the merged answer. The question the
// numbers answer: does per-tick latency drop as shards spread over real
// cores, while the single-shard configuration stays within the serial
// engine's envelope?
//
//  * BM_ShardScaling — interactive form: one shard count per run,
//    reporting per-tick p50/p99 and sustained updates/sec as counters.
//  * main() measures the full sweep directly and writes BENCH_shard.json
//    (appended to bench/trajectories/shard.json when
//    MOST_BENCH_TRAJECTORY_DIR is set). The summary records "cpus": on a
//    1-CPU container every shard count collapses to roughly serial time
//    (caller-participation scheduling, docs/parallel_eval.md), so scaling
//    claims are only meaningful where cpus >= shards.
//
// Workload knobs (defaults sized for CI; the committed trajectory run
// uses MOST_BENCH_VEHICLES=100000 MOST_BENCH_UPDATES=10000):
//   MOST_BENCH_VEHICLES  fleet size               (default 2000)
//   MOST_BENCH_UPDATES   motion updates per tick  (default vehicles/10)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "common/rng.h"
#include "core/sharded_engine.h"
#include "ftl/parser.h"
#include "workload/fleet.h"

namespace most {
namespace {

constexpr Tick kHorizon = 64;
constexpr int kTicks = 24;
constexpr double kArea = 1000.0;

size_t Vehicles() {
  if (const char* env = std::getenv("MOST_BENCH_VEHICLES")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return 2000;
}

size_t UpdatesPerTick(size_t vehicles) {
  if (const char* env = std::getenv("MOST_BENCH_UPDATES")) {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return std::max<size_t>(vehicles / 10, 1);
}

std::unique_ptr<MostDatabase> MakeWorld(size_t vehicles) {
  auto db = std::make_unique<MostDatabase>();
  FleetGenerator fleet({.num_vehicles = vehicles, .area = kArea,
                        .change_probability = 0.0, .seed = 1997});
  (void)fleet.Populate(db.get(), "CARS");
  (void)db->DefineRegion("P", Polygon::Rectangle({400, 400}, {600, 600}));
  return db;
}

struct CellResult {
  double p50_ms = 0;           ///< Per-tick drain+refresh+gather latency.
  double p99_ms = 0;
  double updates_per_sec = 0;  ///< Sustained enqueue->applied throughput.
  size_t answer_rows = 0;
  uint64_t delta_refreshes = 0;
  uint64_t full_refreshes = 0;
};

/// One sweep cell: `shards` shards over a fresh world, kTicks rounds of
/// enqueue -> Advance -> gather. The first two rounds warm the continuous
/// answer (registration full refresh + cache) and are not timed: the
/// steady-state delta path is what sharding is supposed to scale.
CellResult RunCell(size_t vehicles, size_t updates, size_t shards) {
  auto db = MakeWorld(vehicles);
  ShardedEngine::Options opt;
  opt.shard_count = shards;
  opt.query_options.horizon = kHorizon;
  opt.query_options.enable_interval_cache = true;
  ShardedEngine engine(db.get(), opt);
  auto query =
      ParseQuery("RETRIEVE o FROM CARS o WHERE EVENTUALLY INSIDE(o, P)");
  auto cq = engine.RegisterContinuous(*query);
  for (int t = 0; t < 2; ++t) {
    (void)engine.Advance(1);
    (void)engine.ContinuousAnswer(*cq);
  }

  // Same stream at every shard count: identical workload per cell, so
  // answer_rows agreeing across the sweep doubles as a cheap end-to-end
  // identity check of the gather.
  Rng rng(1997);
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kTicks);
  CellResult result;
  uint64_t total_ns = 0;
  for (int tick = 0; tick < kTicks; ++tick) {
    for (size_t u = 0; u < updates; ++u) {
      ObjectId id = static_cast<ObjectId>(
          rng.UniformInt(0, static_cast<int64_t>(vehicles) - 1));
      engine.EnqueueMotion(
          "CARS", id,
          {rng.UniformDouble(0, kArea), rng.UniformDouble(0, kArea)},
          {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)});
    }
    auto t0 = std::chrono::steady_clock::now();
    (void)engine.Advance(1);
    auto answer = engine.ContinuousAnswer(*cq);
    auto t1 = std::chrono::steady_clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    total_ns += ns;
    latencies_ms.push_back(static_cast<double>(ns) * 1e-6);
    result.answer_rows = answer.ok() ? answer->tuples.size() : 0;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = latencies_ms[latencies_ms.size() / 2];
  result.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  result.updates_per_sec =
      static_cast<double>(updates) * kTicks /
      (static_cast<double>(std::max<uint64_t>(total_ns, 1)) * 1e-9);
  QueryManager::RefreshCounters counters = engine.TotalRefreshCounters();
  result.delta_refreshes = counters.delta_evaluations;
  result.full_refreshes = counters.full_evaluations;
  return result;
}

void BM_ShardScaling(benchmark::State& state) {
  const size_t vehicles = Vehicles();
  const size_t updates = UpdatesPerTick(vehicles);
  const size_t shards = static_cast<size_t>(state.range(0));
  CellResult cell;
  for (auto _ : state) {
    cell = RunCell(vehicles, updates, shards);
  }
  state.counters["p50_ms"] = cell.p50_ms;
  state.counters["p99_ms"] = cell.p99_ms;
  state.counters["updates_per_sec"] = cell.updates_per_sec;
  state.counters["vehicles"] = static_cast<double>(vehicles);
}
BENCHMARK(BM_ShardScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void EmitBenchJson(const char* path) {
  const size_t vehicles = Vehicles();
  const size_t updates = UpdatesPerTick(vehicles);

  std::ostringstream out;
  out << "{\n"
      << "  \"benchmark\": \"shard\",\n"
      << "  \"query\": \"eventually_inside\",\n"
      << "  \"vehicles\": " << vehicles << ",\n"
      << "  \"updates_per_tick\": " << updates << ",\n"
      << "  \"ticks\": " << kTicks << ",\n"
      << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"cells\": [\n";
  bool first = true;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    CellResult cell = RunCell(vehicles, updates, shards);
    if (!first) out << ",\n";
    first = false;
    out << "    {\"shards\": " << shards << ", \"p50_ms\": " << cell.p50_ms
        << ", \"p99_ms\": " << cell.p99_ms
        << ", \"updates_per_sec\": " << cell.updates_per_sec
        << ", \"answer_rows\": " << cell.answer_rows
        << ", \"delta_refreshes\": " << cell.delta_refreshes
        << ", \"full_refreshes\": " << cell.full_refreshes << "}";
  }
  out << "\n  ]";
  benchio::FinishBenchJson(path, "shard", out.str());
}

}  // namespace
}  // namespace most

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  most::EmitBenchJson("BENCH_shard.json");
  return 0;
}
