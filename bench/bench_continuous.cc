// Experiment E3 — Section 2.3's processing claim: a continuous query is
// evaluated ONCE into Answer(CQ); displaying the per-tick answer is then a
// lookup. Re-evaluation happens only on explicit updates.
//
//  * BM_PerTickReevaluation — the strawman: run the instantaneous query at
//    every clock tick.
//  * BM_AnswerCqLookup — evaluate once, then per-tick interval lookups.
//  * BM_AnswerCqWithUpdates — same, but a trickle of motion updates forces
//    occasional re-evaluation (the realistic middle case).

#include <benchmark/benchmark.h>

#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "workload/fleet.h"

namespace most {
namespace {

constexpr Tick kHorizon = 256;

std::unique_ptr<MostDatabase> MakeWorld(size_t vehicles) {
  auto db = std::make_unique<MostDatabase>();
  FleetGenerator fleet({.num_vehicles = vehicles, .area = 1000.0,
                        .change_probability = 0.0, .seed = 1997});
  (void)fleet.Populate(db.get(), "CARS");
  (void)db->DefineRegion("P", Polygon::Rectangle({400, 400}, {600, 600}));
  return db;
}

FtlQuery TheQuery() {
  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  return *q;
}

void BM_PerTickReevaluation(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), {.horizon = kHorizon});
  FtlQuery query = TheQuery();
  for (auto _ : state) {
    state.PauseTiming();
    db->clock().AdvanceTo(db->Now());  // No-op; keep clock monotone.
    state.ResumeTiming();
    size_t total = 0;
    for (Tick t = 0; t < 64; ++t) {
      db->clock().Advance();
      auto answer = qm.Instantaneous(query);
      total += answer->size();
    }
    benchmark::DoNotOptimize(total);
    state.counters["evaluations"] = 64;
  }
  state.counters["vehicles"] = static_cast<double>(vehicles);
}
BENCHMARK(BM_PerTickReevaluation)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_AnswerCqLookup(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), {.horizon = kHorizon});
  FtlQuery query = TheQuery();
  for (auto _ : state) {
    auto cq = qm.RegisterContinuous(query);
    size_t total = 0;
    for (Tick t = 0; t < 64; ++t) {
      db->clock().Advance();
      auto answer = qm.CurrentAnswer(*cq);
      total += answer->size();
    }
    state.counters["evaluations"] =
        static_cast<double>(qm.EvaluationCount(*cq).value());
    (void)qm.Cancel(*cq);
    benchmark::DoNotOptimize(total);
  }
  state.counters["vehicles"] = static_cast<double>(vehicles);
}
BENCHMARK(BM_AnswerCqLookup)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_AnswerCqWithUpdates(benchmark::State& state) {
  size_t vehicles = 1000;
  // Updates per 64-tick window.
  size_t updates = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), {.horizon = kHorizon});
  FtlQuery query = TheQuery();
  Rng rng(7);
  for (auto _ : state) {
    auto cq = qm.RegisterContinuous(query);
    size_t total = 0;
    for (Tick t = 0; t < 64; ++t) {
      db->clock().Advance();
      if (updates > 0 && t % std::max<Tick>(1, 64 / updates) == 0) {
        ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, vehicles - 1));
        (void)db->SetMotion("CARS", id,
                            {rng.UniformDouble(0, 1000),
                             rng.UniformDouble(0, 1000)},
                            {rng.UniformDouble(-2, 2),
                             rng.UniformDouble(-2, 2)});
      }
      auto answer = qm.CurrentAnswer(*cq);
      total += answer->size();
    }
    state.counters["evaluations"] =
        static_cast<double>(qm.EvaluationCount(*cq).value());
    (void)qm.Cancel(*cq);
    benchmark::DoNotOptimize(total);
  }
  state.counters["updates_per_window"] = static_cast<double>(updates);
}
BENCHMARK(BM_AnswerCqWithUpdates)->Arg(0)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace most
