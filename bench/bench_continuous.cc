// Experiment E3 — Section 2.3's processing claim: a continuous query is
// evaluated ONCE into Answer(CQ); displaying the per-tick answer is then a
// lookup. Re-evaluation happens only on explicit updates.
//
//  * BM_PerTickReevaluation — the strawman: run the instantaneous query at
//    every clock tick.
//  * BM_AnswerCqLookup — evaluate once, then per-tick interval lookups.
//  * BM_AnswerCqWithUpdates — same, but a trickle of motion updates forces
//    occasional re-evaluation (the realistic middle case).
//  * BM_RefreshDeltaVsFull — the incremental-maintenance experiment: a
//    steady update stream served by the delta splice path versus full
//    window re-evaluation (docs/incremental_eval.md).
//
// The custom main() then measures the headline delta-vs-full grid directly
// and writes BENCH_continuous.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <vector>

#include "bench_obs.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "workload/fleet.h"

namespace most {
namespace {

constexpr Tick kHorizon = 256;

std::unique_ptr<MostDatabase> MakeWorld(size_t vehicles) {
  auto db = std::make_unique<MostDatabase>();
  FleetGenerator fleet({.num_vehicles = vehicles, .area = 1000.0,
                        .change_probability = 0.0, .seed = 1997});
  (void)fleet.Populate(db.get(), "CARS");
  (void)db->DefineRegion("P", Polygon::Rectangle({400, 400}, {600, 600}));
  return db;
}

FtlQuery TheQuery() {
  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  return *q;
}

void BM_PerTickReevaluation(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), {.horizon = kHorizon});
  FtlQuery query = TheQuery();
  for (auto _ : state) {
    state.PauseTiming();
    db->clock().AdvanceTo(db->Now());  // No-op; keep clock monotone.
    state.ResumeTiming();
    size_t total = 0;
    for (Tick t = 0; t < 64; ++t) {
      db->clock().Advance();
      auto answer = qm.Instantaneous(query);
      total += answer->size();
    }
    benchmark::DoNotOptimize(total);
    state.counters["evaluations"] = 64;
  }
  state.counters["vehicles"] = static_cast<double>(vehicles);
}
BENCHMARK(BM_PerTickReevaluation)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_AnswerCqLookup(benchmark::State& state) {
  size_t vehicles = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), {.horizon = kHorizon});
  FtlQuery query = TheQuery();
  for (auto _ : state) {
    auto cq = qm.RegisterContinuous(query);
    size_t total = 0;
    for (Tick t = 0; t < 64; ++t) {
      db->clock().Advance();
      auto answer = qm.CurrentAnswer(*cq);
      total += answer->size();
    }
    state.counters["evaluations"] =
        static_cast<double>(qm.EvaluationCount(*cq).value());
    (void)qm.Cancel(*cq);
    benchmark::DoNotOptimize(total);
  }
  state.counters["vehicles"] = static_cast<double>(vehicles);
}
BENCHMARK(BM_AnswerCqLookup)->Arg(100)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_AnswerCqWithUpdates(benchmark::State& state) {
  size_t vehicles = 1000;
  // Updates per 64-tick window.
  size_t updates = static_cast<size_t>(state.range(0));
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(), {.horizon = kHorizon});
  FtlQuery query = TheQuery();
  Rng rng(7);
  for (auto _ : state) {
    auto cq = qm.RegisterContinuous(query);
    size_t total = 0;
    for (Tick t = 0; t < 64; ++t) {
      db->clock().Advance();
      if (updates > 0 && t % std::max<Tick>(1, 64 / updates) == 0) {
        ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, vehicles - 1));
        (void)db->SetMotion("CARS", id,
                            {rng.UniformDouble(0, 1000),
                             rng.UniformDouble(0, 1000)},
                            {rng.UniformDouble(-2, 2),
                             rng.UniformDouble(-2, 2)});
      }
      auto answer = qm.CurrentAnswer(*cq);
      total += answer->size();
    }
    state.counters["evaluations"] =
        static_cast<double>(qm.EvaluationCount(*cq).value());
    (void)qm.Cancel(*cq);
    benchmark::DoNotOptimize(total);
  }
  state.counters["updates_per_window"] = static_cast<double>(updates);
}
BENCHMARK(BM_AnswerCqWithUpdates)->Arg(0)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// One op = one tick of a steady update stream: `updates` random motion
// updates, clock advance, answer read (which refreshes). range(1) selects
// the maintenance mode.
void BM_RefreshDeltaVsFull(benchmark::State& state) {
  size_t vehicles = 1000;
  size_t updates = static_cast<size_t>(state.range(0));
  bool delta = state.range(1) == 1;
  auto db = MakeWorld(vehicles);
  QueryManager qm(db.get(),
                  {.horizon = kHorizon, .enable_delta_refresh = delta});
  FtlQuery query = TheQuery();
  auto cq = qm.RegisterContinuous(query);
  Rng rng(11);
  size_t total = 0;
  for (auto _ : state) {
    for (size_t u = 0; u < updates; ++u) {
      ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, vehicles - 1));
      (void)db->SetMotion("CARS", id,
                          {rng.UniformDouble(0, 1000),
                           rng.UniformDouble(0, 1000)},
                          {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2)});
    }
    db->clock().Advance();
    auto answer = qm.ContinuousAnswer(*cq);
    total += answer->size();
  }
  benchmark::DoNotOptimize(total);
  auto counters = qm.QueryRefreshCounters(*cq);
  state.counters["delta_refreshes"] =
      static_cast<double>(counters->delta_evaluations);
  state.counters["full_refreshes"] =
      static_cast<double>(counters->full_evaluations);
  state.counters["updates_per_tick"] = static_cast<double>(updates);
}
BENCHMARK(BM_RefreshDeltaVsFull)
    ->ArgsProduct({{1, 10, 100}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

double MeasureNsPerOp(const std::function<void()>& op, int iters = 3) {
  op();  // Warm-up.
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    op();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()));
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// Machine-readable summary, written to BENCH_continuous.json: refresh
// latency and throughput for the delta-vs-full grid — {1k, 10k} vehicles
// x {1, 10, 100} updates/tick, single-threaded, plus the headline speedup
// at 10k vehicles with 1% of the fleet updated per tick (the acceptance
// configuration).
// ---------------------------------------------------------------------------

void EmitBenchJson(const char* path) {
  struct Config {
    size_t vehicles;
    size_t updates_per_tick;
    bool delta;
    double ns_per_tick = 0;
    uint64_t delta_refreshes = 0;
    uint64_t full_refreshes = 0;
    size_t answer_rows = 0;
  };
  std::vector<size_t> fleet_sizes = {1000, 10000};
  if (const char* env = std::getenv("MOST_BENCH_VEHICLES")) {
    fleet_sizes = {static_cast<size_t>(std::strtoull(env, nullptr, 10))};
  }
  constexpr int kTicksPerOp = 4;

  std::vector<Config> configs;
  for (size_t vehicles : fleet_sizes) {
    for (size_t updates : {1u, 10u, 100u}) {
      for (bool delta : {false, true}) {
        Config cfg{vehicles, updates, delta};
        auto db = MakeWorld(vehicles);
        QueryManager qm(db.get(),
                        {.horizon = kHorizon, .enable_delta_refresh = delta});
        FtlQuery query = TheQuery();
        auto cq = qm.RegisterContinuous(query);
        Rng rng(1997);
        size_t rows = 0;
        double batch_ns = MeasureNsPerOp([&] {
          for (int tick = 0; tick < kTicksPerOp; ++tick) {
            for (size_t u = 0; u < updates; ++u) {
              ObjectId id =
                  static_cast<ObjectId>(rng.UniformInt(0, vehicles - 1));
              (void)db->SetMotion("CARS", id,
                                  {rng.UniformDouble(0, 1000),
                                   rng.UniformDouble(0, 1000)},
                                  {rng.UniformDouble(-2, 2),
                                   rng.UniformDouble(-2, 2)});
            }
            db->clock().Advance();
            auto answer = qm.ContinuousAnswer(*cq);
            rows = answer->size();
          }
        });
        cfg.ns_per_tick = batch_ns / kTicksPerOp;
        cfg.answer_rows = rows;
        auto counters = qm.QueryRefreshCounters(*cq);
        cfg.delta_refreshes = counters->delta_evaluations;
        cfg.full_refreshes = counters->full_evaluations;
        configs.push_back(cfg);
      }
    }
  }

  // Headline: largest fleet, 1% of it updated per tick.
  size_t head_vehicles = fleet_sizes.back();
  size_t head_updates = 100;
  double full_ns = 0, delta_ns = 0;
  for (const Config& c : configs) {
    if (c.vehicles == head_vehicles && c.updates_per_tick == head_updates) {
      (c.delta ? delta_ns : full_ns) = c.ns_per_tick;
    }
  }

  std::ostringstream out;
  out << "{\n"
      << "  \"benchmark\": \"continuous\",\n"
      << "  \"query\": \"inside_region\",\n"
      << "  \"horizon\": " << kHorizon << ",\n"
      << "  \"thread_count\": 1,\n"
      << "  \"configs\": [\n";
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    out << "    {\"vehicles\": " << c.vehicles
        << ", \"updates_per_tick\": " << c.updates_per_tick
        << ", \"mode\": \"" << (c.delta ? "delta" : "full") << "\""
        << ", \"refresh_ns_per_tick\": " << c.ns_per_tick
        << ", \"refreshes_per_sec\": " << 1e9 / c.ns_per_tick
        << ", \"answer_rows\": " << c.answer_rows
        << ", \"delta_refreshes\": " << c.delta_refreshes
        << ", \"full_refreshes\": " << c.full_refreshes << "}"
        << (i + 1 < configs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"headline\": {\"vehicles\": " << head_vehicles
      << ", \"updates_per_tick\": " << head_updates
      << ", \"full_ns_per_tick\": " << full_ns
      << ", \"delta_ns_per_tick\": " << delta_ns
      << ", \"delta_speedup\": " << (delta_ns > 0 ? full_ns / delta_ns : 0)
      << "}\n";
  benchio::FinishBenchJson(path, "continuous", out.str());
}

}  // namespace most

// Custom main (this binary does not link benchmark_main): run the
// registered benchmarks, then emit the machine-readable summary.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  most::EmitBenchJson("BENCH_continuous.json");
  return 0;
}
