// Quickstart: the MOST data model in five minutes.
//
// Creates a database of moving cars, asks an instantaneous query, a future
// query, and a continuous query — demonstrating the paper's core idea that
// positions are *functions of time* and the answer to a query depends on
// when it is asked, without any intervening update.

#include <cstdlib>
#include <iostream>

#include "core/object_model.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "obs/exporters.h"

using namespace most;

int main() {
  // A MOST database with one spatial object class and a named region.
  MostDatabase db;
  auto cars = db.CreateClass("CARS", {{"PLATE", false, ValueType::kString}},
                             /*spatial=*/true);
  if (!cars.ok()) {
    std::cerr << cars.status() << "\n";
    return 1;
  }
  // Downtown is the square [0,10] x [0,10].
  (void)db.DefineRegion("DOWNTOWN", Polygon::Rectangle({0, 0}, {10, 10}));

  // A car 20 miles west of downtown, driving east at 1 mile per tick.
  // The database stores its *motion vector*, not a stream of positions.
  auto car = db.CreateObject("CARS");
  ObjectId id = (*car)->id();
  (void)db.UpdateStatic("CARS", id, "PLATE", Value("RWW860"));
  (void)db.SetMotion("CARS", id, {-20, 5}, {1, 0});

  QueryManager qm(&db, {.horizon = 500});

  // Query 1: who is downtown right now?
  auto q_now = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, DOWNTOWN)");
  auto at0 = qm.Instantaneous(*q_now);
  std::cout << "t=0:  cars downtown now: " << at0->size() << "\n";

  // Query 2 (future query): who will be downtown within 25 ticks?
  auto q_future = ParseQuery(
      "RETRIEVE o FROM CARS o "
      "WHERE EVENTUALLY WITHIN 25 INSIDE(o, DOWNTOWN)");
  auto soon = qm.Instantaneous(*q_future);
  std::cout << "t=0:  cars reaching downtown within 25 ticks: "
            << soon->size() << "\n";

  // Query 3 (continuous): evaluated ONCE into Answer(CQ); the display then
  // changes tick by tick with no re-evaluation.
  auto cq = qm.RegisterContinuous(*q_now);
  auto answer = qm.ContinuousAnswer(*cq);
  for (const AnswerTuple& t : *answer) {
    std::cout << "Answer(CQ): car " << t.binding[0] << " downtown during "
              << t.interval << "\n";
  }
  for (Tick t : {10, 20, 25, 31}) {
    db.clock().AdvanceTo(t);
    std::cout << "t=" << t
              << ": display shows " << qm.CurrentAnswer(*cq)->size()
              << " car(s); evaluations so far: "
              << qm.EvaluationCount(*cq).value() << "\n";
  }

  // An explicit update (the car turns off) is the only thing that forces a
  // re-evaluation.
  (void)db.SetMotion("CARS", id, {11, 5}, {0, 1});
  std::cout << "after turn: display shows " << qm.CurrentAnswer(*cq)->size()
            << " car(s); evaluations: " << qm.EvaluationCount(*cq).value()
            << "\n";
  // MOST_DUMP_METRICS=1 prints the engine metrics snapshot on the way out.
  if (std::getenv("MOST_DUMP_METRICS") != nullptr) {
    obs::DumpMetrics(std::cerr);
  }
  return 0;
}
