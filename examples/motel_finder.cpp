// The motel finder (paper, Sections 1 and 5.2): a moving car issues the
// continuous query "display motels within 5 miles of my position", and the
// materialized Answer(CQ) is pushed to the car either immediately (with a
// small onboard memory, in blocks) or in the delayed mode where each tuple
// arrives exactly when it becomes valid.

#include <iostream>

#include "core/object_model.h"
#include "distributed/transmission.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"

using namespace most;

int main() {
  MostDatabase db;
  (void)db.CreateClass("CARS", {}, /*spatial=*/true);
  (void)db.CreateClass("MOTELS",
                       {{"NAME", false, ValueType::kString},
                        {"PRICE", false, ValueType::kDouble},
                        {"VACANCY", false, ValueType::kBool}},
                       /*spatial=*/true);

  // The car drives east along a highway at 1 mile/tick.
  auto car = db.CreateObject("CARS");
  (void)db.SetMotion("CARS", (*car)->id(), {0, 0}, {1, 0});

  struct Motel {
    const char* name;
    Point2 pos;
    double price;
    bool vacancy;
  };
  Motel motels[] = {
      {"SleepInn", {8, 2}, 59, true},     // Near the start.
      {"RestWell", {25, -3}, 89, true},   // Mile 25.
      {"Grand", {26, 4}, 210, false},     // Expensive, same area.
      {"EconoStop", {60, 1}, 45, true},   // Far down the road.
  };
  for (const Motel& m : motels) {
    auto obj = db.CreateObject("MOTELS");
    (void)db.UpdateStatic("MOTELS", (*obj)->id(), "NAME", Value(m.name));
    (void)db.UpdateStatic("MOTELS", (*obj)->id(), "PRICE", Value(m.price));
    (void)db.UpdateStatic("MOTELS", (*obj)->id(), "VACANCY",
                          Value(m.vacancy));
    (void)db.SetMotion("MOTELS", (*obj)->id(), m.pos, {0, 0});
  }

  // The paper's moving region: "the driver may draw around it ... a circle
  // with a radius of 5 miles; then s/he may name the circle C and indicate
  // that C moves as a rigid body having the motion vector of the car."
  // The circle's coordinates are relative to the anchoring car.
  (void)db.DefineRegion("C", Polygon::RegularApprox({0, 0}, 5.0, 32));

  QueryManager qm(&db, {.horizon = 100});
  auto query = ParseQuery(
      "RETRIEVE m FROM CARS c, MOTELS m "
      "WHERE INSIDE(m, C, c) AND m.PRICE <= 100");
  auto cq = qm.RegisterContinuous(*query);
  if (!cq.ok()) {
    std::cerr << cq.status() << "\n";
    return 1;
  }

  auto name_of = [&](ObjectId id) {
    auto cls = db.GetClass("MOTELS");
    auto obj = (*cls)->Get(id);
    return (*obj)->GetStatic("NAME")->string_value();
  };

  std::cout << "Answer(CQ) computed ONCE at t=0 (one tuple per interval):\n";
  auto answer = qm.ContinuousAnswer(*cq);
  for (const AnswerTuple& t : *answer) {
    std::cout << "  " << name_of(t.binding[0]) << " visible during "
              << t.interval << "\n";
  }

  // Section 5.2: ship Answer(CQ) to the car over the simulated wireless
  // network in both modes and compare traffic + onboard memory.
  for (TransmissionMode mode :
       {TransmissionMode::kImmediate, TransmissionMode::kDelayed}) {
    Clock net_clock;
    SimNetwork net(&net_clock, {.latency = 1});
    NodeId server = net.AddNode(nullptr);
    NodeId car_node = net.AddNode(nullptr);
    AnswerClient dashboard(&net_clock);
    dashboard.Attach(&net, car_node);
    AnswerTransmitter tx(&net, &net_clock, server, car_node, 1,
                         {mode, /*memory_limit=*/2, /*network_latency=*/1});
    tx.SetAnswer(*answer);
    for (Tick t = 0; t <= 70; ++t) {
      net_clock.AdvanceTo(t);
      tx.Step();
      net.DeliverDue();
      dashboard.Compact();
    }
    std::cout << "\n"
              << (mode == TransmissionMode::kImmediate ? "IMMEDIATE"
                                                       : "DELAYED")
              << " transmission: " << net.stats().messages_sent
              << " messages, " << net.stats().bytes_sent
              << " bytes, car buffer peak " << dashboard.peak_buffered()
              << " tuples\n";
  }

  // The answer changes as the car moves even though nothing was updated;
  // when the driver finds a motel, the query is cancelled.
  std::cout << "\nDashboard over time (display is a lookup, not a query):\n";
  for (Tick t : {5, 15, 25, 40, 60}) {
    db.clock().AdvanceTo(t);
    auto display = qm.CurrentAnswer(*cq);
    std::cout << "  mile " << t << ":";
    for (const auto& binding : *display) {
      std::cout << " " << name_of(binding[0]);
    }
    if (display->empty()) std::cout << " (none)";
    std::cout << "\n";
  }
  (void)qm.Cancel(*cq);
  return 0;
}
