// Observability tour: exercises every instrumented subsystem — FTL
// evaluation (query manager, delta refresh), durable storage (WAL
// appends, checkpoint), the distributed layer (lossy network + reliable
// channel), and a failpoint firing — then prints the per-query evaluation
// profile (EXPLAIN ANALYZE) and the full Prometheus text exposition of
// the global metrics registry.
//
// CI's observability stage runs this binary and greps the output against
// a required-metric allowlist, so the exporters demonstrably cover at
// least four subsystems (docs/observability.md has the full catalogue).

#include <iostream>

#include "common/failpoint.h"
#include "distributed/reliable_channel.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "obs/exporters.h"
#include "storage/durable_database.h"

using namespace most;

namespace {

// FTL: a continuous query refreshed twice — the second refresh dirties
// one car out of six, so the delta path serves it.
void DriveFtl() {
  MostDatabase db;
  (void)db.CreateClass("CARS", {}, /*spatial=*/true);
  (void)db.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10}));
  QueryManager qm(&db, {.horizon = 200});
  ObjectId mover = 0;
  for (int i = 0; i < 6; ++i) {
    auto obj = db.CreateObject("CARS");
    if (i == 0) mover = (*obj)->id();
    (void)db.SetMotion("CARS", (*obj)->id(),
                       i == 0 ? Point2{-20, 5} : Point2{100.0 + i, 100},
                       i == 0 ? Vec2{1, 0} : Vec2{0, 0});
  }
  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto cq = qm.RegisterContinuous(*q);
  (void)qm.ContinuousAnswer(*cq);
  (void)db.SetMotion("CARS", mover, {-10, 5}, {1, 0});
  (void)qm.ContinuousAnswer(*cq);
  auto profile = qm.Explain(*cq);
  if (profile.ok()) {
    std::cout << "--- EXPLAIN (continuous query " << *cq << ") ---\n"
              << *profile << "\n";
  }
}

// Storage: logged mutations, a checkpoint (armed with a noop failpoint so
// the firing shows up in most_failpoint_fired_total), and a recovery.
void DriveStorage() {
  const char* path = "observability_demo.wal";
  (void)FailpointRegistry::Instance().Arm("durable/checkpoint/begin", "noop");
  {
    DurableDatabase db;
    (void)db.Open(path);
    (void)db.CreateTable("T", Schema({{"v", ValueType::kInt}}));
    for (int i = 0; i < 32; ++i) (void)db.Insert("T", {Value(i)});
    (void)db.Checkpoint();
  }
  FailpointRegistry::Instance().Disarm("durable/checkpoint/begin");
  DurableDatabase reopened;
  (void)reopened.Open(path);
  std::remove(path);
}

// Distributed: 40 reliable frames across a 20%-lossy link — drops,
// retransmissions, duplicate suppression and ack traffic all land in the
// most_net_* / most_rc_* families.
void DriveDistributed() {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1, .loss_probability = 0.2, .seed = 7});
  ReliableEndpoint sender(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  receiver.SetHandler([](const Message&) {});
  for (uint64_t i = 0; i < 40; ++i) {
    sender.SendReliable(receiver.node_id(), CancelQuery{i});
  }
  for (int t = 0; t < 400 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
}

}  // namespace

int main() {
  DriveFtl();
  DriveStorage();
  DriveDistributed();
  std::cout << "--- Prometheus exposition ---\n" << obs::PrometheusText();
  return 0;
}
