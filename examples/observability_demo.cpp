// Observability tour: exercises every instrumented subsystem — FTL
// evaluation (query manager, delta refresh), durable storage (WAL
// appends, checkpoint), the distributed layer (lossy network + reliable
// channel), resource governance (a shed refresh, interval-cache eviction,
// and a coordinator deadline expiry), and a failpoint firing — then
// prints the per-query evaluation profile (EXPLAIN ANALYZE) and the full
// Prometheus text exposition of the global metrics registry.
//
// CI's observability stage runs this binary and greps the output against
// a required-metric allowlist, so the exporters demonstrably cover at
// least four subsystems (docs/observability.md has the full catalogue).

#include <cstdio>
#include <iostream>

#include "common/failpoint.h"
#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "distributed/reliable_channel.h"
#include "ftl/parser.h"
#include "core/sharded_engine.h"
#include "ftl/query_manager.h"
#include "obs/exporters.h"
#include "obs/governor.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/durable_database.h"

using namespace most;

namespace {

// FTL: a continuous query refreshed twice — the second refresh dirties
// one car out of six, so the delta path serves it.
void DriveFtl() {
  MostDatabase db;
  (void)db.CreateClass("CARS", {}, /*spatial=*/true);
  (void)db.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10}));
  QueryManager::Options ftl_opts;
  ftl_opts.horizon = 200;
  QueryManager qm(&db, ftl_opts);
  ObjectId mover = 0;
  for (int i = 0; i < 6; ++i) {
    auto obj = db.CreateObject("CARS");
    if (i == 0) mover = (*obj)->id();
    (void)db.SetMotion("CARS", (*obj)->id(),
                       i == 0 ? Point2{-20, 5} : Point2{100.0 + i, 100},
                       i == 0 ? Vec2{1, 0} : Vec2{0, 0});
  }
  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto cq = qm.RegisterContinuous(*q);
  (void)qm.ContinuousAnswer(*cq);
  (void)db.SetMotion("CARS", mover, {-10, 5}, {1, 0});
  (void)qm.ContinuousAnswer(*cq);
  auto profile = qm.Explain(*cq);
  if (profile.ok()) {
    std::cout << "--- EXPLAIN (continuous query " << *cq << ") ---\n"
              << *profile << "\n";
  }
}

// Storage: logged mutations, a checkpoint (armed with a noop failpoint so
// the firing shows up in most_failpoint_fired_total), and a recovery.
void DriveStorage() {
  const char* path = "observability_demo.wal";
  (void)FailpointRegistry::Instance().Arm("durable/checkpoint/begin", "noop");
  {
    DurableDatabase db;
    (void)db.Open(path);
    (void)db.CreateTable("T", Schema({{"v", ValueType::kInt}}));
    for (int i = 0; i < 32; ++i) (void)db.Insert("T", {Value(i)});
    (void)db.Checkpoint();
  }
  FailpointRegistry::Instance().Disarm("durable/checkpoint/begin");
  DurableDatabase reopened;
  (void)reopened.Open(path);
  std::remove(path);
}

// Distributed: 40 reliable frames across a 20%-lossy link — drops,
// retransmissions, duplicate suppression and ack traffic all land in the
// most_net_* / most_rc_* families.
void DriveDistributed() {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1, .loss_probability = 0.2, .seed = 7});
  ReliableEndpoint sender(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  receiver.SetHandler([](const Message&) {});
  for (uint64_t i = 0; i < 40; ++i) {
    sender.SendReliable(receiver.node_id(), CancelQuery{i});
  }
  for (int t = 0; t < 400 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
}

// Governance: a warm continuous query whose next refresh blows a 1-row
// governor budget — the shed lands in most_governor_sheds_total and
// most_qm_shed_refreshes_total while the query keeps serving its previous
// answer as kStale. A 64-byte interval-cache budget forces LRU evictions
// on the same refreshes (docs/robustness.md).
void DriveGovernance() {
  MostDatabase db;
  (void)db.CreateClass("CARS", {}, /*spatial=*/true);
  (void)db.DefineRegion("P", Polygon::Rectangle({0, 0}, {100, 100}));
  QueryManager::Options opts;
  opts.horizon = 200;
  opts.enable_interval_cache = true;
  opts.interval_cache_max_bytes = 64;
  QueryManager qm(&db, opts);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 8; ++i) {
    auto obj = db.CreateObject("CARS");
    if (!obj.ok()) continue;
    ids.push_back((*obj)->id());
    (void)db.SetMotion("CARS", ids.back(), {10.0 + i, 10}, {1, 0});
  }
  auto q = ParseQuery("RETRIEVE o, n FROM CARS o, CARS n WHERE DIST(o, n) <= 200");
  auto cq = qm.RegisterContinuous(*q);
  (void)qm.ContinuousAnswer(*cq);  // Warm, ungoverned.
  ResourceGovernor::Limits limits;
  limits.refresh_budget.max_rows = 1;  // Any real join blows this.
  ResourceGovernor::Global().set_limits(limits);
  for (ObjectId id : ids) (void)db.SetMotion("CARS", id, {20, 10}, {1, 0});
  db.clock().Advance();
  (void)qm.TickAll();
  (void)qm.ContinuousAnswer(*cq);
  ResourceGovernor::Global().set_limits({});
}

// Coordinator: one reachable node, one permanently dark one, and a query
// polled past its deadline — the expiry is counted into
// most_coord_deadline_expired_total and the stale partial answer is still
// served (the same contract `most_shell health` reports on).
void DriveCoordinator() {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator::Options copts;
  copts.query_deadline = 8;
  Coordinator coordinator(&net, &clock, regions, copts);
  MobileNode::Options nopts;
  nopts.beacon_interval = 0;
  ObjectState in_region;
  in_region.id = 0;
  in_region.position = {50, 50};
  MobileNode reachable(&net, &clock, in_region, regions, nopts);
  ObjectState dark_state = in_region;
  dark_state.id = 1;
  MobileNode dark(&net, &clock, dark_state, regions, nopts);
  net.SetConnected(dark.node_id(), false);
  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  while (clock.Now() < 12) {
    clock.Advance();
    net.DeliverDue();
  }
  (void)coordinator.DeadlinePassed(qid);
  (void)coordinator.ReportedMatches(qid);
}

// Recovery: a WAL-backed node is killed mid-query, stays dark past the
// lease horizon (most_coord_lease_expirations_total), restarts from its
// log (most_node_recoveries_total), rejoins under a bumped incarnation
// (most_coord_rejoins_total), and its answer mirror is caught up with a
// delta (most_coord_catchup_bytes_total).
void DriveRecovery() {
  std::string wal = "/tmp/most_obs_demo_recovery.wal";
  std::remove(wal.c_str());
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator::Options copts;
  copts.liveness_timeout = 12;
  Coordinator coordinator(&net, &clock, regions, copts);
  MobileNode::Options nopts;
  nopts.beacon_interval = 4;
  nopts.home = coordinator.node_id();
  nopts.wal_path = wal;
  ObjectState in_region;
  in_region.id = 0;
  in_region.position = {50, 50};
  auto node =
      std::make_unique<MobileNode>(&net, &clock, in_region, regions, nopts);
  MobileNode::Options mover_opts = nopts;
  mover_opts.wal_path.clear();
  ObjectState approaching;
  approaching.id = 1;
  approaching.position = {-200, 50};
  MobileNode mover(&net, &clock, approaching, regions, mover_opts);
  auto run_to = [&](Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };
  run_to(6);
  auto q = ParseQuery(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 50 INSIDE(o, P)");
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  run_to(10);
  (void)coordinator.SubscribeAnswerMirror(qid, node->node_id());
  run_to(14);
  node.reset();  // Crash; the lease expires while the node is down.
  mover.UpdateMotion({50, 50}, {0, 0});  // The answer changes meanwhile.
  run_to(40);
  node =
      std::make_unique<MobileNode>(&net, &clock, in_region, regions, nopts);
  run_to(60);
  (void)coordinator.ReportedMatches(qid);
  std::remove(wal.c_str());
}

// Sharding: a two-shard engine routes a few updates through the MPSC
// handoff queues and gathers a continuous answer, so the per-shard
// routed/applied/queue-depth/latency series and the engine's gather
// counters all report (docs/sharding.md).
void DriveSharding() {
  MostDatabase db;
  (void)db.CreateClass("CARS", {}, /*spatial=*/true);
  (void)db.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10}));
  for (int i = 0; i < 6; ++i) {
    auto obj = db.CreateObject("CARS");
    (void)db.SetMotion("CARS", (*obj)->id(), {static_cast<double>(-4 * i), 5},
                       {1, 0});
  }
  ShardedEngine::Options opts;
  opts.shard_count = 2;
  opts.query_options.horizon = 64;
  ShardedEngine engine(&db, opts);
  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE EVENTUALLY INSIDE(o, P)");
  auto cq = engine.RegisterContinuous(*q);
  for (ObjectId id = 0; id < 6; ++id) {
    engine.EnqueueMotion("CARS", id, {static_cast<double>(id), 5}, {1, 0});
  }
  (void)engine.Advance(1);
  if (cq.ok()) (void)engine.ContinuousAnswer(*cq);
}

// Telemetry: the per-tick recorder samples refresh throughput + latency
// while a continuous query churns, the latency watchdog arms (tightening
// the governor's queue limit and delta fallback), and a quiet stretch
// relaxes it — so most_telemetry_samples_total and both
// most_telemetry_watchdog_adjustments_total actions report nonzero
// (docs/observability.md, "Telemetry timeline").
void DriveTelemetry() {
  obs::TelemetryRecorder& rec = obs::TelemetryRecorder::Global();
  rec.set_enabled(true);
  rec.Track("most_qm_refreshes_total");
  rec.Track("most_qm_refresh_latency_seconds");
  obs::TelemetryRecorder::WatchdogOptions wd;
  wd.window = 4;
  wd.arm_mean_seconds = 1e-12;  // Any real refresh latency arms.
  wd.armed_queue_limit = 4;
  wd.armed_delta_fraction = 0.9;
  wd.min_hold_ticks = 2;
  rec.ConfigureWatchdog(wd);

  MostDatabase db;
  (void)db.CreateClass("CARS", {}, /*spatial=*/true);
  (void)db.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10}));
  QueryManager::Options opts;
  opts.horizon = 64;
  QueryManager qm(&db, opts);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 4; ++i) {
    auto obj = db.CreateObject("CARS");
    if (!obj.ok()) continue;
    ids.push_back((*obj)->id());
    (void)db.SetMotion("CARS", ids.back(), {static_cast<double>(-4 * i), 5},
                       {1, 0});
  }
  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto cq = qm.RegisterContinuous(*q);
  (void)qm.ContinuousAnswer(*cq);
  // Busy stretch: motion every tick keeps the query stale, so every
  // TickAll refreshes and the windowed latency mean arms the watchdog.
  for (int t = 0; t < 6; ++t) {
    for (ObjectId id : ids) {
      (void)db.SetMotion("CARS", id, {static_cast<double>(t), 5}, {1, 0});
    }
    db.clock().Advance();
    (void)qm.TickAll();
  }
  // Quiet stretch: no refreshes, the latency window drains, and after the
  // hold the watchdog restores the saved governor limits.
  for (int t = 0; t < 8; ++t) {
    db.clock().Advance();
    (void)qm.TickAll();
  }
  rec.DisarmWatchdog();
}

}  // namespace

int main() {
  // Record spans from every drive below: the trace ring feeds the
  // most_trace_* collector rows and `most_shell trace`'s Perfetto dump.
  obs::TraceSink::Global().set_enabled(true);
  DriveFtl();
  DriveStorage();
  DriveDistributed();
  DriveGovernance();
  DriveCoordinator();
  DriveRecovery();
  DriveSharding();
  DriveTelemetry();
  std::cout << "--- Prometheus exposition ---\n" << obs::PrometheusText();
  return 0;
}
