// An interactive shell for the MOST database: build a world of moving
// objects, advance the clock, and run FTL queries against it. Designed to
// be equally usable from a pipe, so scenarios can be scripted:
//
//   echo 'demo
//   query RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 30 INSIDE(o, P)
//   tick 25
//   query RETRIEVE o FROM CARS o WHERE INSIDE(o, P)' | ./most_shell
//
// Type `help` for the command list.

#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/failpoint.h"
#include "core/object_model.h"
#include "core/sharded_engine.h"
#include "ftl/nearest.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "obs/exporters.h"
#include "obs/governor.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

using namespace most;

namespace {

constexpr const char* kHelp = R"(Commands:
  class <name> [spatial] [attr:double|int|string|dyn ...]
                                 declare an object class
  object <class>                 create an object (prints its id)
  motion <class> <id> <x> <y> <vx> <vy>
                                 set position + velocity at the current time
  static <class> <id> <attr> <value>
                                 set a static attribute
  dynamic <class> <id> <attr> <value> <slope>
                                 set a dynamic attribute (value + per-tick slope)
  region <name> rect <x0> <y0> <x1> <y1>
  region <name> circle <cx> <cy> <radius>
                                 define a named region
  tick [n]                       advance the clock (default 1)
  now                            print the current time
  query <FTL query>              instantaneous query at the current time
  answer <FTL query>             full Answer relation with time intervals
  continuous <FTL query>         register a continuous query (prints handle)
  show <handle>                  current display of a continuous query
  explain <handle>               per-subformula evaluation profile of the
                                 last refresh (EXPLAIN ANALYZE)
  cancel <handle>                cancel a continuous query
  metrics                        dump the engine metrics snapshot
  health                         governor limits, backpressure, storage
                                 health and recent degrade events
  shards [n]                     shard-per-core engine view: per-shard
                                 object counts, queue depths, refresh
                                 counts and latencies (docs/sharding.md);
                                 n reshards (default: one per core)
  failpoints                     armed fault-injection sites (spec + fired
                                 counts); docs/durability.md lists all sites
  trace [file]                   dump recorded spans as Chrome trace-event
                                 JSON (open in Perfetto / chrome://tracing);
                                 writes to file if given, else stdout
  telemetry                      per-tick telemetry timeline: tracked
                                 series, recent samples, window rates and
                                 watchdog state (docs/observability.md)
  nearest <from-class> <id> <target-class>
                                 nearest target object, now and over time
  demo                           load a small ready-made world
  help                           this text
  quit                           exit
)";

class Shell {
 public:
  Shell() : qm_(&db_, {.horizon = 512}) {}

  int Run() {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
    return 0;
  }

 private:
  static std::vector<std::string> Tokens(const std::string& line) {
    std::istringstream is(line);
    std::vector<std::string> out;
    std::string tok;
    while (is >> tok) out.push_back(tok);
    return out;
  }

  void Report(const Status& status) {
    if (!status.ok()) std::cout << "error: " << status.ToString() << "\n";
  }

  // Returns false to quit.
  bool Dispatch(const std::string& line) {
    std::vector<std::string> t = Tokens(line);
    if (t.empty() || t[0][0] == '#') return true;
    const std::string& cmd = t[0];
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::cout << kHelp;
    } else if (cmd == "class" && t.size() >= 2) {
      bool spatial = false;
      std::vector<AttributeDecl> attrs;
      for (size_t i = 2; i < t.size(); ++i) {
        if (t[i] == "spatial") {
          spatial = true;
          continue;
        }
        size_t colon = t[i].rfind(':');
        if (colon == std::string::npos) {
          std::cout << "error: attribute must be name:type\n";
          return true;
        }
        std::string name = t[i].substr(0, colon);
        std::string type = t[i].substr(colon + 1);
        if (type == "dyn") {
          attrs.push_back({name, true, ValueType::kNull});
        } else if (type == "double") {
          attrs.push_back({name, false, ValueType::kDouble});
        } else if (type == "int") {
          attrs.push_back({name, false, ValueType::kInt});
        } else if (type == "string") {
          attrs.push_back({name, false, ValueType::kString});
        } else {
          std::cout << "error: unknown type '" << type << "'\n";
          return true;
        }
      }
      Report(db_.CreateClass(t[1], attrs, spatial).status());
    } else if (cmd == "object" && t.size() == 2) {
      auto obj = db_.CreateObject(t[1]);
      if (obj.ok()) {
        std::cout << "object " << (*obj)->id() << "\n";
      } else {
        Report(obj.status());
      }
    } else if (cmd == "motion" && t.size() == 7) {
      Report(db_.SetMotion(t[1], std::stoull(t[2]),
                           {std::stod(t[3]), std::stod(t[4])},
                           {std::stod(t[5]), std::stod(t[6])}));
    } else if (cmd == "static" && t.size() == 5) {
      // Numbers become doubles, everything else a string.
      char* end = nullptr;
      double v = std::strtod(t[4].c_str(), &end);
      Value value = (*end == '\0') ? Value(v) : Value(t[4]);
      Report(db_.UpdateStatic(t[1], std::stoull(t[2]), t[3], value));
    } else if (cmd == "dynamic" && t.size() == 6) {
      Report(db_.UpdateDynamic(t[1], std::stoull(t[2]), t[3],
                               std::stod(t[4]),
                               TimeFunction::Linear(std::stod(t[5]))));
    } else if (cmd == "region" && t.size() >= 3 && t[2] == "rect" &&
               t.size() == 7) {
      Report(db_.DefineRegion(
          t[1], Polygon::Rectangle({std::stod(t[3]), std::stod(t[4])},
                                   {std::stod(t[5]), std::stod(t[6])})));
    } else if (cmd == "region" && t.size() >= 3 && t[2] == "circle" &&
               t.size() == 6) {
      Report(db_.DefineRegion(
          t[1], Polygon::RegularApprox({std::stod(t[3]), std::stod(t[4])},
                                       std::stod(t[5]), 32)));
    } else if (cmd == "tick") {
      db_.clock().Advance(t.size() > 1 ? std::stoll(t[1]) : 1);
      std::cout << "t=" << db_.Now() << "\n";
    } else if (cmd == "now") {
      std::cout << "t=" << db_.Now() << "\n";
    } else if (cmd == "query" || cmd == "answer" || cmd == "continuous") {
      std::string text = line.substr(line.find(cmd) + cmd.size());
      auto query = ParseQuery(text);
      if (!query.ok()) {
        Report(query.status());
        return true;
      }
      if (cmd == "query") {
        auto result = qm_.Instantaneous(*query);
        if (!result.ok()) {
          Report(result.status());
          return true;
        }
        for (const auto& binding : *result) {
          std::cout << " ";
          for (size_t i = 0; i < binding.size(); ++i) {
            std::cout << (i ? "," : "") << binding[i];
          }
          std::cout << "\n";
        }
        std::cout << result->size() << " result(s) at t=" << db_.Now()
                  << "\n";
      } else if (cmd == "answer") {
        auto rel = qm_.Evaluate(*query);
        if (!rel.ok()) {
          Report(rel.status());
          return true;
        }
        for (const auto& [binding, when] : rel->rows) {
          std::cout << " (";
          for (size_t i = 0; i < binding.size(); ++i) {
            std::cout << (i ? "," : "") << binding[i];
          }
          std::cout << ") during " << when.ToString() << "\n";
        }
        std::cout << rel->rows.size() << " tuple(s)\n";
      } else {
        auto handle = qm_.RegisterContinuous(*query);
        if (handle.ok()) {
          std::cout << "continuous query " << *handle << " registered\n";
        } else {
          Report(handle.status());
        }
      }
    } else if (cmd == "show" && t.size() == 2) {
      auto result = qm_.CurrentAnswer(std::stoull(t[1]));
      if (!result.ok()) {
        Report(result.status());
        return true;
      }
      for (const auto& binding : *result) {
        std::cout << " ";
        for (size_t i = 0; i < binding.size(); ++i) {
          std::cout << (i ? "," : "") << binding[i];
        }
        std::cout << "\n";
      }
      std::cout << result->size() << " on display at t=" << db_.Now() << "\n";
    } else if (cmd == "explain" && t.size() == 2) {
      auto text = qm_.Explain(std::stoull(t[1]));
      if (text.ok()) {
        std::cout << *text;
      } else {
        Report(text.status());
      }
    } else if (cmd == "metrics") {
      obs::DumpMetrics(std::cout);
    } else if (cmd == "health") {
      PrintHealth();
    } else if (cmd == "failpoints") {
      PrintFailpoints();
    } else if (cmd == "trace") {
      CmdTrace(t.size() >= 2 ? t[1] : "");
    } else if (cmd == "telemetry") {
      PrintTelemetry();
    } else if (cmd == "shards") {
      CmdShards(t.size() >= 2 ? std::stoull(t[1]) : 0);
    } else if (cmd == "cancel" && t.size() == 2) {
      Report(qm_.Cancel(std::stoull(t[1])));
    } else if (cmd == "nearest" && t.size() == 4) {
      auto cls = db_.GetClass(t[1]);
      if (!cls.ok()) {
        Report(cls.status());
        return true;
      }
      auto obj = (*cls)->Get(std::stoull(t[2]));
      if (!obj.ok()) {
        Report(obj.status());
        return true;
      }
      auto now_result = NearestNeighbor(db_, t[3], **obj, db_.Now());
      if (!now_result.ok()) {
        Report(now_result.status());
        return true;
      }
      std::cout << "nearest now: object " << now_result->id << " at distance "
                << now_result->distance << "\n";
      auto envelope = NearestOverWindow(
          db_, t[3], **obj, Interval(db_.Now(), db_.Now() + 100));
      if (envelope.ok()) {
        for (const auto& [id, when] : *envelope) {
          std::cout << "  object " << id << " nearest during "
                    << when.ToString() << "\n";
        }
      }
    } else if (cmd == "demo") {
      LoadDemo();
    } else {
      std::cout << "error: unrecognized command (try `help`)\n";
    }
    return true;
  }

  static void PrintLimit(const char* name, uint64_t value) {
    std::cout << "  " << name << ": ";
    if (value == 0) {
      std::cout << "unlimited\n";
    } else {
      std::cout << value << "\n";
    }
  }

  // One-stop operator view of the resource-governance state
  // (docs/robustness.md): knobs, storage health, channel backpressure and
  // the most recent degrade events.
  void PrintHealth() {
    ResourceGovernor& gov = ResourceGovernor::Global();
    const ResourceGovernor::Limits limits = gov.limits();
    std::cout << "governor limits (0 = unlimited):\n";
    PrintLimit("refresh deadline (ns)",
               static_cast<uint64_t>(limits.refresh_budget.deadline_ns));
    PrintLimit("refresh arena bytes", limits.refresh_budget.max_arena_bytes);
    PrintLimit("refresh rows", limits.refresh_budget.max_rows);
    PrintLimit("refresh queue", limits.refresh_queue_limit);
    PrintLimit("degrade cooldown (ticks)",
               static_cast<uint64_t>(limits.degrade_cooldown_ticks));
    PrintLimit("interval cache bytes", limits.interval_cache_max_bytes);
    PrintLimit("channel unacked messages", limits.channel_max_unacked_messages);
    PrintLimit("channel unacked bytes", limits.channel_max_unacked_bytes);
    PrintLimit("channel dead horizon (ticks)",
               static_cast<uint64_t>(limits.channel_peer_dead_horizon));
    std::cout << "storage: "
              << (gov.storage_degraded() ? "DEGRADED" : "ok");
    if (gov.storage_degraded()) {
      std::cout << " (" << gov.storage_degraded_detail() << ")";
    }
    std::cout << "\n";
    std::vector<ResourceGovernor::PeerPressure> peers =
        gov.BackpressureSnapshot();
    if (peers.empty()) {
      std::cout << "backpressure: no reliable endpoints registered\n";
    } else {
      std::cout << "backpressure:\n";
      for (const auto& p : peers) {
        std::cout << "  node " << p.endpoint_node << " -> peer " << p.peer
                  << ": " << BackpressureToString(p.state) << " ("
                  << p.pending_messages << " msgs, " << p.pending_bytes
                  << " bytes unacked)\n";
      }
    }
    std::vector<ResourceGovernor::DegradeEvent> events = gov.RecentDegrades(10);
    if (events.empty()) {
      std::cout << "degrades: none ("
                << gov.degrades_total() << " total)\n";
    } else {
      std::cout << "degrades (" << gov.degrades_total()
                << " total, newest last):\n";
      for (const auto& e : events) {
        std::cout << "  t=" << e.at << " query " << e.query_id << " "
                  << DegradeReasonToString(e.reason);
        if (!e.detail.empty()) std::cout << " — " << e.detail;
        std::cout << "\n";
      }
    }
  }

  // Operator view of the shard-per-core engine (docs/sharding.md): lazily
  // builds the engine over the shell's world (n == 0 sizes it to the
  // machine), reshards on an explicit count change, and prints the
  // per-shard ownership/queue/refresh table. The engine is a parallel
  // view: it shares the shell's database but refreshes only queries
  // registered through it, so the table's refresh columns stay zero until
  // updates are routed through the engine's data plane.
  void CmdShards(size_t n) {
    if (engine_ == nullptr) {
      ShardedEngine::Options opts;
      opts.shard_count = n;  // 0 = one shard per hardware thread.
      opts.query_options.horizon = 512;
      engine_ = std::make_unique<ShardedEngine>(&db_, opts);
    } else if (n != 0 && n != engine_->shard_count()) {
      Status resharded = engine_->Reshard(n);
      if (!resharded.ok()) {
        Report(resharded);
        return;
      }
    }
    std::cout << "shards: " << engine_->shard_count() << "\n"
              << "  shard   objects   queued   applied   dropped   "
                 "delta/full   last refresh\n";
    for (const ShardedEngine::ShardStats& s : engine_->Stats()) {
      std::ostringstream refreshes;
      refreshes << s.delta_refreshes << "/" << s.full_refreshes;
      std::cout << "  " << std::setw(5) << s.shard << std::setw(10)
                << s.objects << std::setw(9) << s.queue_depth << std::setw(10)
                << s.updates_applied << std::setw(10) << s.updates_dropped
                << std::setw(13) << refreshes.str() << std::setw(12)
                << std::fixed << std::setprecision(3)
                << s.last_refresh_seconds * 1e3 << " ms\n";
      std::cout.unsetf(std::ios::fixed);
    }
  }

  // Fault-injection visibility: what is armed right now (spec syntax as
  // Arm() accepts it, budgets reflecting remaining triggers) and which
  // sites have fired since process start. The full site inventory lives
  // in docs/durability.md.
  void PrintFailpoints() {
    FailpointRegistry& reg = FailpointRegistry::Instance();
    std::map<std::string, std::string> armed = reg.ArmedSpecs();
    if (armed.empty()) {
      std::cout << "failpoints: none armed (arm via MOST_FAILPOINTS, e.g. "
                   "\"wal/append/write=truncate*1\")\n";
    } else {
      std::cout << "armed failpoints:\n";
      for (const auto& [site, spec] : armed) {
        std::cout << "  " << site << " = " << spec << "\n";
      }
    }
    std::map<std::string, uint64_t> fired = reg.TriggeredCounts();
    if (fired.empty()) {
      std::cout << "fired: none\n";
    } else {
      std::cout << "fired (" << reg.total_triggered() << " total):\n";
      for (const auto& [site, count] : fired) {
        std::cout << "  " << site << " x" << count << "\n";
      }
    }
  }

  // Dump the global trace ring as Chrome trace-event JSON. The sink is
  // off by default (MOST_TRACE=1 arms it at startup); when disabled we
  // say so instead of emitting an empty envelope.
  void CmdTrace(const std::string& path) {
    obs::TraceSink& sink = obs::TraceSink::Global();
    if (!sink.enabled()) {
      std::cout << "trace: sink disabled (set MOST_TRACE=1 to record "
                   "spans)\n";
      return;
    }
    std::string json = obs::ChromeTraceJson(sink);
    if (path.empty()) {
      std::cout << json << "\n";
    } else {
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::cout << "error: cannot open " << path << "\n";
        return;
      }
      out << json << "\n";
      std::cout << "trace: wrote " << sink.Events().size() << " spans to "
                << path << " (" << sink.dropped() << " dropped)\n";
    }
  }

  // Per-tick telemetry timeline: what the recorder sampled recently and
  // what the latency watchdog is doing with the governor.
  void PrintTelemetry() {
    obs::TelemetryRecorder& rec = obs::TelemetryRecorder::Global();
    if (!rec.enabled()) {
      std::cout << "telemetry: recorder disabled (set MOST_TELEMETRY=1 to "
                   "sample per tick)\n";
      return;
    }
    std::cout << "telemetry: " << rec.samples_total() << " samples over "
              << rec.ticks_sampled() << " ticks (stride "
              << rec.options().stride << ", retention "
              << rec.options().retention << ")\n";
    for (const std::string& key : rec.TrackedKeys()) {
      std::vector<obs::TelemetryRecorder::Sample> recent = rec.Series(key, 5);
      std::cout << "  " << key << ":";
      if (recent.empty()) {
        std::cout << " (no samples)\n";
        continue;
      }
      for (const auto& s : recent) {
        std::cout << " t" << s.tick << "=" << s.value;
      }
      std::cout << "  rate/tick=" << rec.WindowRate(key, 8).value_or(0.0)
                << "\n";
    }
    std::cout << "  watchdog: "
              << (rec.watchdog_armed() ? "ARMED (governor limits tightened)"
                                       : "relaxed")
              << ", arms=" << rec.watchdog_arms()
              << ", relaxes=" << rec.watchdog_relaxes() << "\n";
  }

  void LoadDemo() {
    const char* script[] = {
        "class CARS spatial PLATE:string",
        "class HOSPITALS spatial",
        "region P rect 0 0 20 20",
        "object CARS",
        "motion CARS 0 -30 10 1 0",
        "static CARS 0 PLATE RWW860",
        "object CARS",
        "motion CARS 1 100 100 0 0",
        "object HOSPITALS",
        "motion HOSPITALS 2 5 5 0 0",
        "object HOSPITALS",
        "motion HOSPITALS 3 200 0 0 0",
    };
    for (const char* line : script) {
      std::cout << "> " << line << "\n";
      Dispatch(line);
    }
    std::cout << "demo world loaded; try:\n"
              << "  query RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 40 "
                 "INSIDE(o, P)\n"
              << "  nearest CARS 0 HOSPITALS\n";
  }

  MostDatabase db_;
  QueryManager qm_;
  std::unique_ptr<ShardedEngine> engine_;  // Created by `shards`.
};

}  // namespace

int main() {
  std::cout << "MOST shell — moving-objects database (type `help`)\n";
  return Shell().Run();
}
