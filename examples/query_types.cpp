// Figure 1 of the paper, executable: the SAME query text entered as an
// instantaneous, a continuous, and a persistent query produces three
// different results.
//
// The query is the paper's R (Section 2.3): "retrieve the objects whose
// speed in the direction of the X-axis doubles within 10 minutes". The
// scenario is the paper's own: speed 5 at time 0, explicitly updated to 7
// at time 1 and to 10 at time 2.

#include <iostream>

#include "core/object_model.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"

using namespace most;

int main() {
  MostDatabase db;
  (void)db.CreateClass("OBJECTS", {}, /*spatial=*/true);
  auto obj = db.CreateObject("OBJECTS");
  ObjectId id = (*obj)->id();
  (void)db.SetMotion("OBJECTS", id, {0, 0}, {5, 0});

  QueryManager qm(&db, {.horizon = 100});
  auto r = ParseQuery(
      "RETRIEVE o FROM OBJECTS o "
      "WHERE [x := SPEED(o.X.POSITION)] EVENTUALLY WITHIN 10 "
      "SPEED(o.X.POSITION) >= x * 2");
  if (!r.ok()) {
    std::cerr << r.status() << "\n";
    return 1;
  }
  std::cout << "Query R: " << r->ToString() << "\n\n";

  // Enter R in all three modes at time 0.
  auto continuous = qm.RegisterContinuous(*r);
  auto persistent = qm.RegisterPersistent(*r);

  auto report = [&](Tick t) {
    db.clock().AdvanceTo(t);
    auto inst = qm.Instantaneous(*r);
    auto cont = qm.CurrentAnswer(*continuous);
    auto pers = qm.PersistentAnswer(*persistent);
    bool pers_hit = false;
    for (const AnswerTuple& tuple : *pers) {
      if (tuple.interval.Contains(0)) pers_hit = true;  // At the anchor.
    }
    std::cout << "t=" << t << ":  instantaneous=" << inst->size()
              << "  continuous=" << cont->size()
              << "  persistent=" << (pers_hit ? 1 : 0) << "\n";
  };

  std::cout << "speed is 5; no future state doubles it:\n";
  report(0);

  std::cout << "\nupdate at t=1: function becomes 7t\n";
  db.clock().AdvanceTo(1);
  (void)db.UpdateDynamic("OBJECTS", id, kAttrX, 5.0,
                         TimeFunction::Linear(7.0));
  report(1);

  std::cout << "\nupdate at t=2: function becomes 10t\n";
  db.clock().AdvanceTo(2);
  (void)db.UpdateDynamic("OBJECTS", id, kAttrX, 12.0,
                         TimeFunction::Linear(10.0));
  report(2);

  std::cout << "\nAs the paper observes: the instantaneous and continuous "
               "readings never\nretrieve the object (starting anywhere, the "
               "future history has constant\nspeed), while the persistent "
               "query — anchored at t=0 and refined by the\nrecorded "
               "updates — sees the speed go from 5 to 10 within 2 ticks and\n"
               "retrieves it.\n";
  return 0;
}
