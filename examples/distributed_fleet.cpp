// Distributed query processing over a mobile fleet (paper, Section 5.3).
//
// Each vehicle's object lives only on its onboard computer; a dispatcher
// issues the three kinds of queries the paper distinguishes and the two
// processing strategies for object queries, printing the wireless traffic
// each one costs.

#include <cstdlib>
#include <iostream>

#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "ftl/parser.h"
#include "obs/exporters.h"
#include "workload/fleet.h"

using namespace most;

int main() {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions = {
      {"DEPOT", Polygon::Rectangle({450, 450}, {550, 550})}};
  Coordinator dispatcher(&net, &clock, regions);

  // A fleet of 40 vehicles with piecewise-linear routes.
  FleetGenerator fleet({.num_vehicles = 40, .area = 1000.0, .seed = 42});
  std::vector<std::unique_ptr<MobileNode>> nodes;
  for (const ObjectState& s : fleet.initial_states()) {
    nodes.push_back(std::make_unique<MobileNode>(&net, &clock, s, regions));
  }
  auto run = [&](Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };

  // --- Self-referencing query: answered onboard, zero messages. ---------
  auto self_q = ParseQuery(
      "RETRIEVE o FROM SELF o WHERE EVENTUALLY WITHIN 200 INSIDE(o, DEPOT)");
  std::cout << "self-referencing query ("
            << (Coordinator::Classify(*self_q) ==
                        DistQueryClass::kSelfReferencing
                    ? "classified self-referencing"
                    : "?")
            << "): \"will I reach the depot within 200 ticks?\"\n";
  auto self_answer = nodes[0]->EvaluateSelf(*self_q, 400);
  std::cout << "  vehicle 0: " << (self_answer->empty() ? "no" : "yes")
            << ", messages used: " << net.stats().messages_sent << "\n\n";

  // --- Object query, both strategies. ------------------------------------
  auto obj_q = ParseQuery(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 200 INSIDE(o, DEPOT)");

  net.ResetStats();
  uint64_t collect =
      dispatcher.IssueObjectQuery(*obj_q, DistStrategy::kCollect, false, 400);
  run(clock.Now() + 3);
  auto collected = dispatcher.EvaluateCollected(collect);
  auto collect_stats = net.stats();
  std::cout << "object query, strategy 1 (collect all objects at M):\n"
            << "  matches: " << collected->relation.rows.size()
            << (collected->confidence == Confidence::kCertain
                    ? " (complete)"
                    : " (partial)")
            << ", messages: "
            << collect_stats.messages_sent
            << ", bytes: " << collect_stats.bytes_sent << "\n";

  net.ResetStats();
  uint64_t broadcast = dispatcher.IssueObjectQuery(
      *obj_q, DistStrategy::kBroadcastFilter, false, 400);
  run(clock.Now() + 3);
  auto matches = dispatcher.ReportedMatches(broadcast);
  auto broadcast_stats = net.stats();
  std::cout << "object query, strategy 2 (broadcast, nodes filter):\n"
            << "  matches: " << matches->matches.size()
            << (matches->confidence == Confidence::kCertain ? " (complete)"
                                                            : " (partial)")
            << ", messages: "
            << broadcast_stats.messages_sent
            << ", bytes: " << broadcast_stats.bytes_sent << "\n";
  std::cout << "  (strategy 2 also parallelizes the evaluation across the "
               "fleet)\n\n";

  // --- Relationship query: centralized at the issuer. --------------------
  auto rel_q = ParseQuery(
      "RETRIEVE o, n FROM FLEET o, FLEET n "
      "WHERE ALWAYS FOR 3 DIST(o, n) <= 25");
  std::cout << "relationship query (\"pairs staying within 25 for the next "
               "3 ticks\"):\n";
  net.ResetStats();
  uint64_t rel = dispatcher.IssueRelationshipQuery(*rel_q, 400);
  run(clock.Now() + 3);
  auto pairs = dispatcher.EvaluateCollected(rel);
  size_t distinct_pairs = 0;
  for (const auto& [binding, when] : pairs->relation.rows) {
    if (binding[0] < binding[1] && when.Contains(clock.Now())) {
      ++distinct_pairs;
    }
  }
  std::cout << "  convoys right now: " << distinct_pairs
            << ", messages: " << net.stats().messages_sent << "\n\n";

  // --- Continuous object query: pushes only on predicate change. ---------
  net.ResetStats();
  (void)dispatcher.IssueObjectQuery(*obj_q, DistStrategy::kBroadcastFilter,
                                    /*continuous=*/true, 400);
  run(clock.Now() + 3);
  uint64_t after_registration = net.stats().messages_sent;
  // Drive the fleet for 100 ticks with real motion updates.
  auto updates = fleet.GenerateUpdates(clock.Now() + 100);
  size_t applied = 0;
  for (const MotionUpdate& u : updates) {
    if (u.at <= clock.Now()) continue;
    run(u.at);
    nodes[u.id]->UpdateMotion(u.position, u.velocity);
    ++applied;
  }
  std::cout << "continuous object query over 100 ticks of driving:\n"
            << "  motion updates: " << applied << ", push messages: "
            << net.stats().messages_sent - after_registration
            << " (only answer *changes* are transmitted)\n";
  // MOST_DUMP_METRICS=1 prints the full engine metrics snapshot (network
  // drops, retransmissions, coordinator lag, ...) on the way out.
  if (std::getenv("MOST_DUMP_METRICS") != nullptr) {
    obs::DumpMetrics(std::cerr);
  }
  return 0;
}
