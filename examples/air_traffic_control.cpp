// Air-traffic control (paper, Section 1): "retrieve all the airplanes that
// will come within 30 miles of the airport in the next 10 minutes".
//
// Demonstrates the paper's flagship future query Q, its tentative nature
// (a later motion-vector update changes the answer), and a temporal
// trigger that raises an alert the moment a plane's approach interval
// begins.

#include <iostream>

#include "core/object_model.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"

using namespace most;

int main() {
  MostDatabase db;
  (void)db.CreateClass("PLANES", {{"FLIGHT", false, ValueType::kString}},
                       /*spatial=*/true);

  // The airport is a stationary spatial object; DIST works on any pair of
  // spatial objects.
  (void)db.CreateClass("AIRPORTS", {{"CODE", false, ValueType::kString}},
                       /*spatial=*/true);
  auto airport = db.CreateObject("AIRPORTS");
  (void)db.UpdateStatic("AIRPORTS", (*airport)->id(), "CODE", Value("ORD"));
  (void)db.SetMotion("AIRPORTS", (*airport)->id(), {0, 0}, {0, 0});

  struct Flight {
    const char* name;
    Point2 pos;
    Vec2 vel;
  };
  // One tick = one minute; distances in miles.
  Flight flights[] = {
      {"UA101", {-120, 0}, {10, 0}},   // Inbound: reaches 30mi at t=9.
      {"AA202", {200, 50}, {-2, 0}},   // Too far to arrive within 10 min.
      {"DL303", {-25, 10}, {0.5, 0}},  // Already within 30 miles.
      {"SW404", {80, -60}, {-9, 7}},   // Inbound fast from the southeast.
  };
  for (const Flight& f : flights) {
    auto plane = db.CreateObject("PLANES");
    (void)db.UpdateStatic("PLANES", (*plane)->id(), "FLIGHT", Value(f.name));
    (void)db.SetMotion("PLANES", (*plane)->id(), f.pos, f.vel);
  }

  QueryManager qm(&db, {.horizon = 600});
  auto query = ParseQuery(
      "RETRIEVE p FROM PLANES p, AIRPORTS a "
      "WHERE EVENTUALLY WITHIN 10 DIST(p, a) <= 30");
  if (!query.ok()) {
    std::cerr << query.status() << "\n";
    return 1;
  }

  auto name_of = [&](ObjectId id) {
    auto cls = db.GetClass("PLANES");
    auto obj = (*cls)->Get(id);
    return (*obj)->GetStatic("FLIGHT")->string_value();
  };

  std::cout << "Query Q: planes within 30 miles of ORD in the next 10 "
               "minutes\n";
  auto answer = qm.Instantaneous(*query);
  for (const auto& binding : *answer) {
    std::cout << "  -> " << name_of(binding[0]) << "\n";
  }

  // The answer is TENTATIVE: UA101 goes around, and the database update
  // steers it out of the answer.
  std::cout << "\nUA101 reports a go-around (new heading away from ORD)\n";
  (void)db.SetMotion("PLANES", 1, {-120, 0}, {0, -12});
  answer = qm.Instantaneous(*query);
  std::cout << "re-asked at t=0 after the update:\n";
  for (const auto& binding : *answer) {
    std::cout << "  -> " << name_of(binding[0]) << "\n";
  }

  // A temporal trigger: alert when a plane ENTERS the 30-mile zone (the
  // moment its approach interval begins).
  auto enter_zone = ParseQuery(
      "RETRIEVE p FROM PLANES p, AIRPORTS a WHERE DIST(p, a) <= 30");
  auto trigger = qm.RegisterTrigger(
      *enter_zone, [&](const std::vector<ObjectId>& binding, Tick at) {
        // The binding carries exactly the RETRIEVE variables (here: p).
        std::cout << "  [ALERT t=" << at << "] " << name_of(binding[0])
                  << " entered the 30-mile zone\n";
      });
  if (!trigger.ok()) {
    std::cerr << trigger.status() << "\n";
    return 1;
  }
  std::cout << "\nRunning the clock with the approach trigger armed:\n";
  for (Tick t = 1; t <= 12; ++t) {
    db.clock().AdvanceTo(t);
    (void)qm.Poll();
  }
  return 0;
}
