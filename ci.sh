#!/usr/bin/env bash
# CI entry point: build the Release and AddressSanitizer configurations and
# run the full test suite in each. `./ci.sh tsan` additionally runs a
# ThreadSanitizer configuration (slower; exercises the parallel evaluator,
# thread pool, and query-manager concurrency suites).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=address

# Crash-torture stage: re-run the fault-injection suite under ASan with a
# failpoint armed through the environment (docs/durability.md). The suite
# itself fails if the armed probe — or its own 240 injections — never
# fire, so this stage cannot silently become a no-op.
echo "=== crash-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/torture_probe=noop" ./build-asan/tests/crash_torture_test

# Partition-torture stage: the distributed protocol under randomized
# loss/duplication/reordering/partition schedules (3 seeds), differentially
# checked against a lossless run (docs/distributed.md). The armed probe
# proves MOST_FAILPOINTS reaches the torture loop; each seed fails if its
# faults never fired, so this stage cannot silently become a no-op either.
echo "=== partition-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/dist_probe=noop" ./build-asan/tests/partition_torture_test

# Crash/restart-torture stage: WAL-backed mobile nodes killed and
# restarted on randomized schedules over a lossy network, differentially
# checked byte-for-byte against a crash-free world, with the
# never-kCertain-while-a-lease-is-expired invariant polled every tick
# (docs/distributed.md "Crash, rejoin, and catch-up"). The armed probe
# proves MOST_FAILPOINTS reaches the torture loop; the suite's summary
# test fails if no crash or lease expiry ever happened, so this stage
# cannot silently become a no-op.
echo "=== crash-restart-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/crash_probe=noop" ./build-asan/tests/crash_restart_torture_test

# Overload-torture stage: resource governance under randomized update
# storms with starvation-level budgets, plus the WAL ENOSPC and bounded-
# channel storms (docs/robustness.md). The suite differentially checks a
# governed system against an unconstrained oracle (degraded answers must
# be marked kStale and stay inside the oracle's reach, and the system must
# reconverge once limits lift); its summary test fails if no shed, cache
# eviction, or channel drop ever happened, so this stage cannot silently
# become a no-op.
echo "=== overload-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/overload_probe=noop" ./build-asan/tests/overload_torture_test

# Delta-refresh stage: delta-vs-full differential corpus (200 randomized
# update schedules, byte-identical answers) plus the env-armed probe that
# proves the delta path — not the full-refresh fallback — served the
# refreshes (docs/incremental_eval.md). The probe test skips unless
# MOST_FAILPOINTS names ftl/delta/refresh, so arming it here keeps the
# stage from silently degrading to full re-evaluation.
echo "=== delta-refresh stage (env-armed probe, ASan) ==="
MOST_FAILPOINTS="ftl/delta/refresh=noop" ./build-asan/tests/differential_test \
  --gtest_filter='DifferentialTest.DeltaRefresh*'

# Layout-differential stage: the whole differential corpus again with the
# environment pinned to the legacy (AoS) layout, so every evaluator that
# resolves EvalLayout::kAuto takes the pre-SoA code path under ASan. The
# corpus itself cross-checks legacy vs. SoA explicitly
# (DifferentialTest.LayoutsAgreeByteForByteAcrossPaths); this run keeps
# the legacy oracle itself sanitizer-clean (docs/eval_internals.md).
echo "=== layout-differential stage (MOST_EVAL_LAYOUT=legacy, ASan) ==="
MOST_EVAL_LAYOUT=legacy ./build-asan/tests/differential_test

# Shard-differential stage: the sharded engine's scatter-gather answers
# against a twin unsharded oracle, pinned at every shard count the bench
# sweeps (docs/sharding.md). MOST_SHARDS pins the corpus to one count per
# run — a 4-count sweep of the full product would square the stage's
# runtime for no added coverage per count. The unit suite then exercises
# the edge cases (reshard migration, DIST straddling shards, empty-shard
# gather, WAL round-trip, degraded-shard poisoning) under ASan.
echo "=== shard-differential stage (MOST_SHARDS sweep, ASan) ==="
for shards in 1 2 4 8; do
  MOST_SHARDS="$shards" ./build-asan/tests/differential_test \
    --gtest_filter='DifferentialTest.ShardedEngine*'
done
./build-asan/tests/sharded_engine_test
./build-asan/tests/mpsc_queue_test

# Fuzz-smoke stage: replay the checked-in parser/evaluator corpus and a
# bounded deterministic mutation loop under ASan. Every input that parses
# is evaluated in both layouts and must produce byte-identical relations;
# the harness aborts (and this stage fails) on any divergence or
# sanitizer report (tests/fuzz/ftl_fuzz.cc).
echo "=== fuzz-smoke stage (corpus + 2000 mutations, ASan) ==="
./build-asan/tests/ftl_fuzz tests/fuzz/corpus --mutate 2000

# Observability stage: the exporter/EXPLAIN goldens re-run explicitly (a
# ctest filter change can never drop them), then the demo binary's
# Prometheus exposition is checked against the required-metric allowlist —
# families from five instrumented subsystems (FTL evaluation, query
# manager, WAL/storage, network/reliable channel, resource governance /
# graceful degradation) plus the failpoint collector
# (docs/observability.md, docs/robustness.md).
echo "=== observability stage (goldens + exporter allowlist, ASan) ==="
./build-asan/tests/obs_test
./build-asan/tests/explain_test
PROM="$(./build-asan/examples/observability_demo)"
for metric in \
  most_ftl_evaluations_total \
  most_ftl_eval_latency_seconds_bucket \
  most_ftl_arena_bytes_total \
  most_ftl_arena_heap_fallbacks_total \
  most_qm_refreshes_total \
  most_qm_refresh_latency_seconds_bucket \
  most_wal_appends_total \
  most_checkpoints_total \
  most_net_messages_sent_total \
  most_rc_retransmissions_total \
  most_rc_frames_shed_total \
  most_rc_peers_evicted_total \
  most_governor_sheds_total \
  most_governor_degrades \
  most_governor_storage_degraded \
  most_qm_shed_refreshes_total \
  most_interval_cache_evictions_total \
  most_shard_updates_routed_total \
  most_shard_updates_applied_total \
  most_shard_queue_depth \
  most_shard_refresh_latency_seconds_bucket \
  most_shard_gather_merges_total \
  most_coord_deadline_expired_total \
  most_coord_requests_shed_total \
  most_coord_lease_expirations_total \
  most_coord_rejoins_total \
  most_coord_catchup_bytes_total \
  most_node_recoveries_total \
  most_trace_spans_recorded_total \
  most_trace_spans_dropped_total \
  most_telemetry_samples_total \
  most_telemetry_ticks_sampled_total \
  most_telemetry_watchdog_adjustments_total \
  most_failpoint_fired_total; do
  if ! grep -q "^${metric}" <<<"$PROM"; then
    echo "observability stage: missing required metric '${metric}'"
    exit 1
  fi
done

# Trace-golden stage: the causal-tracing suite (span parenting, context
# propagation across the network and the sharded scatter-gather, the
# masked Perfetto/Chrome-trace golden, JSON escaping) and the telemetry
# timeline suite (sampling semantics, watchdog arm/relax against the
# governor) re-run explicitly so a ctest filter change can never drop
# them (docs/observability.md).
echo "=== trace-golden stage (causal tracing + telemetry, ASan) ==="
./build-asan/tests/trace_test
./build-asan/tests/telemetry_test

# Metrics-overhead stage: bench_ftl_eval measures the same serial
# evaluation with the registry armed vs. the kill switch, and again with
# tracing + telemetry armed vs. disabled; each delta must stay under 5%
# (Release — sanitizer builds would distort the ratio).
echo "=== metrics-overhead stage (Release, < 5%) ==="
(cd build-release && MOST_BENCH_VEHICLES=4096 \
  ./bench/bench_ftl_eval --benchmark_filter=OVERHEAD_ONLY >/dev/null)
overhead="$(grep -o '"metrics_overhead_pct": *[-0-9.eE+]*' \
  build-release/BENCH_ftl_eval.json | awk '{print $2}')"
awk -v o="$overhead" 'BEGIN {
  printf "metrics overhead: %s%%\n", o
  if (o >= 5.0) { print "metrics overhead exceeds the 5% budget"; exit 1 }
}'
trace_overhead="$(grep -o '"trace_overhead_pct": *[-0-9.eE+]*' \
  build-release/BENCH_ftl_eval.json | awk '{print $2}')"
awk -v o="$trace_overhead" 'BEGIN {
  printf "trace+telemetry overhead: %s%%\n", o
  if (o >= 5.0) { print "trace overhead exceeds the 5% budget"; exit 1 }
}'
# Observability micro-costs (span create/record, telemetry OnTick, Chrome
# export): smoke-run the bench so its JSON emitter stays healthy.
(cd build-release && ./bench/bench_obs --benchmark_min_time=0.01 >/dev/null)

# Bench-regression stage: re-measure the serial FTL evaluation at the same
# vehicle count as the last recorded bench/trajectories/ftl_eval.json
# entry and fail on a >15% regression. Three full bench invocations (each
# internally best-of-3) with the overall minimum taken, so a scheduler
# hiccup on a loaded runner does not produce a false alarm.
echo "=== bench-regression stage (serial path, Release, < +15%) ==="
baseline="$(grep -o '"serial_ns_per_op": *[0-9.eE+-]*' \
  bench/trajectories/ftl_eval.json | tail -1 | awk '{print $2}')"
base_vehicles="$(grep -o '"vehicles": *[0-9]*' \
  bench/trajectories/ftl_eval.json | tail -1 | awk '{print $2}')"
fresh=""
for _ in 1 2 3; do
  (cd build-release && MOST_BENCH_VEHICLES="$base_vehicles" \
    ./bench/bench_ftl_eval --benchmark_filter=OVERHEAD_ONLY >/dev/null)
  run="$(grep -o '"serial_ns_per_op": *[0-9.eE+-]*' \
    build-release/BENCH_ftl_eval.json | awk '{print $2}')"
  fresh="$(awk -v a="${fresh:-inf}" -v b="$run" \
    'BEGIN { print (a == "inf" || b + 0 < a + 0) ? b : a }')"
done
awk -v base="$baseline" -v fresh="$fresh" 'BEGIN {
  pct = (fresh - base) / base * 100.0
  printf "serial ns/op: baseline %s, fresh %s (%+.1f%%)\n", base, fresh, pct
  if (pct > 15.0) { print "serial path regressed beyond the 15% budget"; exit 1 }
}'

if [[ "${1:-}" == "tsan" ]]; then
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=thread
  # The query-manager concurrency suite (TickAll through the pool, atomic
  # refresh counters, delta splice under parallel evaluation) is the suite
  # the delta path most needs under TSan; run it explicitly so a ctest
  # filter change can never drop it from this configuration.
  echo "=== query-manager concurrency suite (TSan) ==="
  ./build-tsan/tests/query_manager_test
  ./build-tsan/tests/differential_test \
    --gtest_filter='DifferentialTest.DeltaRefresh*'
  # The sharded engine's lock-free handoff queue and parallel
  # drain/refresh phases are memory-ordering claims; TSan is the tool
  # that checks them (docs/sharding.md).
  echo "=== sharded-engine concurrency suite (TSan) ==="
  ./build-tsan/tests/mpsc_queue_test
  ./build-tsan/tests/sharded_engine_test
  MOST_SHARDS=4 ./build-tsan/tests/differential_test \
    --gtest_filter='DifferentialTest.ShardedEngine*'
fi
