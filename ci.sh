#!/usr/bin/env bash
# CI entry point: build the Release and AddressSanitizer configurations and
# run the full test suite in each. `./ci.sh tsan` additionally runs a
# ThreadSanitizer configuration (slower; exercises the parallel evaluator,
# thread pool, and query-manager concurrency suites).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=address

# Crash-torture stage: re-run the fault-injection suite under ASan with a
# failpoint armed through the environment (docs/durability.md). The suite
# itself fails if the armed probe — or its own 240 injections — never
# fire, so this stage cannot silently become a no-op.
echo "=== crash-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/torture_probe=noop" ./build-asan/tests/crash_torture_test

# Partition-torture stage: the distributed protocol under randomized
# loss/duplication/reordering/partition schedules (3 seeds), differentially
# checked against a lossless run (docs/distributed.md). The armed probe
# proves MOST_FAILPOINTS reaches the torture loop; each seed fails if its
# faults never fired, so this stage cannot silently become a no-op either.
echo "=== partition-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/dist_probe=noop" ./build-asan/tests/partition_torture_test

# Delta-refresh stage: delta-vs-full differential corpus (200 randomized
# update schedules, byte-identical answers) plus the env-armed probe that
# proves the delta path — not the full-refresh fallback — served the
# refreshes (docs/incremental_eval.md). The probe test skips unless
# MOST_FAILPOINTS names ftl/delta/refresh, so arming it here keeps the
# stage from silently degrading to full re-evaluation.
echo "=== delta-refresh stage (env-armed probe, ASan) ==="
MOST_FAILPOINTS="ftl/delta/refresh=noop" ./build-asan/tests/differential_test \
  --gtest_filter='DifferentialTest.DeltaRefresh*'

if [[ "${1:-}" == "tsan" ]]; then
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=thread
  # The query-manager concurrency suite (TickAll through the pool, atomic
  # refresh counters, delta splice under parallel evaluation) is the suite
  # the delta path most needs under TSan; run it explicitly so a ctest
  # filter change can never drop it from this configuration.
  echo "=== query-manager concurrency suite (TSan) ==="
  ./build-tsan/tests/query_manager_test
  ./build-tsan/tests/differential_test \
    --gtest_filter='DifferentialTest.DeltaRefresh*'
fi
