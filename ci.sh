#!/usr/bin/env bash
# CI entry point: build the Release and AddressSanitizer configurations and
# run the full test suite in each. `./ci.sh tsan` additionally runs a
# ThreadSanitizer configuration (slower; exercises the parallel evaluator,
# thread pool, and query-manager concurrency suites).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=address

# Crash-torture stage: re-run the fault-injection suite under ASan with a
# failpoint armed through the environment (docs/durability.md). The suite
# itself fails if the armed probe — or its own 240 injections — never
# fire, so this stage cannot silently become a no-op.
echo "=== crash-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/torture_probe=noop" ./build-asan/tests/crash_torture_test

# Partition-torture stage: the distributed protocol under randomized
# loss/duplication/reordering/partition schedules (3 seeds), differentially
# checked against a lossless run (docs/distributed.md). The armed probe
# proves MOST_FAILPOINTS reaches the torture loop; each seed fails if its
# faults never fired, so this stage cannot silently become a no-op either.
echo "=== partition-torture stage (env-armed failpoints, ASan) ==="
MOST_FAILPOINTS="ci/dist_probe=noop" ./build-asan/tests/partition_torture_test

if [[ "${1:-}" == "tsan" ]]; then
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=thread
fi
