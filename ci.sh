#!/usr/bin/env bash
# CI entry point: build the Release and AddressSanitizer configurations and
# run the full test suite in each. `./ci.sh tsan` additionally runs a
# ThreadSanitizer configuration (slower; exercises the parallel evaluator,
# thread pool, and query-manager concurrency suites).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=address

if [[ "${1:-}" == "tsan" ]]; then
  run_config build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMOST_SANITIZE=thread
fi
