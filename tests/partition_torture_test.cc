// Partition-torture suite: the distributed query protocol under a
// randomized schedule of message loss, duplication, reordering, and
// network partitions.
//
// The central check is a differential oracle (crash_torture_test.cc
// style): the same fleet, the same motion updates, and the same queries
// run in two worlds — one over a faulty network, one over a lossless one.
// After every partition heals and both reliable channels quiesce, the
// coordinator's answers must be BYTE-IDENTICAL across the worlds: the
// reliability layer's whole job is to make faults invisible to the
// answer, only visible to latency and message counts.
//
// Each torture run also asserts its faults actually fired (a seed that
// exercised nothing would pass vacuously), and ci.sh arms a
// MOST_FAILPOINTS probe through this binary to prove the env plumbing
// reaches the torture loop.

#include <gtest/gtest.h>

#include "metrics_dump_listener.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/failpoint.h"
#include "common/rng.h"
#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "ftl/parser.h"
#include "test_seed.h"
#include "workload/fleet.h"

namespace most {
namespace {

constexpr size_t kVehicles = 6;

// Faults actually observed across all torture seeds; the summary test at
// the bottom fails loudly if the whole suite ran fault-free.
uint64_t g_faults_observed = 0;

SimNetwork::Options NetOptions(bool faulty, uint64_t seed) {
  SimNetwork::Options o;
  o.latency = 1;
  o.seed = seed;
  if (faulty) {
    o.loss_probability = 0.15;
    o.duplicate_probability = 0.1;
    o.reorder_probability = 0.1;
    o.reorder_jitter = 4;
  }
  return o;
}

/// One complete simulation: a coordinator and kVehicles mobile nodes over
/// either a faulty or a lossless network. Both worlds of a differential
/// pair are built from the same FleetGenerator seed, so object state is
/// identical; only message fate differs.
struct World {
  Clock clock;
  SimNetwork net;
  std::map<std::string, Polygon> regions;
  std::unique_ptr<Coordinator> coordinator;
  std::vector<std::unique_ptr<MobileNode>> nodes;

  World(bool faulty, uint64_t net_seed)
      : net(&clock, NetOptions(faulty, net_seed)),
        regions({{"P", Polygon::Rectangle({40, 40}, {160, 160})}}) {
    Coordinator::Options copts;
    // 10 beacon periods: a *false* death verdict needs 10 consecutive
    // beacon losses (~0.15^10), so post-heal re-syncs fire only for
    // genuine partition-induced deaths. That keeps the two worlds'
    // post-barrier reports aligned for the byte-identical comparison.
    copts.liveness_timeout = 40;
    coordinator = std::make_unique<Coordinator>(&net, &clock, regions, copts);
    FleetGenerator fleet(
        {.num_vehicles = kVehicles, .area = 200.0, .seed = 77});
    MobileNode::Options opts;
    opts.beacon_interval = 4;  // Heartbeats drive liveness + re-sync.
    opts.home = coordinator->node_id();
    for (const ObjectState& s : fleet.initial_states()) {
      nodes.push_back(
          std::make_unique<MobileNode>(&net, &clock, s, regions, opts));
    }
  }

  void StepTo(Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  }

  bool Quiescent() const {
    if (coordinator->channel().unacked() > 0) return false;
    for (const auto& node : nodes) {
      if (node->channel().unacked() > 0) return false;
    }
    return true;
  }
};

FtlQuery MustParse(const std::string& s) {
  auto q = ParseQuery(s);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

std::string SerializeReported(const Coordinator& c, uint64_t qid) {
  auto answer = c.ReportedMatches(qid);
  if (!answer.ok()) return "error: " + answer.status().ToString();
  std::ostringstream out;
  out << "confidence="
      << (answer->confidence == Confidence::kCertain ? "certain" : "stale");
  out << " missing={";
  for (NodeId id : answer->missing) out << id << ",";
  out << "}";
  for (const auto& [id, when] : answer->matches) {
    out << " " << id << "->" << when.ToString();
  }
  return out.str();
}

std::string SerializeCollected(const Coordinator& c, uint64_t qid) {
  auto answer = c.EvaluateCollected(qid);
  if (!answer.ok()) return "error: " + answer.status().ToString();
  std::ostringstream out;
  out << "confidence="
      << (answer->confidence == Confidence::kCertain ? "certain" : "stale");
  out << " missing={";
  for (NodeId id : answer->missing) out << id << ",";
  out << "}\n";
  out << answer->relation.ToString();
  return out.str();
}

/// Runs the full torture scenario for one seed: warmup, continuous
/// queries, a randomized fault + partition schedule, heal, a barrier
/// flush, post-heal one-shot queries, quiescence, and the byte-identical
/// comparison.
void RunDifferential(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  constexpr Tick kWarmup = 10;
  constexpr Tick kTortureEnd = 260;
  constexpr Tick kSettleEnd = 420;   // Revivals + re-syncs drain here.
  constexpr Tick kIssueOneShots = 430;
  constexpr Tick kFinal = 700;

  World faulty(/*faulty=*/true, seed);
  World lossless(/*faulty=*/false, seed);
  auto step_both = [&](Tick until) {
    faulty.StepTo(until);
    lossless.StepTo(until);
  };

  step_both(kWarmup);

  // Continuous queries, issued at the same tick in both worlds.
  FtlQuery cq = MustParse(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 60 INSIDE(o, P)");
  uint64_t cq_broadcast_f = faulty.coordinator->IssueObjectQuery(
      cq, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  uint64_t cq_broadcast_l = lossless.coordinator->IssueObjectQuery(
      cq, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  uint64_t cq_collect_f = faulty.coordinator->IssueObjectQuery(
      cq, DistStrategy::kCollect, /*continuous=*/true, 512);
  uint64_t cq_collect_l = lossless.coordinator->IssueObjectQuery(
      cq, DistStrategy::kCollect, /*continuous=*/true, 512);
  ASSERT_EQ(cq_broadcast_f, cq_broadcast_l);
  ASSERT_EQ(cq_collect_f, cq_collect_l);

  // Torture phase: identical motion updates in both worlds; a rotating
  // randomized partition (and the configured loss/dup/reorder rates) in
  // the faulty world only. Partitions are long enough (up to 2x the
  // liveness timeout) that nodes get declared dead and revived.
  FleetGenerator fleet({.num_vehicles = kVehicles, .area = 200.0, .seed = 77});
  std::vector<MotionUpdate> updates = fleet.GenerateUpdates(kTortureEnd);
  size_t next_update = 0;
  Rng schedule(seed * 7919 + 13);
  Tick next_cut = kWarmup + 10;
  Tick next_heal = -1;
  for (Tick t = kWarmup + 1; t <= kTortureEnd; ++t) {
    if (t == next_heal) faulty.net.Heal("cut");
    if (t == next_cut) {
      faulty.net.Heal("cut");
      // Cut 1..kVehicles-1 random mobile nodes off from the rest
      // (coordinator always on the majority side).
      std::set<NodeId> cut, rest;
      size_t n_cut = static_cast<size_t>(
          schedule.UniformInt(1, static_cast<int64_t>(kVehicles) - 1));
      std::vector<size_t> order(kVehicles);
      for (size_t i = 0; i < kVehicles; ++i) order[i] = i;
      for (size_t i = kVehicles - 1; i > 0; --i) {
        std::swap(order[i], order[schedule.UniformInt(0, i)]);
      }
      for (size_t i = 0; i < kVehicles; ++i) {
        (i < n_cut ? cut : rest).insert(faulty.nodes[order[i]]->node_id());
      }
      rest.insert(faulty.coordinator->node_id());
      faulty.net.Partition("cut", cut, rest);
      next_heal = t + schedule.UniformInt(10, 50);
      next_cut = t + schedule.UniformInt(40, 80);
    }
    step_both(t);
    while (next_update < updates.size() && updates[next_update].at <= t) {
      const MotionUpdate& u = updates[next_update++];
      faulty.nodes[u.id]->UpdateMotion(u.position, u.velocity);
      lossless.nodes[u.id]->UpdateMotion(u.position, u.velocity);
    }
    // The CI probe: proves MOST_FAILPOINTS reaches the torture loop.
    (void)FailpointRegistry::Instance().Check("ci/dist_probe");
  }

  // Heal everything and let retransmissions, revivals and continuous
  // re-syncs drain.
  faulty.net.HealAll();
  step_both(kSettleEnd);

  // Barrier flush: the same motion update on every node at the same tick
  // in both worlds. Every node whose answer shifted re-reports, so both
  // coordinators converge on reports computed at this exact tick.
  for (size_t i = 0; i < kVehicles; ++i) {
    Point2 p = lossless.nodes[i]->state().position;
    Vec2 v = lossless.nodes[i]->state().velocity;
    faulty.nodes[i]->UpdateMotion(p, v);
    lossless.nodes[i]->UpdateMotion(p, v);
  }
  step_both(kIssueOneShots);

  // Post-heal one-shot queries (anchored at their issue tick, so both
  // worlds evaluate the same window no matter how late requests land).
  FtlQuery oq = MustParse(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 40 INSIDE(o, P)");
  FtlQuery rq = MustParse(
      "RETRIEVE o, n FROM FLEET o, FLEET n WHERE EVENTUALLY DIST(o, n) <= 50");
  uint64_t os_broadcast_f = faulty.coordinator->IssueObjectQuery(
      oq, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  uint64_t os_broadcast_l = lossless.coordinator->IssueObjectQuery(
      oq, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  uint64_t os_collect_f = faulty.coordinator->IssueObjectQuery(
      oq, DistStrategy::kCollect, /*continuous=*/false, 256);
  uint64_t os_collect_l = lossless.coordinator->IssueObjectQuery(
      oq, DistStrategy::kCollect, /*continuous=*/false, 256);
  uint64_t rel_f = faulty.coordinator->IssueRelationshipQuery(rq, 256);
  uint64_t rel_l = lossless.coordinator->IssueRelationshipQuery(rq, 256);

  // Quiesce: every endpoint in both worlds fully acknowledged, at the
  // same final tick (the continuous-query comparison below evaluates at
  // "now", so the clocks must agree).
  step_both(kFinal);
  ASSERT_TRUE(faulty.Quiescent())
      << "faulty world still has unacked frames at tick " << kFinal;
  ASSERT_TRUE(lossless.Quiescent());

  // Every answer must be certain in both worlds...
  for (uint64_t qid : {cq_broadcast_f, os_broadcast_f}) {
    EXPECT_EQ(faulty.coordinator->ReportedMatches(qid)->confidence,
              Confidence::kCertain)
        << "qid " << qid;
  }
  for (uint64_t qid : {cq_collect_f, os_collect_f, rel_f}) {
    EXPECT_EQ(faulty.coordinator->EvaluateCollected(qid)->confidence,
              Confidence::kCertain)
        << "qid " << qid;
  }

  // ...and byte-identical across the worlds.
  EXPECT_EQ(SerializeReported(*faulty.coordinator, cq_broadcast_f),
            SerializeReported(*lossless.coordinator, cq_broadcast_l))
      << "continuous broadcast answers diverged";
  EXPECT_EQ(SerializeCollected(*faulty.coordinator, cq_collect_f),
            SerializeCollected(*lossless.coordinator, cq_collect_l))
      << "continuous collect answers diverged";
  EXPECT_EQ(SerializeReported(*faulty.coordinator, os_broadcast_f),
            SerializeReported(*lossless.coordinator, os_broadcast_l))
      << "one-shot broadcast answers diverged";
  EXPECT_EQ(SerializeCollected(*faulty.coordinator, os_collect_f),
            SerializeCollected(*lossless.coordinator, os_collect_l))
      << "one-shot collect answers diverged";
  EXPECT_EQ(SerializeCollected(*faulty.coordinator, rel_f),
            SerializeCollected(*lossless.coordinator, rel_l))
      << "relationship answers diverged";

  // Fault guards: a run that tortured nothing proves nothing.
  const SimNetwork::Stats& fs = faulty.net.stats();
  EXPECT_GT(fs.dropped_loss, 0u) << "no message was ever lost";
  EXPECT_GT(fs.duplicated, 0u) << "no message was ever duplicated";
  EXPECT_GT(fs.reordered, 0u) << "no message was ever delayed/reordered";
  EXPECT_GT(fs.dropped_partition, 0u) << "no partition ever cut a message";
  g_faults_observed += fs.faults_total();
  // The lossless control world must be exactly that.
  EXPECT_EQ(lossless.net.stats().faults_total(), 0u);
  EXPECT_EQ(lossless.net.stats().dropped_partition, 0u);
}

TEST(PartitionTortureTest, DifferentialAgainstLosslessWorldSeed1) {
  (void)FailpointRegistry::Instance().ArmFromEnv();
  RunDifferential(test::SuiteSeed("PartitionTorture.Differential1", 1));
}

TEST(PartitionTortureTest, DifferentialAgainstLosslessWorldSeed2) {
  (void)FailpointRegistry::Instance().ArmFromEnv();
  RunDifferential(test::SuiteSeed("PartitionTorture.Differential2", 2));
}

TEST(PartitionTortureTest, DifferentialAgainstLosslessWorldSeed3) {
  (void)FailpointRegistry::Instance().ArmFromEnv();
  RunDifferential(test::SuiteSeed("PartitionTorture.Differential3", 3));
}

// Deterministic completeness check: a partial answer must name exactly
// the unreachable nodes and must never claim certainty while any are
// missing — under an active partition AND after arbitrary polling.
TEST(PartitionTortureTest, PartialAnswersNameTheMissingNodes) {
  World world(/*faulty=*/false, 5);
  world.StepTo(4);
  std::set<NodeId> cut = {world.nodes[1]->node_id(),
                          world.nodes[4]->node_id()};
  std::set<NodeId> rest;
  rest.insert(world.coordinator->node_id());
  for (const auto& node : world.nodes) {
    if (cut.count(node->node_id()) == 0) rest.insert(node->node_id());
  }
  world.net.Partition("cut", cut, rest);

  FtlQuery q = MustParse(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)");
  uint64_t qid = world.coordinator->IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);

  // Replies from reachable nodes drain within the first few ticks; until
  // then the missing set also contains nodes that simply have not
  // answered yet — but never certainty, and never without the cut nodes.
  for (int i = 0; i < 8; ++i) {
    world.StepTo(world.clock.Now() + 1);
    auto answer = world.coordinator->ReportedMatches(qid);
    ASSERT_TRUE(answer.ok());
    ASSERT_NE(answer->confidence, Confidence::kCertain);
    for (NodeId id : cut) ASSERT_TRUE(answer->missing.count(id));
  }
  // From here the missing set is exactly the partitioned nodes, at every
  // single tick until the heal.
  for (int i = 0; i < 64; ++i) {
    world.StepTo(world.clock.Now() + 1);
    auto answer = world.coordinator->ReportedMatches(qid);
    ASSERT_TRUE(answer.ok());
    ASSERT_NE(answer->confidence, Confidence::kCertain)
        << "claimed certainty while nodes were unreachable (tick "
        << world.clock.Now() << ")";
    ASSERT_EQ(answer->missing, cut);
  }
  EXPECT_TRUE(world.coordinator->DeadlinePassed(qid));

  world.net.Heal("cut");
  world.StepTo(world.clock.Now() + 80);
  auto answer = world.coordinator->ReportedMatches(qid);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->confidence, Confidence::kCertain);
  EXPECT_TRUE(answer->missing.empty());
}

// ci.sh arms a probe via MOST_FAILPOINTS before running this suite; the
// torture loop checks the site every tick, so a CI run that silently
// failed to arm the env would be caught here.
TEST(PartitionTortureTest, EnvArmedProbeFires) {
  const char* env = std::getenv("MOST_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("ci/dist_probe") == std::string::npos) {
    GTEST_SKIP() << "MOST_FAILPOINTS probe not armed (not the CI stage)";
  }
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.ArmFromEnv().ok());
  EXPECT_TRUE(reg.Check("ci/dist_probe").ok());  // noop spec: counts only.
  EXPECT_GE(reg.triggered("ci/dist_probe"), 1u)
      << "the torture loop never hit the armed probe";
}

// Must run after the differential tests (gtest preserves in-file order):
// the whole suite passing without a single injected fault would mean the
// torture schedule is broken, not that the protocol is perfect.
TEST(PartitionTortureTest, ZSummaryFaultsActuallyFired) {
  EXPECT_GT(g_faults_observed, 0u)
      << "no torture run observed any fault — the suite is vacuous";
}

}  // namespace
}  // namespace most
