#include "common/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

namespace most {
namespace {

TEST(MpscQueueTest, EmptyPopIsEmpty) {
  MpscQueue<int> q;
  std::vector<int> out;
  EXPECT_EQ(q.PopAll(&out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(q.ApproxDepth(), 0u);
}

TEST(MpscQueueTest, SingleProducerFifo) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.Push(i);
  EXPECT_EQ(q.ApproxDepth(), 100u);
  std::vector<int> out;
  EXPECT_EQ(q.PopAll(&out), 100u);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.ApproxDepth(), 0u);
}

TEST(MpscQueueTest, PopAllAppendsToExistingVector) {
  MpscQueue<int> q;
  q.Push(7);
  std::vector<int> out{1, 2};
  EXPECT_EQ(q.PopAll(&out), 1u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 7);
}

TEST(MpscQueueTest, MoveOnlyValues) {
  MpscQueue<std::unique_ptr<int>> q;
  q.Push(std::make_unique<int>(42));
  std::vector<std::unique_ptr<int>> out;
  EXPECT_EQ(q.PopAll(&out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out[0], 42);
}

// Exactly-once delivery and per-producer FIFO under concurrent producers,
// with the consumer racing the producers (the TSan CI stage runs this to
// certify the handoff protocol's memory ordering).
TEST(MpscQueueTest, ConcurrentProducersExactlyOnceAndFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<uint64_t> q;
  std::atomic<bool> done{false};
  std::vector<uint64_t> received;

  std::thread consumer([&] {
    std::vector<uint64_t> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      q.PopAll(&batch);
      received.insert(received.end(), batch.begin(), batch.end());
    }
    // Final drain after all producers finished.
    batch.clear();
    q.PopAll(&batch);
    received.insert(received.end(), batch.begin(), batch.end());
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push((static_cast<uint64_t>(p) << 32) | static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(received.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
  // Per-producer FIFO: each producer's sequence numbers appear in order.
  std::map<uint64_t, uint64_t> next_seq;
  for (uint64_t v : received) {
    uint64_t producer = v >> 32;
    uint64_t seq = v & 0xffffffffu;
    EXPECT_EQ(seq, next_seq[producer]) << "producer " << producer;
    next_seq[producer] = seq + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[static_cast<uint64_t>(p)],
              static_cast<uint64_t>(kPerProducer));
  }
}

}  // namespace
}  // namespace most
