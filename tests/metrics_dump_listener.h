#ifndef MOST_TESTS_METRICS_DUMP_LISTENER_H_
#define MOST_TESTS_METRICS_DUMP_LISTENER_H_

// Optional end-of-run metrics dump for the torture suites: set
// MOST_DUMP_METRICS=1 and the binary prints the full engine metrics
// snapshot (obs::DumpMetrics) after the last test — failpoint firings,
// WAL/salvage counters, network fault counts and all. Include this header
// once per test binary; the listener registers itself at static-init time.

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>

#include "obs/exporters.h"

namespace most::testing_support {

class MetricsDumpListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestProgramEnd(const ::testing::UnitTest&) override {
    if (std::getenv("MOST_DUMP_METRICS") == nullptr) return;
    obs::DumpMetrics(std::cerr);
  }
};

namespace {

const bool kMetricsDumpListenerRegistered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new MetricsDumpListener());
  return true;
}();

}  // namespace

}  // namespace most::testing_support

#endif  // MOST_TESTS_METRICS_DUMP_LISTENER_H_
