#include <gtest/gtest.h>

#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "distributed/network.h"
#include "distributed/transmission.h"
#include "ftl/parser.h"

namespace most {
namespace {

ObjectState MakeState(ObjectId id, Point2 pos, Vec2 vel, Tick at = 0) {
  ObjectState s;
  s.id = id;
  s.at = at;
  s.position = pos;
  s.velocity = vel;
  return s;
}

TEST(SimNetworkTest, DeliversAfterLatency) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 2});
  std::vector<Tick> received;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode(
      [&](const Message& m) { received.push_back(clock.Now()); });
  net.Send(a, b, CancelQuery{1});
  net.DeliverDue();
  EXPECT_TRUE(received.empty());
  clock.Advance(1);
  net.DeliverDue();
  EXPECT_TRUE(received.empty());
  clock.Advance(1);
  net.DeliverDue();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 2);
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST(SimNetworkTest, DisconnectionDropsMessages) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  int received = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message&) { ++received; });
  net.SetConnected(b, false);
  net.Send(a, b, CancelQuery{1});
  net.DeliverDue();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  net.SetConnected(b, true);
  net.Send(a, b, CancelQuery{1});
  net.DeliverDue();
  EXPECT_EQ(received, 1);
}

TEST(SimNetworkTest, BroadcastReachesAllOthers) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  int received = 0;
  NodeId a = net.AddNode([&](const Message&) { ++received; });
  net.AddNode([&](const Message&) { ++received; });
  net.AddNode([&](const Message&) { ++received; });
  net.Broadcast(a, CancelQuery{1});
  net.DeliverDue();
  EXPECT_EQ(received, 2);  // Not delivered to the sender.
}

TEST(SimNetworkTest, LossyLinkDropsRoughlyTheConfiguredFraction) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0, .loss_probability = 0.3, .seed = 9});
  int received = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message&) { ++received; });
  for (int i = 0; i < 1000; ++i) {
    net.Send(a, b, CancelQuery{static_cast<uint64_t>(i)});
  }
  net.DeliverDue();
  EXPECT_EQ(net.stats().messages_dropped,
            1000u - static_cast<uint64_t>(received));
  // Within a loose band around 30%.
  EXPECT_GT(net.stats().messages_dropped, 200u);
  EXPECT_LT(net.stats().messages_dropped, 400u);
}

TEST(SimNetworkTest, BytesAccounted) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([](const Message&) {});
  ObjectState s = MakeState(1, {0, 0}, {1, 1});
  s.attrs["fuel"] = 10;
  net.Send(a, b, s);
  EXPECT_EQ(net.stats().bytes_sent, EstimateBytes(MessagePayload(s)));
  EXPECT_GT(net.stats().bytes_sent, 0u);
}

class DistributedQueryTest : public ::testing::Test {
 protected:
  DistributedQueryTest()
      : net_(&clock_, {.latency = 1}),
        regions_({{"P", Polygon::Rectangle({0, 0}, {100, 100})}}),
        coordinator_(&net_, &clock_, regions_) {
    // Three vehicles: one inside P, one heading into P, one far away.
    nodes_.push_back(std::make_unique<MobileNode>(
        &net_, &clock_, MakeState(0, {50, 50}, {0, 0}), regions_));
    nodes_.push_back(std::make_unique<MobileNode>(
        &net_, &clock_, MakeState(1, {-20, 50}, {1, 0}), regions_));
    nodes_.push_back(std::make_unique<MobileNode>(
        &net_, &clock_, MakeState(2, {5000, 5000}, {0, 0}), regions_));
  }

  void Run(Tick until) {
    while (clock_.Now() < until) {
      clock_.Advance();
      net_.DeliverDue();
    }
  }

  FtlQuery Parse(const std::string& s) {
    auto q = ParseQuery(s);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  Clock clock_;
  SimNetwork net_;
  std::map<std::string, Polygon> regions_;
  Coordinator coordinator_;
  std::vector<std::unique_ptr<MobileNode>> nodes_;
};

TEST_F(DistributedQueryTest, Classification) {
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM SELF o WHERE EVENTUALLY WITHIN 3 "
                      "INSIDE(o, P)")),
            DistQueryClass::kSelfReferencing);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)")),
            DistQueryClass::kObject);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o, n FROM CARS o, CARS n "
                      "WHERE DIST(o, n) <= 2")),
            DistQueryClass::kRelationship);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o, n FROM CARS o, CARS n "
                      "WHERE INSIDE(o, P) AND INSIDE(n, P)")),
            DistQueryClass::kRelationship);
}

TEST_F(DistributedQueryTest, SelfReferencingNeedsNoCommunication) {
  FtlQuery q = Parse(
      "RETRIEVE o FROM SELF o WHERE EVENTUALLY WITHIN 30 INSIDE(o, P)");
  // Node 1 reaches P (x >= 0) at t=20 < 30.
  auto when = nodes_[1]->EvaluateSelf(q, 256);
  ASSERT_TRUE(when.ok()) << when.status();
  EXPECT_FALSE(when->empty());
  // Node 2 never reaches P.
  auto never = nodes_[2]->EvaluateSelf(q, 256);
  ASSERT_TRUE(never.ok());
  EXPECT_TRUE(never->empty());
  EXPECT_EQ(net_.stats().messages_sent, 0u);
}

TEST_F(DistributedQueryTest, ObjectQueryBroadcastOnlyMatchesReply) {
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  Run(3);
  auto matches = coordinator_.ReportedMatches(qid);
  ASSERT_TRUE(matches.ok());
  // Node 0 is inside now; node 1 enters later (still a future match
  // within the horizon); node 2 never.
  EXPECT_EQ(matches->size(), 2u);
  EXPECT_TRUE(matches->count(0));
  EXPECT_TRUE(matches->count(1));
  // Messages: 3 requests broadcast + 2 replies.
  EXPECT_EQ(net_.stats().messages_sent, 5u);
}

TEST_F(DistributedQueryTest, ObjectQueryCollectPullsEverything) {
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(q, DistStrategy::kCollect,
                                               /*continuous=*/false, 256);
  Run(3);
  auto state = coordinator_.GetState(qid);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->replies, 3u);  // Every node ships its object.
  auto rel = coordinator_.EvaluateCollected(qid);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->rows.size(), 2u);
  // 3 requests + 3 replies.
  EXPECT_EQ(net_.stats().messages_sent, 6u);
}

TEST_F(DistributedQueryTest, BroadcastAndCollectAgree) {
  FtlQuery q = Parse(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 40 INSIDE(o, P)");
  uint64_t bq = coordinator_.IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, false, 256);
  uint64_t cq =
      coordinator_.IssueObjectQuery(q, DistStrategy::kCollect, false, 256);
  Run(3);
  auto matches = coordinator_.ReportedMatches(bq);
  ASSERT_TRUE(matches.ok());
  auto rel = coordinator_.EvaluateCollected(cq);
  ASSERT_TRUE(rel.ok());
  std::set<ObjectId> broadcast_ids, collect_ids;
  for (const auto& [id, when] : *matches) broadcast_ids.insert(id);
  for (const auto& [binding, when] : rel->rows) collect_ids.insert(binding[0]);
  EXPECT_EQ(broadcast_ids, collect_ids);
}

TEST_F(DistributedQueryTest, ContinuousBroadcastPushesOnlyOnChange) {
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  Run(3);
  uint64_t after_setup = net_.stats().messages_sent;

  // Motion changes on the far-away node that stays far away: it
  // re-evaluates locally but its (empty) answer is unchanged -> silence.
  nodes_[2]->UpdateMotion({5000, 5000}, {0.5, 0});
  Run(5);
  EXPECT_EQ(net_.stats().messages_sent, after_setup);

  // Node 2 now turns towards P: its answer changes -> one push.
  nodes_[2]->UpdateMotion({150, 50}, {-1, 0});
  Run(7);
  EXPECT_EQ(net_.stats().messages_sent, after_setup + 1);
  auto matches = coordinator_.ReportedMatches(qid);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->count(2));
}

TEST_F(DistributedQueryTest, RelationshipQueryEvaluatedCentrally) {
  // Nodes 0 and 1 converge; their distance drops below 40 eventually.
  FtlQuery q = Parse(
      "RETRIEVE o, n FROM CARS o, CARS n "
      "WHERE EVENTUALLY DIST(o, n) <= 40");
  uint64_t qid = coordinator_.IssueRelationshipQuery(q, 256);
  Run(3);
  auto rel = coordinator_.EvaluateCollected(qid);
  ASSERT_TRUE(rel.ok()) << rel.status();
  bool pair_01 = false;
  for (const auto& [binding, when] : rel->rows) {
    if ((binding[0] == 0 && binding[1] == 1) ||
        (binding[0] == 1 && binding[1] == 0)) {
      pair_01 = true;
    }
  }
  EXPECT_TRUE(pair_01);
}

TEST(AnswerTransmissionTest, ImmediateUnlimitedSendsOneBlock) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  NodeId server = net.AddNode(nullptr);
  AnswerClient client(&clock);
  NodeId client_node = net.AddNode(nullptr);
  client.Attach(&net, client_node);

  AnswerTransmitter tx(&net, &clock, server, client_node, 1,
                       {TransmissionMode::kImmediate, 0, 1});
  tx.SetAnswer({{{7}, Interval(5, 10)}, {{8}, Interval(3, 4)}});
  clock.Advance();
  net.DeliverDue();
  EXPECT_EQ(client.blocks_received(), 1u);
  EXPECT_EQ(client.buffered(), 2u);
  clock.AdvanceTo(6);
  net.DeliverDue();
  client.Compact();
  auto display = client.Display();
  ASSERT_EQ(display.size(), 1u);
  EXPECT_EQ(display[0], (std::vector<ObjectId>{7}));
}

TEST(AnswerTransmissionTest, MemoryLimitedBlocksRespectBudget) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  NodeId server = net.AddNode(nullptr);
  AnswerClient client(&clock);
  NodeId client_node = net.AddNode(nullptr);
  client.Attach(&net, client_node);

  AnswerTransmitter tx(&net, &clock, server, client_node, 1,
                       {TransmissionMode::kImmediate, 2, 0});
  tx.SetAnswer({{{1}, Interval(0, 2)},
                {{2}, Interval(1, 3)},
                {{3}, Interval(5, 6)},
                {{4}, Interval(7, 8)}});
  for (Tick t = 0; t <= 10; ++t) {
    clock.AdvanceTo(t);
    tx.Step();
    net.DeliverDue();
    client.Compact();
    EXPECT_LE(client.buffered(), 2u) << "t=" << t;
  }
  EXPECT_EQ(client.blocks_received(), 2u);
  EXPECT_EQ(tx.tuples_pending(), 0u);
}

TEST(AnswerTransmissionTest, DelayedSendsEachTupleAtItsBegin) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  NodeId server = net.AddNode(nullptr);
  AnswerClient client(&clock);
  NodeId client_node = net.AddNode(nullptr);
  client.Attach(&net, client_node);

  AnswerTransmitter tx(&net, &clock, server, client_node, 1,
                       {TransmissionMode::kDelayed, 0, 1});
  tx.SetAnswer({{{1}, Interval(3, 5)}, {{2}, Interval(8, 9)}});
  std::map<Tick, size_t> display_sizes;
  for (Tick t = 0; t <= 10; ++t) {
    clock.AdvanceTo(t);
    tx.Step();
    net.DeliverDue();
    client.Compact();
    display_sizes[t] = client.Display().size();
  }
  EXPECT_EQ(display_sizes[2], 0u);
  EXPECT_EQ(display_sizes[3], 1u);  // Arrived exactly at begin.
  EXPECT_EQ(display_sizes[5], 1u);
  EXPECT_EQ(display_sizes[6], 0u);
  EXPECT_EQ(display_sizes[8], 1u);
  EXPECT_EQ(display_sizes[10], 0u);
  EXPECT_EQ(client.peak_buffered(), 1u);  // Never more than one tuple held.
  EXPECT_EQ(net.stats().messages_sent, 2u);
}

}  // namespace
}  // namespace most
