#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/failpoint.h"
#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "distributed/network.h"
#include "distributed/reliable_channel.h"
#include "distributed/transmission.h"
#include "ftl/parser.h"
#include "obs/governor.h"

namespace most {
namespace {

ObjectState MakeState(ObjectId id, Point2 pos, Vec2 vel, Tick at = 0) {
  ObjectState s;
  s.id = id;
  s.at = at;
  s.position = pos;
  s.velocity = vel;
  return s;
}

TEST(SimNetworkTest, DeliversAfterLatency) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 2});
  std::vector<Tick> received;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode(
      [&](const Message& m) { received.push_back(clock.Now()); });
  net.Send(a, b, CancelQuery{1});
  net.DeliverDue();
  EXPECT_TRUE(received.empty());
  clock.Advance(1);
  net.DeliverDue();
  EXPECT_TRUE(received.empty());
  clock.Advance(1);
  net.DeliverDue();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 2);
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST(SimNetworkTest, StatsSnapshotIsRaceFree) {
  // A monitoring thread snapshots stats() while the simulation thread
  // drives traffic. Every field is its own atomic counter, so the reader
  // never tears a word (run under -DMOST_SANITIZE=thread to verify) and
  // counters are monotone.
  Clock clock;
  SimNetwork net(&clock, {.latency = 1, .loss_probability = 0.2});
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([](const Message&) {});
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last_sent = 0;
    while (!stop.load()) {
      SimNetwork::Stats s = net.stats();
      ASSERT_GE(s.messages_sent, last_sent) << "counter went backwards";
      last_sent = s.messages_sent;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    net.Send(a, b, CancelQuery{static_cast<uint64_t>(i)});
    clock.Advance(1);
    net.DeliverDue();
  }
  stop.store(true);
  reader.join();
  SimNetwork::Stats s = net.stats();
  EXPECT_EQ(s.messages_sent, 2000u);
  EXPECT_GT(s.dropped_loss, 0u);
}

TEST(SimNetworkTest, DisconnectionDropsMessages) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  int received = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message&) { ++received; });
  net.SetConnected(b, false);
  net.Send(a, b, CancelQuery{1});
  net.DeliverDue();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_disconnected, 1u);
  EXPECT_EQ(net.stats().dropped_loss, 0u);
  EXPECT_EQ(net.stats().dropped_total(), 1u);
  net.SetConnected(b, true);
  net.Send(a, b, CancelQuery{1});
  net.DeliverDue();
  EXPECT_EQ(received, 1);
}

TEST(SimNetworkTest, BroadcastReachesAllOthers) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  int received = 0;
  NodeId a = net.AddNode([&](const Message&) { ++received; });
  net.AddNode([&](const Message&) { ++received; });
  net.AddNode([&](const Message&) { ++received; });
  net.Broadcast(a, CancelQuery{1});
  net.DeliverDue();
  EXPECT_EQ(received, 2);  // Not delivered to the sender.
}

TEST(SimNetworkTest, LossyLinkDropsRoughlyTheConfiguredFraction) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0, .loss_probability = 0.3, .seed = 9});
  int received = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message&) { ++received; });
  for (int i = 0; i < 1000; ++i) {
    net.Send(a, b, CancelQuery{static_cast<uint64_t>(i)});
  }
  net.DeliverDue();
  EXPECT_EQ(net.stats().dropped_loss,
            1000u - static_cast<uint64_t>(received));
  EXPECT_EQ(net.stats().dropped_disconnected, 0u);
  // Within a loose band around 30%.
  EXPECT_GT(net.stats().dropped_loss, 200u);
  EXPECT_LT(net.stats().dropped_loss, 400u);
}

TEST(SimNetworkTest, DuplicationDeliversCopies) {
  Clock clock;
  SimNetwork net(&clock,
                 {.latency = 0, .duplicate_probability = 1.0, .seed = 5});
  int received = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message&) { ++received; });
  net.Send(a, b, CancelQuery{1});
  clock.Advance(10);  // Let the jittered duplicate come due as well.
  net.DeliverDue();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(net.stats().duplicated, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
}

TEST(SimNetworkTest, ReorderingDelaysMessages) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1,
                          .reorder_probability = 1.0,
                          .reorder_jitter = 5,
                          .seed = 5});
  std::vector<uint64_t> order;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message& m) {
    order.push_back(std::get<CancelQuery>(m.payload).qid);
  });
  for (uint64_t i = 0; i < 50; ++i) net.Send(a, b, CancelQuery{i});
  for (int t = 0; t < 10; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_EQ(order.size(), 50u);
  EXPECT_EQ(net.stats().reordered, 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "jitter never changed the arrival order";
}

TEST(SimNetworkTest, PartitionBlocksUntilHealed) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  int received = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message&) { ++received; });
  net.Partition("cut", {a}, {b});
  EXPECT_FALSE(net.Reachable(a, b));
  EXPECT_FALSE(net.Reachable(b, a));
  net.Send(a, b, CancelQuery{1});
  clock.Advance();
  net.DeliverDue();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_partition, 1u);
  net.Heal("cut");
  EXPECT_TRUE(net.Reachable(a, b));
  net.Send(a, b, CancelQuery{1});
  clock.Advance();
  net.DeliverDue();
  EXPECT_EQ(received, 1);
}

TEST(SimNetworkTest, PartitionCutsInFlightMessages) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 3});
  int received = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message&) { ++received; });
  net.Send(a, b, CancelQuery{1});  // In flight for 3 ticks.
  net.Partition("cut", {a}, {b});  // Cut appears while it is airborne.
  clock.Advance(3);
  net.DeliverDue();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped_partition, 1u);
}

TEST(SimNetworkTest, FailpointForcesDropsPerPayloadType) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  int cancels = 0, reports = 0;
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([&](const Message& m) {
    if (std::holds_alternative<CancelQuery>(m.payload)) ++cancels;
    if (std::holds_alternative<ObjectReport>(m.payload)) ++reports;
  });
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.Arm("dist/net/send/cancel_query", "error*2").ok());
  net.Send(a, b, CancelQuery{1});
  net.Send(a, b, CancelQuery{2});
  net.Send(a, b, CancelQuery{3});
  net.Send(a, b, ObjectReport{});  // Different payload type: unaffected.
  net.DeliverDue();
  EXPECT_EQ(cancels, 1);  // Budget *2 dropped the first two only.
  EXPECT_EQ(reports, 1);
  EXPECT_EQ(net.stats().dropped_injected, 2u);
  EXPECT_GE(reg.triggered("dist/net/send/cancel_query"), 2u);
  reg.DisarmAll();
}

TEST(SimNetworkTest, BytesAccounted) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  NodeId a = net.AddNode(nullptr);
  NodeId b = net.AddNode([](const Message&) {});
  ObjectState s = MakeState(1, {0, 0}, {1, 1});
  s.attrs["fuel"] = 10;
  net.Send(a, b, s);
  EXPECT_EQ(net.stats().bytes_sent, EstimateBytes(MessagePayload(s)));
  EXPECT_GT(net.stats().bytes_sent, 0u);
}

// ---- Reliable channel -----------------------------------------------------

TEST(ReliableChannelTest, ExactlyOnceInOrderUnderLossDupReorder) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1,
                          .loss_probability = 0.3,
                          .duplicate_probability = 0.2,
                          .reorder_probability = 0.3,
                          .reorder_jitter = 4,
                          .seed = 42});
  ReliableEndpoint sender(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  std::vector<uint64_t> got;
  receiver.SetHandler([&](const Message& m) {
    got.push_back(std::get<CancelQuery>(m.payload).qid);
  });
  for (uint64_t i = 0; i < 60; ++i) {
    sender.SendReliable(receiver.node_id(), CancelQuery{i});
  }
  for (int t = 0; t < 400 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(sender.unacked(), 0u);
  ASSERT_EQ(got.size(), 60u) << "exactly-once delivery violated";
  for (uint64_t i = 0; i < 60; ++i) EXPECT_EQ(got[i], i);
  // The run must actually have been faulty, and the channel must have
  // worked for it: retransmissions happened, duplicates were suppressed.
  EXPECT_GT(net.stats().dropped_loss + net.stats().duplicated +
                net.stats().reordered,
            0u);
  EXPECT_GT(sender.stats().retransmissions, 0u);
}

TEST(ReliableChannelTest, RetransmitsAcrossPartitionUntilHealed) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  ReliableEndpoint sender(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  int delivered = 0;
  receiver.SetHandler([&](const Message&) { ++delivered; });
  net.Partition("cut", {sender.node_id()}, {receiver.node_id()});
  sender.SendReliable(receiver.node_id(), CancelQuery{7});
  for (int t = 0; t < 100; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_GT(sender.stats().retransmissions, 0u);
  EXPECT_EQ(sender.unacked(), 1u);
  net.Heal("cut");
  for (int t = 0; t < 100 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sender.unacked(), 0u);
}

TEST(ReliableChannelTest, BoundedBufferThrottlesThenSheds) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  ReliableEndpoint::Options opts;
  opts.max_unacked_messages = 4;  // Throttle from 3 (0.75 * 4).
  ReliableEndpoint sender(&net, &clock, opts);
  ReliableEndpoint receiver(&net, &clock);
  // The receiver never acks, so the sender's buffer only grows.
  net.SetConnected(receiver.node_id(), false);
  NodeId to = receiver.node_id();
  EXPECT_EQ(sender.SendReliable(to, CancelQuery{0}), Backpressure::kOpen);
  EXPECT_EQ(sender.SendReliable(to, CancelQuery{1}), Backpressure::kOpen);
  EXPECT_EQ(sender.SendReliable(to, CancelQuery{2}), Backpressure::kThrottle);
  // Fourth send fills the buffer: still sent (kShed is reserved for
  // dropped frames), but the peer now grades kShed for the next one.
  EXPECT_EQ(sender.SendReliable(to, CancelQuery{3}), Backpressure::kThrottle);
  EXPECT_EQ(sender.PeerBackpressure(to), Backpressure::kShed);
  EXPECT_EQ(sender.SendReliable(to, CancelQuery{4}), Backpressure::kShed);
  EXPECT_EQ(sender.unacked(), 4u);
  EXPECT_EQ(sender.stats().frames_shed, 1u);
  EXPECT_GT(sender.unacked_bytes(), 0u);

  // Draining the buffer reopens the peer: reconnect and let acks flow.
  net.SetConnected(receiver.node_id(), true);
  for (int t = 0; t < 100 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(sender.unacked_bytes(), 0u);
  EXPECT_EQ(sender.PeerBackpressure(to), Backpressure::kOpen);
}

TEST(ReliableChannelTest, DeadPeerEvictionRestartsStreamUnderNewEpoch) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  ReliableEndpoint::Options opts;
  opts.peer_dead_horizon = 20;
  ReliableEndpoint sender(&net, &clock, opts);
  ReliableEndpoint receiver(&net, &clock);
  std::vector<uint64_t> got;
  receiver.SetHandler([&](const Message& m) {
    got.push_back(std::get<CancelQuery>(m.payload).qid);
  });

  // Deliver one frame normally so the receiver has sequence state.
  sender.SendReliable(receiver.node_id(), CancelQuery{1});
  for (int t = 0; t < 10; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_EQ(got, (std::vector<uint64_t>{1}));

  // Cut the peer off and queue frames it will never ack. Past the
  // horizon the buffer is evicted instead of retransmitting forever.
  net.Partition("cut", {sender.node_id()}, {receiver.node_id()});
  sender.SendReliable(receiver.node_id(), CancelQuery{2});
  sender.SendReliable(receiver.node_id(), CancelQuery{3});
  for (int t = 0; t < 40; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(sender.unacked(), 0u) << "evicted buffer must be empty";
  EXPECT_EQ(sender.stats().peers_evicted, 1u);
  EXPECT_EQ(sender.stats().frames_shed, 2u);

  // Heal and send again: the new frame carries a higher epoch, so the
  // receiver resynchronizes from sequence zero instead of waiting for
  // the evicted frames — no deadlock, and no replay of old payloads.
  net.Heal("cut");
  sender.SendReliable(receiver.node_id(), CancelQuery{4});
  for (int t = 0; t < 100 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 4}))
      << "post-eviction stream must deliver exactly the new frame";
}

TEST(ReliableChannelTest, GovernorLimitsApplyWhenOptionsUnset) {
  // Channel caps left at 0 fall back to the global governor's limits —
  // the knob `most_shell health` surfaces. Restore 0 afterwards so other
  // tests keep the unbounded default.
  ResourceGovernor& gov = ResourceGovernor::Global();
  ResourceGovernor::Limits limits = gov.limits();
  limits.channel_max_unacked_messages = 2;
  gov.set_limits(limits);
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  ReliableEndpoint sender(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  net.SetConnected(receiver.node_id(), false);
  sender.SendReliable(receiver.node_id(), CancelQuery{0});
  sender.SendReliable(receiver.node_id(), CancelQuery{1});
  EXPECT_EQ(sender.SendReliable(receiver.node_id(), CancelQuery{2}),
            Backpressure::kShed);
  EXPECT_EQ(sender.unacked(), 2u);
  limits.channel_max_unacked_messages = 0;
  gov.set_limits(limits);
}

TEST(ReliableChannelTest, BestEffortBypassesSequencing) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  ReliableEndpoint sender(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  int beacons = 0;
  receiver.SetHandler([&](const Message& m) {
    if (std::holds_alternative<ObjectState>(m.payload)) ++beacons;
  });
  sender.SendBestEffort(receiver.node_id(), MakeState(1, {0, 0}, {1, 0}));
  clock.Advance();
  net.DeliverDue();
  EXPECT_EQ(beacons, 1);
  EXPECT_EQ(sender.unacked(), 0u);        // Nothing to retransmit.
  EXPECT_EQ(receiver.stats().acks_sent, 0u);  // Nothing to acknowledge.
}

// ---- Distributed queries --------------------------------------------------

class DistributedQueryTest : public ::testing::Test {
 protected:
  DistributedQueryTest()
      : net_(&clock_, {.latency = 1}),
        regions_({{"P", Polygon::Rectangle({0, 0}, {100, 100})}}),
        coordinator_(&net_, &clock_, regions_) {
    // Three vehicles: one inside P, one heading into P, one far away.
    // Beacons are disabled so the protocol tests see query traffic only.
    MobileNode::Options opts;
    opts.beacon_interval = 0;
    nodes_.push_back(std::make_unique<MobileNode>(
        &net_, &clock_, MakeState(0, {50, 50}, {0, 0}), regions_, opts));
    nodes_.push_back(std::make_unique<MobileNode>(
        &net_, &clock_, MakeState(1, {-20, 50}, {1, 0}), regions_, opts));
    nodes_.push_back(std::make_unique<MobileNode>(
        &net_, &clock_, MakeState(2, {5000, 5000}, {0, 0}), regions_, opts));
  }

  void Run(Tick until) {
    while (clock_.Now() < until) {
      clock_.Advance();
      net_.DeliverDue();
    }
  }

  FtlQuery Parse(const std::string& s) {
    auto q = ParseQuery(s);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  Clock clock_;
  SimNetwork net_;
  std::map<std::string, Polygon> regions_;
  Coordinator coordinator_;
  std::vector<std::unique_ptr<MobileNode>> nodes_;
};

TEST_F(DistributedQueryTest, Classification) {
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM SELF o WHERE EVENTUALLY WITHIN 3 "
                      "INSIDE(o, P)")),
            DistQueryClass::kSelfReferencing);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)")),
            DistQueryClass::kObject);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o, n FROM CARS o, CARS n "
                      "WHERE DIST(o, n) <= 2")),
            DistQueryClass::kRelationship);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o, n FROM CARS o, CARS n "
                      "WHERE INSIDE(o, P) AND INSIDE(n, P)")),
            DistQueryClass::kRelationship);
}

TEST_F(DistributedQueryTest, ClassificationEdgeCases) {
  // A quantifier-bound *value* variable is not an object variable: the
  // comparison m <= 10 mentions no second object.
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM CARS o "
                      "WHERE [m := o.fuel] m <= 10")),
            DistQueryClass::kObject);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM SELF o "
                      "WHERE [m := o.fuel] EVENTUALLY m <= 10")),
            DistQueryClass::kSelfReferencing);
  // A quantifier whose bound term itself spans two objects is a
  // relationship query even if the body compares only value variables.
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o, n FROM CARS o, CARS n "
                      "WHERE [m := DIST(o, n)] m <= 5")),
            DistQueryClass::kRelationship);
  // DIST of a variable with itself stays single-object.
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM CARS o "
                      "WHERE [m := DIST(o, o)] m <= 5")),
            DistQueryClass::kObject);
  // SELF-only bindings with a genuine two-object atom: relationship, not
  // self-referencing — the atom needs both objects at once.
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE a, b FROM SELF a, SELF b "
                      "WHERE DIST(a, b) <= 2")),
            DistQueryClass::kRelationship);
  // Two SELF variables never sharing an atom: still a relationship query
  // (two distinct FROM variables).
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE a, b FROM SELF a, SELF b "
                      "WHERE INSIDE(a, P) AND INSIDE(b, P)")),
            DistQueryClass::kRelationship);
  // Mixed-class conjunction over a single variable stays an object query;
  // over two variables of different classes it is a relationship query.
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM CARS o "
                      "WHERE INSIDE(o, P) AND o.fuel <= 10")),
            DistQueryClass::kObject);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o, n FROM SELF o, CARS n "
                      "WHERE INSIDE(o, P) AND INSIDE(n, P)")),
            DistQueryClass::kRelationship);
  // WITHIN_SPHERE with a repeated variable is single-object; with two
  // distinct variables it is a relationship atom.
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE o FROM CARS o "
                      "WHERE WITHIN_SPHERE(5, o, o)")),
            DistQueryClass::kObject);
  EXPECT_EQ(Coordinator::Classify(
                Parse("RETRIEVE a, b FROM CARS a, CARS b "
                      "WHERE WITHIN_SPHERE(5, a, b)")),
            DistQueryClass::kRelationship);
}

TEST_F(DistributedQueryTest, SelfReferencingNeedsNoCommunication) {
  FtlQuery q = Parse(
      "RETRIEVE o FROM SELF o WHERE EVENTUALLY WITHIN 30 INSIDE(o, P)");
  // Node 1 reaches P (x >= 0) at t=20 < 30.
  auto when = nodes_[1]->EvaluateSelf(q, 256);
  ASSERT_TRUE(when.ok()) << when.status();
  EXPECT_FALSE(when->empty());
  // Node 2 never reaches P.
  auto never = nodes_[2]->EvaluateSelf(q, 256);
  ASSERT_TRUE(never.ok());
  EXPECT_TRUE(never->empty());
  EXPECT_EQ(net_.stats().messages_sent, 0u);
}

TEST_F(DistributedQueryTest, ObjectQueryBroadcastOnlyMatchesReply) {
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  Run(4);
  auto matches = coordinator_.ReportedMatches(qid);
  ASSERT_TRUE(matches.ok());
  // Node 0 is inside now; node 1 enters later (still a future match
  // within the horizon); node 2 never.
  EXPECT_EQ(matches->matches.size(), 2u);
  EXPECT_TRUE(matches->matches.count(0));
  EXPECT_TRUE(matches->matches.count(1));
  // Every node completed, so the answer is certain.
  EXPECT_EQ(matches->confidence, Confidence::kCertain);
  EXPECT_TRUE(matches->missing.empty());
  // The economy of strategy 2: non-matching node 2 shipped no report —
  // only its completion marker; matching nodes shipped report + marker.
  EXPECT_EQ(nodes_[0]->channel().stats().frames_sent, 2u);
  EXPECT_EQ(nodes_[1]->channel().stats().frames_sent, 2u);
  EXPECT_EQ(nodes_[2]->channel().stats().frames_sent, 1u);
}

TEST_F(DistributedQueryTest, ObjectQueryCollectPullsEverything) {
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(q, DistStrategy::kCollect,
                                               /*continuous=*/false, 256);
  Run(4);
  auto state = coordinator_.GetState(qid);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ((*state)->replies, 3u);  // Every node ships its object.
  EXPECT_EQ((*state)->responded.size(), 3u);
  auto rel = coordinator_.EvaluateCollected(qid);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->relation.rows.size(), 2u);
  EXPECT_EQ(rel->confidence, Confidence::kCertain);
  // Collect ships a report from every node regardless of the predicate.
  for (const auto& node : nodes_) {
    EXPECT_EQ(node->channel().stats().frames_sent, 2u);  // report + done
  }
}

TEST_F(DistributedQueryTest, BroadcastAndCollectAgree) {
  FtlQuery q = Parse(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 40 INSIDE(o, P)");
  uint64_t bq = coordinator_.IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, false, 256);
  uint64_t cq =
      coordinator_.IssueObjectQuery(q, DistStrategy::kCollect, false, 256);
  Run(4);
  auto matches = coordinator_.ReportedMatches(bq);
  ASSERT_TRUE(matches.ok());
  auto rel = coordinator_.EvaluateCollected(cq);
  ASSERT_TRUE(rel.ok());
  std::set<ObjectId> broadcast_ids, collect_ids;
  for (const auto& [id, when] : matches->matches) broadcast_ids.insert(id);
  for (const auto& [binding, when] : rel->relation.rows) {
    collect_ids.insert(binding[0]);
  }
  EXPECT_EQ(broadcast_ids, collect_ids);
  EXPECT_EQ(matches->confidence, Confidence::kCertain);
  EXPECT_EQ(rel->confidence, Confidence::kCertain);
}

TEST_F(DistributedQueryTest, ContinuousBroadcastPushesOnlyOnChange) {
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  Run(4);
  // Setup: every node answered the subscription (initial report + done).
  uint64_t after_setup = nodes_[2]->channel().stats().frames_sent;
  EXPECT_EQ(after_setup, 2u);

  // Motion changes on the far-away node that stays far away: it
  // re-evaluates locally but its (empty) answer is unchanged -> silence.
  nodes_[2]->UpdateMotion({5000, 5000}, {0.5, 0});
  Run(8);
  EXPECT_EQ(nodes_[2]->channel().stats().frames_sent, after_setup);

  // Node 2 now turns towards P: its answer changes -> one push.
  nodes_[2]->UpdateMotion({150, 50}, {-1, 0});
  Run(12);
  EXPECT_EQ(nodes_[2]->channel().stats().frames_sent, after_setup + 1);
  auto matches = coordinator_.ReportedMatches(qid);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->matches.count(2));
}

TEST_F(DistributedQueryTest, RelationshipQueryEvaluatedCentrally) {
  // Nodes 0 and 1 converge; their distance drops below 40 eventually.
  FtlQuery q = Parse(
      "RETRIEVE o, n FROM CARS o, CARS n "
      "WHERE EVENTUALLY DIST(o, n) <= 40");
  uint64_t qid = coordinator_.IssueRelationshipQuery(q, 256);
  Run(4);
  auto rel = coordinator_.EvaluateCollected(qid);
  ASSERT_TRUE(rel.ok()) << rel.status();
  bool pair_01 = false;
  for (const auto& [binding, when] : rel->relation.rows) {
    if ((binding[0] == 0 && binding[1] == 1) ||
        (binding[0] == 1 && binding[1] == 0)) {
      pair_01 = true;
    }
  }
  EXPECT_TRUE(pair_01);
}

// ---- Completeness and liveness --------------------------------------------

TEST_F(DistributedQueryTest, PartialAnswerCarriesMissingSetUntilHeal) {
  // Cut node 2 off before issuing.
  net_.Partition("cut", {coordinator_.node_id()}, {nodes_[2]->node_id()});
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(
      q, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  Run(6);
  auto partial = coordinator_.ReportedMatches(qid);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->confidence, Confidence::kStale)
      << "a partial answer must never claim certainty";
  EXPECT_EQ(partial->missing,
            (std::set<NodeId>{nodes_[2]->node_id()}));
  EXPECT_EQ(partial->matches.size(), 2u);  // Reachable matches are in.

  // Heal: the channel's retransmissions push the request through; once
  // node 2's QueryDone arrives the same answer turns certain.
  net_.Heal("cut");
  Run(60);
  auto full = coordinator_.ReportedMatches(qid);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->confidence, Confidence::kCertain);
  EXPECT_TRUE(full->missing.empty());
  EXPECT_EQ(full->matches.size(), 2u);  // Node 2 still does not match.
}

TEST_F(DistributedQueryTest, CollectAnswerStaysStaleWhileNodeMissing) {
  net_.Partition("cut", {coordinator_.node_id()}, {nodes_[0]->node_id()});
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  uint64_t qid = coordinator_.IssueObjectQuery(q, DistStrategy::kCollect,
                                               /*continuous=*/false, 256);
  Run(6);
  auto partial = coordinator_.EvaluateCollected(qid);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->confidence, Confidence::kStale);
  EXPECT_EQ(partial->missing, (std::set<NodeId>{nodes_[0]->node_id()}));
  // Node 0 (inside P) is missing, so its row is absent from the partial
  // central evaluation — the caller can see that from the missing set.
  EXPECT_EQ(partial->relation.rows.count({0}), 0u);
  net_.Heal("cut");
  Run(60);
  auto full = coordinator_.EvaluateCollected(qid);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->confidence, Confidence::kCertain);
  EXPECT_EQ(full->relation.rows.count({0}), 1u);
}

TEST(CoordinatorDeadlineTest, ExpiryYieldsStalePartialAnswerAndMetric) {
  // A query whose deadline passes with one node permanently silent: the
  // caller polls DeadlinePassed(), accepts the kStale partial answer with
  // the silent node in the missing set, and the first expired poll is
  // counted into most_coord_deadline_expired_total exactly once.
  auto deadline_expired_total = []() -> double {
    for (const obs::FamilySnapshot& fam :
         obs::MetricsRegistry::Global().Collect()) {
      if (fam.name != "most_coord_deadline_expired_total") continue;
      double total = 0;
      for (const obs::SeriesSnapshot& s : fam.series) total += s.value;
      return total;
    }
    return 0;
  };
  const double expired_before = deadline_expired_total();

  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator::Options copts;
  copts.query_deadline = 8;
  Coordinator coordinator(&net, &clock, regions, copts);
  MobileNode::Options nopts;
  nopts.beacon_interval = 0;
  MobileNode inside(&net, &clock, MakeState(0, {50, 50}, {0, 0}), regions,
                    nopts);
  MobileNode silent(&net, &clock, MakeState(1, {60, 60}, {0, 0}), regions,
                    nopts);
  net.SetConnected(silent.node_id(), false);  // Permanently dark.

  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  ASSERT_TRUE(q.ok());
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  auto run_to = [&](Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };
  run_to(6);
  EXPECT_FALSE(coordinator.DeadlinePassed(qid));
  EXPECT_DOUBLE_EQ(deadline_expired_total(), expired_before);

  run_to(12);
  EXPECT_TRUE(coordinator.DeadlinePassed(qid));
  auto answer = coordinator.ReportedMatches(qid);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->confidence, Confidence::kStale)
      << "an expired query with a silent node must not claim certainty";
  EXPECT_EQ(answer->missing, (std::set<NodeId>{silent.node_id()}));
  EXPECT_EQ(answer->matches.count(0), 1u)
      << "the reachable node's match is served despite the expiry";
  EXPECT_DOUBLE_EQ(deadline_expired_total(), expired_before + 1);

  // Polling again does not re-count the same expiry.
  EXPECT_TRUE(coordinator.DeadlinePassed(qid));
  EXPECT_DOUBLE_EQ(deadline_expired_total(), expired_before + 1);
}

TEST(CoordinatorLivenessTest, HeartbeatsTrackReachabilityAndResync) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator::Options copts;
  copts.liveness_timeout = 12;
  Coordinator coordinator(&net, &clock, regions, copts);
  MobileNode::Options nopts;
  nopts.beacon_interval = 4;
  nopts.home = coordinator.node_id();
  MobileNode inside(&net, &clock, MakeState(0, {50, 50}, {0, 0}), regions,
                    nopts);
  MobileNode outside(&net, &clock, MakeState(1, {5000, 50}, {0, 0}), regions,
                     nopts);

  auto run_to = [&](Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };
  run_to(10);
  EXPECT_TRUE(coordinator.IsLive(inside.node_id()));
  EXPECT_TRUE(coordinator.IsLive(outside.node_id()));

  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  ASSERT_TRUE(q.ok());
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  run_to(14);
  ASSERT_TRUE(coordinator.ReportedMatches(qid)->matches.count(0));

  // Partition the inside node away long enough to be declared dead.
  net.Partition("cut", {coordinator.node_id()}, {inside.node_id()});
  run_to(40);
  EXPECT_FALSE(coordinator.IsLive(inside.node_id()));
  EXPECT_TRUE(coordinator.IsLive(outside.node_id()));

  // While cut off, the node's answer changes: it drives out of P.
  inside.UpdateMotion({5000, 5000}, {0, 0});

  // Heal: beacons flow again, the coordinator re-syncs the subscription,
  // and the node's fresh (now empty) answer replaces the stale match.
  net.Heal("cut");
  run_to(100);
  EXPECT_TRUE(coordinator.IsLive(inside.node_id()));
  auto matches = coordinator.ReportedMatches(qid);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->matches.count(0), 0u)
      << "stale pre-partition match survived the re-sync";
  EXPECT_EQ(matches->confidence, Confidence::kCertain);
}

TEST(CancelUnderLossTest, CancelledContinuousQueryGoesQuietOnEveryNode) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1, .loss_probability = 0.4, .seed = 11});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator coordinator(&net, &clock, regions);
  MobileNode::Options nopts;
  nopts.beacon_interval = 0;
  std::vector<std::unique_ptr<MobileNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<MobileNode>(
        &net, &clock,
        MakeState(static_cast<ObjectId>(i),
                  {50.0 + 10 * i, 50.0}, {0, 0}),
        regions, nopts));
  }
  auto run = [&](Tick ticks) {
    Tick until = clock.Now() + ticks;
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };

  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  ASSERT_TRUE(q.ok());
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  run(120);  // Loss notwithstanding, every subscription must install.
  for (const auto& node : nodes) {
    EXPECT_EQ(node->active_subscriptions(), 1u);
  }

  // Cancel rides the reliable channel: a lost CancelQuery is
  // retransmitted until every node confirms it.
  ASSERT_TRUE(coordinator.CancelQuerySubscription(qid).ok());
  run(200);
  for (const auto& node : nodes) {
    EXPECT_EQ(node->active_subscriptions(), 0u)
        << "node kept a cancelled subscription";
  }

  // Quiescence: motion changes no longer generate any traffic.
  std::vector<uint64_t> frames_before;
  for (const auto& node : nodes) {
    frames_before.push_back(node->channel().stats().frames_sent);
  }
  for (auto& node : nodes) {
    node->UpdateMotion({5000, 5000}, {1, 1});
  }
  run(40);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i]->channel().stats().frames_sent, frames_before[i])
        << "cancelled node " << i << " still transmitting";
  }
}

// ---- Answer transmission --------------------------------------------------

TEST(AnswerTransmissionTest, ImmediateUnlimitedSendsOneBlock) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  NodeId server = net.AddNode(nullptr);
  AnswerClient client(&clock);
  NodeId client_node = net.AddNode(nullptr);
  client.Attach(&net, client_node);

  AnswerTransmitter tx(&net, &clock, server, client_node, 1,
                       {TransmissionMode::kImmediate, 0, 1});
  tx.SetAnswer({{{7}, Interval(5, 10)}, {{8}, Interval(3, 4)}});
  clock.Advance();
  net.DeliverDue();
  EXPECT_EQ(client.blocks_received(), 1u);
  EXPECT_EQ(client.buffered(), 2u);
  clock.AdvanceTo(6);
  net.DeliverDue();
  client.Compact();
  auto display = client.Display();
  ASSERT_EQ(display.size(), 1u);
  EXPECT_EQ(display[0], (std::vector<ObjectId>{7}));
}

TEST(AnswerTransmissionTest, MemoryLimitedBlocksRespectBudget) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 0});
  NodeId server = net.AddNode(nullptr);
  AnswerClient client(&clock);
  NodeId client_node = net.AddNode(nullptr);
  client.Attach(&net, client_node);

  AnswerTransmitter tx(&net, &clock, server, client_node, 1,
                       {TransmissionMode::kImmediate, 2, 0});
  tx.SetAnswer({{{1}, Interval(0, 2)},
                {{2}, Interval(1, 3)},
                {{3}, Interval(5, 6)},
                {{4}, Interval(7, 8)}});
  for (Tick t = 0; t <= 10; ++t) {
    clock.AdvanceTo(t);
    tx.Step();
    net.DeliverDue();
    client.Compact();
    EXPECT_LE(client.buffered(), 2u) << "t=" << t;
  }
  EXPECT_EQ(client.blocks_received(), 2u);
  EXPECT_EQ(tx.tuples_pending(), 0u);
}

TEST(AnswerTransmissionTest, DelayedSendsEachTupleAtItsBegin) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  NodeId server = net.AddNode(nullptr);
  AnswerClient client(&clock);
  NodeId client_node = net.AddNode(nullptr);
  client.Attach(&net, client_node);

  AnswerTransmitter tx(&net, &clock, server, client_node, 1,
                       {TransmissionMode::kDelayed, 0, 1});
  tx.SetAnswer({{{1}, Interval(3, 5)}, {{2}, Interval(8, 9)}});
  std::map<Tick, size_t> display_sizes;
  for (Tick t = 0; t <= 10; ++t) {
    clock.AdvanceTo(t);
    tx.Step();
    net.DeliverDue();
    client.Compact();
    display_sizes[t] = client.Display().size();
  }
  EXPECT_EQ(display_sizes[2], 0u);
  EXPECT_EQ(display_sizes[3], 1u);  // Arrived exactly at begin.
  EXPECT_EQ(display_sizes[5], 1u);
  EXPECT_EQ(display_sizes[6], 0u);
  EXPECT_EQ(display_sizes[8], 1u);
  EXPECT_EQ(display_sizes[10], 0u);
  EXPECT_EQ(client.peak_buffered(), 1u);  // Never more than one tuple held.
  EXPECT_EQ(net.stats().messages_sent, 2u);
}

TEST(AnswerTransmissionTest, ReliablePushSurvivesLoss) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1, .loss_probability = 0.4, .seed = 3});
  ReliableEndpoint server(&net, &clock);
  ReliableEndpoint client_ep(&net, &clock);
  AnswerClient client(&clock);
  client.Attach(&client_ep);

  AnswerTransmitter tx(&server, &clock, client_ep.node_id(), 1,
                       {TransmissionMode::kImmediate, 0, 1});
  tx.SetAnswer({{{7}, Interval(100, 200)}, {{8}, Interval(150, 300)}});
  // Background traffic on the same stream so the 40% loss rate is
  // statistically guaranteed to bite *something* (the client ignores
  // non-AnswerBlock payloads).
  for (uint64_t i = 0; i < 30; ++i) {
    server.SendReliable(client_ep.node_id(), CancelQuery{i});
  }
  for (int t = 0; t < 400 && server.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(server.unacked(), 0u);
  EXPECT_EQ(client.blocks_received(), 1u);  // Exactly once despite loss.
  EXPECT_EQ(client.buffered(), 2u);
  EXPECT_GT(net.stats().dropped_loss, 0u) << "the link was never lossy";
}

// ---- Crash/restart: epochs, durable recovery, catch-up --------------------

// A frame from a node's pre-crash incarnation that is still rattling
// around the network must be rejected once the receiver has adopted the
// reborn node's higher epoch — the fence that keeps a restarted node's
// stream from being corrupted by its own ghost.
TEST(ReliableChannelTest, StaleEpochStragglerRejectedAfterRejoin) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  auto sender = std::make_unique<ReliableEndpoint>(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  std::vector<uint64_t> got;
  receiver.SetHandler([&](const Message& m) {
    got.push_back(std::get<CancelQuery>(m.payload).qid);
  });
  NodeId reborn_id = sender->node_id();
  sender->SendReliable(receiver.node_id(), CancelQuery{1});
  for (int t = 0; t < 10; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_EQ(got, (std::vector<uint64_t>{1}));

  // Crash the sender and reincarnate it on the same network id under a
  // bumped epoch — exactly what a WAL-recovered MobileNode does.
  sender.reset();
  ReliableEndpoint::Options opts;
  opts.reclaim_node_id = reborn_id;
  opts.initial_epoch = 1;
  ReliableEndpoint reborn(&net, &clock, opts);
  ASSERT_EQ(reborn.node_id(), reborn_id) << "network id not reclaimed";
  EXPECT_EQ(reborn.SendEpoch(receiver.node_id()), 1u);
  reborn.SendReliable(receiver.node_id(), CancelQuery{2});
  for (int t = 0; t < 10; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_EQ(got, (std::vector<uint64_t>{1, 2}));

  // A straggler from the dead epoch-0 stream arrives late (forged
  // directly onto the wire; a delayed retransmission in real life).
  uint64_t suppressed_before = receiver.stats().duplicates_suppressed;
  net.Send(reborn_id, receiver.node_id(),
           ReliableFrame{/*seq=*/5, /*epoch=*/0, CancelQuery{99}});
  for (int t = 0; t < 5; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2}))
      << "a pre-crash straggler reached the application";
  EXPECT_EQ(receiver.stats().duplicates_suppressed, suppressed_before + 1);
}

// RestartPeerStream while retransmissions are in flight: the pending
// frames must come back under the new epoch, in order, exactly once —
// the bump must not race the old-epoch retries into duplicate delivery.
TEST(ReliableChannelTest, EpochBumpRacingInFlightRetransmission) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  ReliableEndpoint sender(&net, &clock);
  ReliableEndpoint receiver(&net, &clock);
  std::vector<uint64_t> got;
  receiver.SetHandler([&](const Message& m) {
    got.push_back(std::get<CancelQuery>(m.payload).qid);
  });
  NodeId to = receiver.node_id();
  sender.SendReliable(to, CancelQuery{1});
  for (int t = 0; t < 10; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_EQ(got, (std::vector<uint64_t>{1}));

  // Cut the peer off with two frames pending; let retransmissions fire.
  net.Partition("cut", {sender.node_id()}, {to});
  sender.SendReliable(to, CancelQuery{2});
  sender.SendReliable(to, CancelQuery{3});
  for (int t = 0; t < 30; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_GT(sender.stats().retransmissions, 0u);
  ASSERT_EQ(sender.unacked(), 2u);
  ASSERT_EQ(sender.SendEpoch(to), 0u);

  // Restart the stream mid-retry — the rejoin path the coordinator takes
  // when a dead node announces a bumped incarnation.
  sender.RestartPeerStream(to);
  EXPECT_EQ(sender.SendEpoch(to), 1u);
  EXPECT_EQ(sender.stats().streams_restarted, 1u);
  EXPECT_EQ(sender.unacked(), 2u) << "pending frames dropped, not carried";

  net.Heal("cut");
  for (int t = 0; t < 200 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2, 3}))
      << "carried frames must arrive exactly once, in order";
}

// Dead-peer eviction immediately followed by the peer coming back: the
// very next frame re-synchronizes the receiver under the bumped epoch
// with no dead time and no replay of the evicted frames.
TEST(ReliableChannelTest, EvictionThenImmediateReconnectResynchronizes) {
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  ReliableEndpoint::Options opts;
  opts.peer_dead_horizon = 15;
  ReliableEndpoint sender(&net, &clock, opts);
  ReliableEndpoint receiver(&net, &clock);
  std::vector<uint64_t> got;
  receiver.SetHandler([&](const Message& m) {
    got.push_back(std::get<CancelQuery>(m.payload).qid);
  });
  NodeId to = receiver.node_id();
  sender.SendReliable(to, CancelQuery{1});
  for (int t = 0; t < 10; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_EQ(got, (std::vector<uint64_t>{1}));

  net.Partition("cut", {sender.node_id()}, {to});
  sender.SendReliable(to, CancelQuery{2});
  for (int t = 0; sender.stats().peers_evicted == 0 && t < 60; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  ASSERT_EQ(sender.stats().peers_evicted, 1u);
  ASSERT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(sender.SendEpoch(to), 1u) << "eviction must bump the epoch";

  // Reconnect on the very next tick and send immediately.
  net.Heal("cut");
  sender.SendReliable(to, CancelQuery{3});
  for (int t = 0; t < 50 && sender.unacked() > 0; ++t) {
    clock.Advance();
    net.DeliverDue();
  }
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 3}))
      << "evicted frame replayed or new frame lost after reconnect";
}

// A killed durable node restarts from its own WAL: same network id, the
// pre-crash motion state (not the boot-time state it was constructed
// with), its continuous subscriptions, and a bumped incarnation.
TEST(DurableNodeTest, RestartRecoversStateAndSubscriptionsFromWal) {
  std::string wal = ::testing::TempDir() + "/durable_node_restart.wal";
  std::remove(wal.c_str());
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator coordinator(&net, &clock, regions);
  MobileNode::Options nopts;
  nopts.beacon_interval = 4;
  nopts.home = coordinator.node_id();
  nopts.wal_path = wal;
  auto node = std::make_unique<MobileNode>(
      &net, &clock, MakeState(0, {-20, 50}, {0, 0}), regions, nopts);
  ASSERT_FALSE(node->recovered_from_wal());
  ASSERT_EQ(node->incarnation(), 0u);
  NodeId id = node->node_id();

  auto run_to = [&](Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };
  run_to(8);
  auto q = ParseQuery(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 50 INSIDE(o, P)");
  ASSERT_TRUE(q.ok());
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  run_to(16);
  // Drive into P and persist that as the last pre-crash state.
  node->UpdateMotion({50, 50}, {1, 0});
  node->UpdateAttr("fuel", 42.0);
  run_to(24);
  ASSERT_TRUE(coordinator.ReportedMatches(qid)->matches.count(0));

  node.reset();  // Kill -9.
  node = std::make_unique<MobileNode>(
      &net, &clock, MakeState(0, {-20, 50}, {0, 0}), regions, nopts);
  EXPECT_TRUE(node->recovered_from_wal());
  EXPECT_EQ(node->incarnation(), 1u);
  EXPECT_EQ(node->node_id(), id) << "network identity not reclaimed";
  EXPECT_EQ(node->state().position.x, 50.0)
      << "boot-time state won over the WAL";
  EXPECT_EQ(node->state().position.y, 50.0);

  // The recovered subscription answers again without the coordinator
  // re-sending the query.
  run_to(60);
  auto matches = coordinator.ReportedMatches(qid);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->matches.count(0));
  EXPECT_EQ(matches->confidence, Confidence::kCertain);
  EXPECT_GE(coordinator.recovery_stats().rejoins, 1u);
  std::remove(wal.c_str());
}

// ENOSPC on a WAL append must not poison recovery: the failed update is
// lost (it never became durable), but the previous durable state is
// intact and the node restarts from it.
TEST(DurableNodeTest, EnospcDuringAppendPreservesPriorDurableState) {
  std::string wal = ::testing::TempDir() + "/durable_node_enospc.wal";
  std::remove(wal.c_str());
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  MobileNode::Options nopts;
  nopts.beacon_interval = 0;  // No background appends.
  nopts.wal_path = wal;
  auto node = std::make_unique<MobileNode>(
      &net, &clock, MakeState(0, {10, 10}, {0, 0}), regions, nopts);
  node->UpdateMotion({30, 30}, {0, 0});  // Durable.

  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.Arm("wal/append/enospc", "error*1").ok());
  node->UpdateMotion({90, 90}, {0, 0});  // Append fails: device full.
  EXPECT_GE(reg.triggered("wal/append/enospc"), 1u);
  reg.Disarm("wal/append/enospc");

  node.reset();
  node = std::make_unique<MobileNode>(
      &net, &clock, MakeState(0, {10, 10}, {0, 0}), regions, nopts);
  EXPECT_TRUE(node->recovered_from_wal());
  EXPECT_EQ(node->state().position.x, 30.0)
      << "recovered neither the last durable state nor survived the "
         "injected device-full append";
  EXPECT_EQ(node->state().position.y, 30.0);
  std::remove(wal.c_str());
}

// Answer(CQ) mirror catch-up after a subscriber crash: the coordinator
// keeps flushing deltas to live subscribers only, and a restarted
// subscriber splices the missed changes from a catch-up delta instead of
// a full re-send.
TEST(DurableNodeTest, MirrorSubscriberCatchesUpWithDeltasAfterRestart) {
  std::string wal = ::testing::TempDir() + "/durable_node_mirror.wal";
  std::remove(wal.c_str());
  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator coordinator(&net, &clock, regions);
  MobileNode::Options nopts;
  nopts.beacon_interval = 4;
  nopts.home = coordinator.node_id();
  MobileNode::Options durable_opts = nopts;
  durable_opts.wal_path = wal;
  auto subscriber = std::make_unique<MobileNode>(
      &net, &clock, MakeState(0, {50, 50}, {0, 0}), regions, durable_opts);
  MobileNode mover(&net, &clock, MakeState(1, {-30, 50}, {1, 0}), regions,
                   nopts);

  auto run_to = [&](Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  };
  run_to(8);
  auto q = ParseQuery(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 80 INSIDE(o, P)");
  ASSERT_TRUE(q.ok());
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  run_to(12);
  ASSERT_TRUE(
      coordinator.SubscribeAnswerMirror(qid, subscriber->node_id()).ok());
  run_to(20);
  const auto* mirror = subscriber->AnswerMirror(qid);
  ASSERT_NE(mirror, nullptr);
  ASSERT_TRUE(mirror->count(0));

  // Crash the subscriber; the answer changes while it is down.
  subscriber.reset();
  mover.UpdateMotion({50, 50}, {0, 0});  // Now firmly inside P.
  run_to(40);
  uint64_t full_flushes_before = coordinator.recovery_stats().catchup_deltas;

  subscriber = std::make_unique<MobileNode>(
      &net, &clock, MakeState(0, {50, 50}, {0, 0}), regions, durable_opts);
  EXPECT_TRUE(subscriber->recovered_from_wal());
  run_to(70);
  mirror = subscriber->AnswerMirror(qid);
  ASSERT_NE(mirror, nullptr);
  auto answer = coordinator.ReportedMatches(qid);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(*mirror, answer->matches)
      << "recovered mirror did not catch up to the coordinator's answer";
  EXPECT_GT(coordinator.recovery_stats().catchup_deltas, full_flushes_before)
      << "rejoin never used the delta catch-up path";
  EXPECT_GT(subscriber->deltas_applied(), 0u);
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace most
