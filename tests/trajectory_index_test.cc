#include "index/trajectory_index.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/motion_index.h"
#include "temporal/range_query.h"

namespace most {
namespace {

DynamicAttribute Linear(double v0, Tick at, double slope) {
  return DynamicAttribute(v0, at, TimeFunction::Linear(slope));
}

TEST(RangeQueryTest, ConstantAttribute) {
  DynamicAttribute a(5.0, 0, TimeFunction());
  EXPECT_EQ(TicksWhereInRange(a, 4, 6, Interval(0, 10)),
            IntervalSet(Interval(0, 10)));
  EXPECT_TRUE(TicksWhereInRange(a, 6, 7, Interval(0, 10)).empty());
}

TEST(RangeQueryTest, RisingAttribute) {
  // A(t) = 2t from t=0: in [10, 20] for t in [5, 10].
  DynamicAttribute a = Linear(0, 0, 2.0);
  EXPECT_EQ(TicksWhereInRange(a, 10, 20, Interval(0, 100)),
            IntervalSet(Interval(5, 10)));
}

TEST(RangeQueryTest, FallingAttribute) {
  DynamicAttribute a = Linear(100, 0, -3.0);
  // 100 - 3t in [10, 40] -> t in [20, 30].
  EXPECT_EQ(TicksWhereInRange(a, 10, 40, Interval(0, 100)),
            IntervalSet(Interval(20, 30)));
}

TEST(RangeQueryTest, PiecewiseReentersRange) {
  // Rises 0..50 over [0,10] (slope 5), then falls back (slope -5).
  auto f = TimeFunction::Piecewise({{0, 5.0}, {10, -5.0}});
  ASSERT_TRUE(f.ok());
  DynamicAttribute a(0.0, 0, *f);
  // A in [20, 30]: rising t in [4,6]; falling t in [14,16].
  IntervalSet s = TicksWhereInRange(a, 20, 30, Interval(0, 40));
  EXPECT_EQ(s, IntervalSet::FromIntervals({{4, 6}, {14, 16}}));
}

TEST(RangeQueryTest, ComparisonOperators) {
  DynamicAttribute a = Linear(0, 0, 1.0);  // A(t) = t.
  Interval w(0, 20);
  EXPECT_EQ(TicksWhereCompared(a, RangeCmp::kLt, 5, w),
            IntervalSet(Interval(0, 4)));
  EXPECT_EQ(TicksWhereCompared(a, RangeCmp::kLe, 5, w),
            IntervalSet(Interval(0, 5)));
  EXPECT_EQ(TicksWhereCompared(a, RangeCmp::kGt, 5, w),
            IntervalSet(Interval(6, 20)));
  EXPECT_EQ(TicksWhereCompared(a, RangeCmp::kGe, 5, w),
            IntervalSet(Interval(5, 20)));
  EXPECT_EQ(TicksWhereCompared(a, RangeCmp::kEq, 5, w),
            IntervalSet(Interval(5, 5)));
}

TEST(TrajectoryIndexTest, PaperScenarioCurrentRange) {
  // Paper Section 4: "Retrieve the objects for which currently 4 < A < 5".
  TrajectoryIndex index(0, {.horizon = 100});
  index.Upsert(1, Linear(0, 0, 0.1));   // A(t) = 0.1 t: in (4,5) at t=45.
  index.Upsert(2, Linear(10, 0, -0.1)); // In (4,5) around t=55.
  index.Upsert(3, Linear(100, 0, 0));   // Never.

  auto at45 = index.QueryExact(4.001, 4.999, 45);
  EXPECT_EQ(at45, (std::vector<ObjectId>{1}));
  auto at55 = index.QueryExact(4.001, 4.999, 55);
  EXPECT_EQ(at55, (std::vector<ObjectId>{2}));
  EXPECT_TRUE(index.QueryExact(4.001, 4.999, 80).empty());
}

TEST(TrajectoryIndexTest, CandidatesAreSuperset) {
  TrajectoryIndex index(0, {.horizon = 100});
  index.Upsert(1, Linear(0, 0, 1.0));
  auto candidates = index.QueryCandidates(0, 100, 50);
  auto exact = index.QueryExact(0, 100, 50);
  for (ObjectId id : exact) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), id),
              candidates.end());
  }
}

TEST(TrajectoryIndexTest, UpdateMovesSegments) {
  TrajectoryIndex index(0, {.horizon = 100});
  index.Upsert(1, Linear(0, 0, 1.0));  // Reaches 50 at t=50.
  EXPECT_EQ(index.QueryExact(49, 51, 50), (std::vector<ObjectId>{1}));
  // Motion-vector update at t=10: now stationary at 10.
  index.Upsert(1, Linear(10, 10, 0.0));
  EXPECT_TRUE(index.QueryExact(49, 51, 50).empty());
  EXPECT_EQ(index.QueryExact(9, 11, 50), (std::vector<ObjectId>{1}));
}

TEST(TrajectoryIndexTest, RemoveObject) {
  TrajectoryIndex index(0, {.horizon = 100});
  index.Upsert(1, Linear(5, 0, 0));
  index.Upsert(2, Linear(5, 0, 0));
  index.Remove(1);
  EXPECT_EQ(index.QueryExact(4, 6, 10), (std::vector<ObjectId>{2}));
  EXPECT_EQ(index.num_objects(), 1u);
  index.Remove(99);  // No-op.
}

TEST(TrajectoryIndexTest, RebuildAtHorizon) {
  TrajectoryIndex index(0, {.horizon = 64});
  index.Upsert(1, Linear(0, 0, 1.0));
  EXPECT_FALSE(index.NeedsRebuild(63));
  EXPECT_TRUE(index.NeedsRebuild(64));
  index.Rebuild(64);
  EXPECT_EQ(index.epoch_start(), 64);
  EXPECT_EQ(index.epoch_end(), 128);
  // Object still findable in the new epoch: A(100) = 100.
  EXPECT_EQ(index.QueryExact(99, 101, 100), (std::vector<ObjectId>{1}));
}

TEST(TrajectoryIndexTest, QueryIntervalsContinuous) {
  // Paper: continuous query "4 < A < 5" entered at time t -> for each
  // candidate, the time intervals when it satisfies the range.
  TrajectoryIndex index(0, {.horizon = 200});
  index.Upsert(1, Linear(0, 0, 0.5));    // In [40,50] for t in [80,100].
  index.Upsert(2, Linear(45, 0, 0));     // Always in [40,50].
  index.Upsert(3, Linear(1000, 0, 0));   // Never.
  auto answer = index.QueryIntervals(40, 50, Interval(0, 150));
  ASSERT_EQ(answer.size(), 2u);
  EXPECT_EQ(answer[0].first, 1u);
  EXPECT_EQ(answer[0].second, IntervalSet(Interval(80, 100)));
  EXPECT_EQ(answer[1].first, 2u);
  EXPECT_EQ(answer[1].second, IntervalSet(Interval(0, 150)));
}

TEST(TrajectoryIndexTest, PiecewiseTrajectoryIndexedPerPiece) {
  auto f = TimeFunction::Piecewise({{0, 2.0}, {10, -2.0}});
  ASSERT_TRUE(f.ok());
  TrajectoryIndex index(0, {.horizon = 100});
  index.Upsert(1, DynamicAttribute(0.0, 0, *f));
  EXPECT_GE(index.num_segments(), 2u);
  // Peak of 20 at t=10; value 10 at t=5 and t=15.
  EXPECT_EQ(index.QueryExact(9.5, 10.5, 5), (std::vector<ObjectId>{1}));
  EXPECT_EQ(index.QueryExact(9.5, 10.5, 15), (std::vector<ObjectId>{1}));
  EXPECT_TRUE(index.QueryExact(9.5, 10.5, 10).empty());
}

class TrajectoryIndexPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrajectoryIndexPropertyTest, ExactQueriesMatchFullScan) {
  Rng rng(GetParam());
  TrajectoryIndex index(0, {.horizon = 256});
  std::unordered_map<ObjectId, DynamicAttribute> objects;

  // Populate with random linear attributes; interleave updates.
  for (ObjectId id = 0; id < 150; ++id) {
    DynamicAttribute a = Linear(rng.UniformDouble(-100, 100), 0,
                                rng.UniformDouble(-2, 2));
    objects.emplace(id, a);
    index.Upsert(id, a);
  }
  for (int round = 0; round < 20; ++round) {
    // Random motion update.
    ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, 149));
    Tick now = rng.UniformInt(0, 200);
    DynamicAttribute updated(objects.at(id).ValueAt(now), now,
                             TimeFunction::Linear(rng.UniformDouble(-2, 2)));
    objects.at(id) = updated;
    index.Upsert(id, updated);

    // Random instantaneous range query vs. full scan.
    double lo = rng.UniformDouble(-120, 100);
    double hi = lo + rng.UniformDouble(0, 50);
    Tick t = rng.UniformInt(0, 255);
    std::set<ObjectId> got;
    for (ObjectId oid : index.QueryExact(lo, hi, t)) got.insert(oid);
    std::set<ObjectId> want;
    for (const auto& [oid, attr] : objects) {
      double v = attr.ValueAt(t);
      if (lo <= v && v <= hi) want.insert(oid);
    }
    ASSERT_EQ(got, want) << "round " << round << " t=" << t;
  }
}

TEST_P(TrajectoryIndexPropertyTest, IntervalQueriesMatchPerTickScan) {
  Rng rng(GetParam() + 1000);
  TrajectoryIndex index(0, {.horizon = 64});
  std::unordered_map<ObjectId, DynamicAttribute> objects;
  for (ObjectId id = 0; id < 40; ++id) {
    DynamicAttribute a = Linear(rng.UniformDouble(-50, 50), 0,
                                rng.UniformDouble(-2, 2));
    objects.emplace(id, a);
    index.Upsert(id, a);
  }
  double lo = -10, hi = 10;
  Interval window(0, 63);
  auto answer = index.QueryIntervals(lo, hi, window);
  std::unordered_map<ObjectId, IntervalSet> by_id(answer.begin(),
                                                  answer.end());
  for (const auto& [id, attr] : objects) {
    for (Tick t = window.begin; t <= window.end; ++t) {
      double v = attr.ValueAt(t);
      if (std::abs(v - lo) < 1e-6 || std::abs(v - hi) < 1e-6) continue;
      bool in_answer = by_id.count(id) > 0 && by_id.at(id).Contains(t);
      ASSERT_EQ(in_answer, lo <= v && v <= hi)
          << "object " << id << " t=" << t << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryIndexPropertyTest,
                         ::testing::Values(1, 2, 3, 1997));

TEST(MotionIndexTest, RegionQueryNow) {
  MotionIndex index(0, {.horizon = 128});
  // Object 1 crosses the region; object 2 stays away.
  index.Upsert(1, Linear(-50, 0, 1.0), Linear(0, 0, 0.0));
  index.Upsert(2, Linear(500, 0, 0.0), Linear(500, 0, 0.0));
  BoundingBox region{{-5, -5}, {5, 5}};
  // Object 1 at x in [-5,5] for t in [45,55].
  EXPECT_EQ(index.QueryRegionExact(region, 50), (std::vector<ObjectId>{1}));
  EXPECT_TRUE(index.QueryRegionExact(region, 100).empty());
}

TEST(MotionIndexTest, WindowCandidatesCoverCrossings) {
  MotionIndex index(0, {.horizon = 128});
  index.Upsert(1, Linear(-50, 0, 1.0), Linear(0, 0, 0.0));
  BoundingBox region{{-5, -5}, {5, 5}};
  auto cands = index.QueryRegionCandidates(region, Interval(0, 127));
  EXPECT_EQ(cands, (std::vector<ObjectId>{1}));
  auto none = index.QueryRegionCandidates(BoundingBox{{900, 900}, {910, 910}},
                                          Interval(0, 127));
  EXPECT_TRUE(none.empty());
}

TEST(MotionIndexTest, UpsertReplacesTrajectory) {
  MotionIndex index(0, {.horizon = 128});
  index.Upsert(1, Linear(-50, 0, 1.0), Linear(0, 0, 0.0));
  BoundingBox region{{-5, -5}, {5, 5}};
  ASSERT_EQ(index.QueryRegionExact(region, 50), (std::vector<ObjectId>{1}));
  // Vehicle turns away at t=40.
  index.Upsert(1, Linear(-10, 40, 0.0), Linear(0, 40, -1.0));
  EXPECT_TRUE(index.QueryRegionExact(region, 50).empty());
  index.Remove(1);
  EXPECT_EQ(index.num_objects(), 0u);
}

TEST(MotionIndexTest, RebuildPreservesObjects) {
  MotionIndex index(0, {.horizon = 64});
  index.Upsert(1, Linear(0, 0, 1.0), Linear(0, 0, 1.0));
  EXPECT_TRUE(index.NeedsRebuild(64));
  index.Rebuild(64);
  BoundingBox region{{99, 99}, {101, 101}};
  EXPECT_EQ(index.QueryRegionExact(region, 100), (std::vector<ObjectId>{1}));
}

class MotionIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MotionIndexPropertyTest, RegionQueriesMatchFullScan) {
  Rng rng(GetParam());
  MotionIndex index(0, {.horizon = 128});
  struct Obj {
    DynamicAttribute x, y;
  };
  std::unordered_map<ObjectId, Obj> objects;
  for (ObjectId id = 0; id < 100; ++id) {
    Obj o{Linear(rng.UniformDouble(-100, 100), 0, rng.UniformDouble(-2, 2)),
          Linear(rng.UniformDouble(-100, 100), 0, rng.UniformDouble(-2, 2))};
    index.Upsert(id, o.x, o.y);
    objects.emplace(id, o);
  }
  for (int q = 0; q < 30; ++q) {
    double x0 = rng.UniformDouble(-120, 100);
    double y0 = rng.UniformDouble(-120, 100);
    BoundingBox region{{x0, y0},
                       {x0 + rng.UniformDouble(1, 60),
                        y0 + rng.UniformDouble(1, 60)}};
    Tick t = rng.UniformInt(0, 127);
    std::set<ObjectId> got;
    for (ObjectId id : index.QueryRegionExact(region, t)) got.insert(id);
    std::set<ObjectId> want;
    for (const auto& [id, o] : objects) {
      Point2 pos{o.x.ValueAt(t), o.y.ValueAt(t)};
      if (region.Contains(pos)) want.insert(id);
    }
    ASSERT_EQ(got, want) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MotionIndexPropertyTest,
                         ::testing::Values(1, 7, 1997));

}  // namespace
}  // namespace most
