#include "ftl/spatial_eval.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/mec.h"

namespace most {
namespace {

class SpatialEvalTest : public ::testing::Test {
 protected:
  SpatialEvalTest() {
    EXPECT_TRUE(db_.CreateClass("M", {}, true).ok());
  }

  // Creates an object with a piecewise route given by (start, velocity,
  // switch_tick, velocity2).
  const MostObject* AddPiecewise(Point2 start, Vec2 v1, Tick switch_at,
                                 Vec2 v2) {
    auto obj = db_.CreateObject("M");
    EXPECT_TRUE(obj.ok());
    auto fx = TimeFunction::Piecewise({{0, v1.x}, {switch_at, v2.x}});
    auto fy = TimeFunction::Piecewise({{0, v1.y}, {switch_at, v2.y}});
    EXPECT_TRUE(fx.ok());
    EXPECT_TRUE(fy.ok());
    EXPECT_TRUE(db_.UpdateDynamic("M", (*obj)->id(), kAttrX, start.x, *fx)
                    .ok());
    EXPECT_TRUE(db_.UpdateDynamic("M", (*obj)->id(), kAttrY, start.y, *fy)
                    .ok());
    return *obj;
  }

  const MostObject* AddLinear(Point2 start, Vec2 v) {
    auto obj = db_.CreateObject("M");
    EXPECT_TRUE(obj.ok());
    EXPECT_TRUE(db_.SetMotion("M", (*obj)->id(), start, v).ok());
    return *obj;
  }

  MostDatabase db_;
};

TEST_F(SpatialEvalTest, InsideTicksWithTurn) {
  // Heads toward the square, turns away at t=10 before reaching it; then
  // a second object that turns INTO the square.
  Polygon square = Polygon::Rectangle({20, -5}, {30, 5});
  const MostObject* misses =
      AddPiecewise({0, 0}, {1, 0}, /*switch_at=*/10, {0, 5});
  const MostObject* hits =
      AddPiecewise({0, 50}, {1, 0}, /*switch_at=*/10, {1, -5});
  Interval window(0, 60);

  EXPECT_TRUE(InsideTicks(*misses, square, window).empty());
  IntervalSet hit_when = InsideTicks(*hits, square, window);
  EXPECT_FALSE(hit_when.empty());
  // Verify against per-tick ground truth.
  for (Tick t = 0; t <= 60; ++t) {
    Point2 p = hits->PositionAt(t);
    if (square.BoundaryDistance(p) < 1e-6) continue;
    EXPECT_EQ(hit_when.Contains(t), square.Contains(p)) << "t=" << t;
  }
}

TEST_F(SpatialEvalTest, DistCmpAllOperators) {
  const MostObject* a = AddLinear({0, 0}, {1, 0});
  const MostObject* b = AddLinear({20, 0}, {0, 0});
  Interval window(0, 40);
  // |a-b| = |20 - t|; <= 5 for t in [15, 25].
  EXPECT_EQ(DistCmpTicks(*a, *b, FtlFormula::CmpOp::kLe, 5, window),
            IntervalSet(Interval(15, 25)));
  EXPECT_EQ(DistCmpTicks(*a, *b, FtlFormula::CmpOp::kGe, 5, window),
            IntervalSet::FromIntervals({{0, 15}, {25, 40}}));
  EXPECT_EQ(DistCmpTicks(*a, *b, FtlFormula::CmpOp::kLt, 5, window),
            IntervalSet(Interval(16, 24)));
  EXPECT_EQ(DistCmpTicks(*a, *b, FtlFormula::CmpOp::kGt, 5, window),
            IntervalSet::FromIntervals({{0, 14}, {26, 40}}));
  EXPECT_EQ(DistCmpTicks(*a, *b, FtlFormula::CmpOp::kEq, 5, window),
            IntervalSet::FromIntervals({{15, 15}, {25, 25}}));
  EXPECT_EQ(DistCmpTicks(*a, *b, FtlFormula::CmpOp::kNe, 5, window),
            IntervalSet::FromIntervals({{0, 14}, {16, 24}, {26, 40}}));
}

TEST_F(SpatialEvalTest, DistCmpAcrossMotionChange) {
  // b reverses direction at t=10: distance shrinks, then grows again.
  const MostObject* a = AddLinear({0, 0}, {0, 0});
  const MostObject* b = AddPiecewise({20, 0}, {-1, 0}, 10, {1, 0});
  Interval window(0, 40);
  IntervalSet close = DistCmpTicks(*a, *b, FtlFormula::CmpOp::kLe, 12, window);
  // |b(t)| = 20-t until 10 (min 10 at t=10), then 10+(t-10).
  // <= 12 for t in [8, 12].
  EXPECT_EQ(close, IntervalSet(Interval(8, 12)));
}

TEST_F(SpatialEvalTest, SphereTicksMatchesPerTick) {
  Rng rng(3);
  std::vector<const MostObject*> objs;
  for (int i = 0; i < 3; ++i) {
    objs.push_back(AddPiecewise(
        {0.25 * rng.UniformInt(-100, 100), 0.25 * rng.UniformInt(-100, 100)},
        {0.25 * rng.UniformInt(-6, 6), 0.25 * rng.UniformInt(-6, 6)},
        rng.UniformInt(5, 20),
        {0.25 * rng.UniformInt(-6, 6), 0.25 * rng.UniformInt(-6, 6)}));
  }
  double r = 30.0;
  Interval window(0, 40);
  IntervalSet when = SphereTicks(objs, r, window);
  for (Tick t = 0; t <= 40; ++t) {
    std::vector<Point2> pts;
    for (const MostObject* o : objs) pts.push_back(o->PositionAt(t));
    double mec = MinimalEnclosingCircle(pts).radius;
    if (std::abs(mec - r) < 1e-6) continue;
    EXPECT_EQ(when.Contains(t), mec <= r) << "t=" << t << " mec=" << mec;
  }
}

}  // namespace
}  // namespace most
