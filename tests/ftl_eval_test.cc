#include "ftl/eval.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/naive_eval.h"
#include "ftl/parser.h"

namespace most {
namespace {

// World used by the deterministic tests: spatial class PLANES with a static
// PRICE and a dynamic FUEL attribute, plus rectangular regions P and Q.
class FtlEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateClass("PLANES",
                                {{"PRICE", false, ValueType::kDouble},
                                 {"FUEL", true, ValueType::kNull}},
                                /*spatial=*/true)
                    .ok());
    ASSERT_TRUE(db_.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10}))
                    .ok());
    ASSERT_TRUE(db_.DefineRegion("Q", Polygon::Rectangle({20, 0}, {30, 10}))
                    .ok());
  }

  // Creates a plane at `pos` moving with `vel`, fuel starting at `fuel`
  // draining at `fuel_rate`.
  ObjectId AddPlane(Point2 pos, Vec2 vel, double price = 50.0,
                    double fuel = 100.0, double fuel_rate = 0.0) {
    auto obj = db_.CreateObject("PLANES");
    EXPECT_TRUE(obj.ok());
    ObjectId id = (*obj)->id();
    EXPECT_TRUE(db_.SetMotion("PLANES", id, pos, vel).ok());
    EXPECT_TRUE(db_.UpdateStatic("PLANES", id, "PRICE", Value(price)).ok());
    EXPECT_TRUE(db_.UpdateDynamic("PLANES", id, "FUEL", fuel,
                                  TimeFunction::Linear(fuel_rate))
                    .ok());
    return id;
  }

  Result<TemporalRelation> Run(const std::string& query, Interval window) {
    MOST_ASSIGN_OR_RETURN(FtlQuery q, ParseQuery(query));
    FtlEvaluator eval(db_);
    return eval.EvaluateQuery(q, window);
  }

  IntervalSet RowSet(const TemporalRelation& rel, ObjectId id) {
    auto it = rel.rows.find({id});
    return it == rel.rows.end() ? IntervalSet() : it->second;
  }

  MostDatabase db_;
};

TEST_F(FtlEvalTest, InstantRangePredicate) {
  ObjectId a = AddPlane({5, 5}, {0, 0});   // Inside P forever.
  ObjectId b = AddPlane({50, 5}, {0, 0});  // Never inside P.
  auto rel = Run("RETRIEVE o FROM PLANES o WHERE INSIDE(o, P)",
                 Interval(0, 100));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(RowSet(*rel, a), IntervalSet(Interval(0, 100)));
  EXPECT_TRUE(RowSet(*rel, b).empty());
}

TEST_F(FtlEvalTest, MovingObjectEntersRegion) {
  // Crosses P (x from 0 to 10) during t in [20, 30].
  ObjectId a = AddPlane({-20, 5}, {1, 0});
  auto rel = Run("RETRIEVE o FROM PLANES o WHERE INSIDE(o, P)",
                 Interval(0, 100));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(RowSet(*rel, a), IntervalSet(Interval(20, 30)));
}

TEST_F(FtlEvalTest, PaperQueryI_PriceAndEventuallyWithin) {
  // Enters P at t=20: outside "within 3 of t<=17"; satisfied from t=17.
  ObjectId cheap = AddPlane({-20, 5}, {1, 0}, /*price=*/80);
  ObjectId expensive = AddPlane({-20, 5}, {1, 0}, /*price=*/200);
  auto rel = Run(
      "RETRIEVE o FROM PLANES o "
      "WHERE o.PRICE <= 100 AND EVENTUALLY WITHIN 3 INSIDE(o, P)",
      Interval(0, 100));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(RowSet(*rel, cheap), IntervalSet(Interval(17, 30)));
  EXPECT_TRUE(RowSet(*rel, expensive).empty());
}

TEST_F(FtlEvalTest, PaperQueryII_EnterAndStay) {
  // Fast plane stays in P for 10 ticks; slow plane dips in for 2 ticks.
  ObjectId stayer = AddPlane({-3, 5}, {1, 0});    // In P for t in [3, 13].
  ObjectId sprinter = AddPlane({-15, 5}, {5, 0}); // In P for t in [3, 5].
  auto rel = Run(
      "RETRIEVE o FROM PLANES o "
      "WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 "
      "INSIDE(o, P))",
      Interval(0, 100));
  ASSERT_TRUE(rel.ok()) << rel.status();
  // stayer: inside AND stays-2-more on [3, 11]; eventually-within-3 from 0.
  EXPECT_EQ(RowSet(*rel, stayer), IntervalSet(Interval(0, 11)));
  // sprinter: inside [3,5]; always-for-2 only at t=3; within 3 -> [0,3].
  EXPECT_EQ(RowSet(*rel, sprinter), IntervalSet(Interval(0, 3)));
}

TEST_F(FtlEvalTest, PaperQueryIII_ThenReachQ) {
  // Enters P at t=2 (x: -2 -> crosses 0..10 at t in [2,12]), stays, and
  // reaches Q (x in [20,30]) at t in [22, 32].
  ObjectId good = AddPlane({-2, 5}, {1, 0});
  // This one turns back before Q.
  ObjectId bad = AddPlane({-2, 5}, {1, 0});
  // Install a piecewise route for bad: forward till t=14, then backward.
  auto f = TimeFunction::Piecewise({{0, 1.0}, {14, -1.0}});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(db_.UpdateDynamic("PLANES", bad, kAttrX, -2.0, *f).ok());

  auto rel = Run(
      "RETRIEVE o FROM PLANES o "
      "WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P) "
      "AND EVENTUALLY AFTER 5 INSIDE(o, Q))",
      Interval(0, 100));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_FALSE(RowSet(*rel, good).empty());
  EXPECT_TRUE(RowSet(*rel, good).Contains(0));
  EXPECT_TRUE(RowSet(*rel, bad).empty());
}

TEST_F(FtlEvalTest, PaperQueryQ_DistUntilBothInside) {
  // Two planes flying together into P.
  ObjectId o1 = AddPlane({-10, 4}, {1, 0});
  ObjectId o2 = AddPlane({-12, 6}, {1, 0});  // 2 behind, stays within 5.
  // A third plane far away from both.
  AddPlane({500, 500}, {0, 0});
  auto rel = Run(
      "RETRIEVE o, n FROM PLANES o, PLANES n "
      "WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))",
      Interval(0, 60));
  ASSERT_TRUE(rel.ok()) << rel.status();
  // o1 enters P at t=10, o2 at t=12; both inside during [12, 20].
  // DIST(o1,o2) is constantly ~2.83 <= 5, so satisfaction extends to t=0.
  auto it = rel->rows.find({o2, o1});  // vars sorted: n, o -> binding (n, o)?
  // Variables are sorted alphabetically: ("n", "o").
  ASSERT_EQ(rel->vars, (std::vector<std::string>{"n", "o"}));
  // Pair (o = o1, n = o2): binding order (n=o2, o=o1).
  it = rel->rows.find({o2, o1});
  ASSERT_NE(it, rel->rows.end());
  EXPECT_TRUE(it->second.Contains(0));
  EXPECT_TRUE(it->second.Contains(20));
  EXPECT_FALSE(it->second.Contains(21));
}

TEST_F(FtlEvalTest, SubAttributeQueries) {
  // Paper: "the objects whose speed in the X direction is 5".
  ObjectId fast = AddPlane({0, 0}, {5, 0});
  ObjectId slow = AddPlane({0, 0}, {2, 0});
  auto rel = Run(
      "RETRIEVE o FROM PLANES o WHERE SPEED(o.X.POSITION) = 5",
      Interval(0, 10));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(RowSet(*rel, fast), IntervalSet(Interval(0, 10)));
  EXPECT_TRUE(RowSet(*rel, slow).empty());

  // updatetime sub-attribute equals the motion update time (0 here).
  auto rel2 = Run(
      "RETRIEVE o FROM PLANES o WHERE o.X.POSITION.updatetime = 0",
      Interval(0, 10));
  ASSERT_TRUE(rel2.ok()) << rel2.status();
  EXPECT_EQ(rel2->rows.size(), 2u);
}

TEST_F(FtlEvalTest, DynamicAttributeComparisonOverTime) {
  // Fuel drains from 100 at 2/tick: below 40 from tick 31 on.
  ObjectId a = AddPlane({0, 0}, {0, 0}, 50, 100.0, -2.0);
  auto rel = Run("RETRIEVE o FROM PLANES o WHERE o.FUEL < 40",
                 Interval(0, 100));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(RowSet(*rel, a), IntervalSet(Interval(31, 100)));
}

TEST_F(FtlEvalTest, TimeTermComparison) {
  AddPlane({0, 0}, {0, 0});
  auto rel = Run("RETRIEVE o FROM PLANES o WHERE time >= 42",
                 Interval(0, 100));
  ASSERT_TRUE(rel.ok()) << rel.status();
  ASSERT_EQ(rel->rows.size(), 1u);
  EXPECT_EQ(rel->rows.begin()->second, IntervalSet(Interval(42, 100)));
}

TEST_F(FtlEvalTest, AssignmentDetectsValueChange) {
  // [x := o.FUEL] NEXTTIME o.FUEL != x -- true whenever fuel is changing.
  ObjectId draining = AddPlane({0, 0}, {0, 0}, 50, 100.0, -1.0);
  ObjectId constant = AddPlane({0, 0}, {0, 0}, 50, 100.0, 0.0);
  auto rel = Run(
      "RETRIEVE o FROM PLANES o "
      "WHERE [x := o.FUEL] NEXTTIME o.FUEL != x",
      Interval(0, 20));
  ASSERT_TRUE(rel.ok()) << rel.status();
  // Draining object: satisfied at every tick with a next state, [0, 19].
  EXPECT_EQ(RowSet(*rel, draining), IntervalSet(Interval(0, 19)));
  EXPECT_TRUE(RowSet(*rel, constant).empty());
}

TEST_F(FtlEvalTest, AssignmentSpeedDoubles) {
  // Paper's query R (Section 2.3) in its instantaneous reading: an object
  // whose speed doubles within 10 ticks. With a piecewise route (speed 5
  // then 10 at t=6) the future history itself contains the change.
  ObjectId doubles = AddPlane({0, 0}, {5, 0});
  auto f = TimeFunction::Piecewise({{0, 5.0}, {6, 10.0}});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(db_.UpdateDynamic("PLANES", doubles, kAttrX, 0.0, *f).ok());
  ObjectId steady = AddPlane({0, 0}, {5, 0});

  auto rel = Run(
      "RETRIEVE o FROM PLANES o "
      "WHERE [x := SPEED(o.X.POSITION)] EVENTUALLY WITHIN 10 "
      "SPEED(o.X.POSITION) = x * 2",
      Interval(0, 30));
  ASSERT_TRUE(rel.ok()) << rel.status();
  // Speed is 5 on [0,5] and 10 from 6: doubling observed from t=0..5
  // (within 10 of the change at 6).
  EXPECT_EQ(RowSet(*rel, doubles), IntervalSet(Interval(0, 5)));
  EXPECT_TRUE(RowSet(*rel, steady).empty());
}

TEST_F(FtlEvalTest, OutsideIsComplement) {
  ObjectId a = AddPlane({-20, 5}, {1, 0});  // Inside P during [20, 30].
  auto rel = Run("RETRIEVE o FROM PLANES o WHERE OUTSIDE(o, P)",
                 Interval(0, 60));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(RowSet(*rel, a),
            IntervalSet::FromIntervals({{0, 19}, {31, 60}}));
}

TEST_F(FtlEvalTest, WithinSphereRelation) {
  ObjectId a = AddPlane({-10, 0}, {1, 0});
  ObjectId b = AddPlane({10, 0}, {-1, 0});
  auto rel = Run(
      "RETRIEVE o, n FROM PLANES o, PLANES n "
      "WHERE n.PRICE >= 0 AND WITHIN_SPHERE(2.5, o, n)",
      Interval(0, 20));
  ASSERT_TRUE(rel.ok()) << rel.status();
  // |a-b| = 20 - 2t <= 5 for t in [7.5, 12.5] -> ticks 8..12.
  auto it = rel->rows.find({b, a});
  ASSERT_NE(it, rel->rows.end());
  EXPECT_EQ(it->second, IntervalSet(Interval(8, 12)));
}

TEST_F(FtlEvalTest, MovingRegionAnchoredAtObject) {
  // The paper's moving circle: a region drawn around a car that travels
  // with its motion vector. Region coordinates are anchor-relative.
  ASSERT_TRUE(db_.DefineRegion(
                     "NEAR_ME", Polygon::RegularApprox({0, 0}, 5.0, 32))
                  .ok());
  ObjectId car = AddPlane({0, 0}, {1, 0});
  ObjectId follows = AddPlane({-10, 0}, {1, 0});   // Constant offset -10.
  ObjectId crosses = AddPlane({50, 0}, {-1, 0});   // Passes the car at t=25.
  auto rel = Run(
      "RETRIEVE o, c FROM PLANES o, PLANES c WHERE INSIDE(o, NEAR_ME, c)",
      Interval(0, 60));
  ASSERT_TRUE(rel.ok()) << rel.status();
  // Vars sorted: (c, o). The follower is never within 5 of the car.
  EXPECT_EQ(rel->rows.count({car, follows}), 0u);
  // The crosser is within 5 of the car when |50 - 2t| <= 5 -> t in
  // [22.5, 27.5] -> ticks 23..27.
  auto it = rel->rows.find({car, crosses});
  ASSERT_NE(it, rel->rows.end());
  EXPECT_EQ(it->second, IntervalSet(Interval(23, 27)));
  // Every object is inside its own 5-radius circle the whole time.
  it = rel->rows.find({car, car});
  ASSERT_NE(it, rel->rows.end());
  EXPECT_EQ(it->second, IntervalSet(Interval(0, 60)));
}

TEST_F(FtlEvalTest, MovingRegionParsesAndPrints) {
  auto q = ParseQuery(
      "RETRIEVE o FROM PLANES o, PLANES c WHERE INSIDE(o, NEAR_ME, c)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where->anchor(), "c");
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST_F(FtlEvalTest, NegationViaComplement) {
  ObjectId a = AddPlane({-20, 5}, {1, 0});  // Inside P during [20, 30].
  auto rel = Run("RETRIEVE o FROM PLANES o WHERE NOT INSIDE(o, P)",
                 Interval(0, 60));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(RowSet(*rel, a), IntervalSet::FromIntervals({{0, 19}, {31, 60}}));

  FtlEvaluator strict(db_, {.allow_negation = false});
  auto q = ParseQuery("RETRIEVE o FROM PLANES o WHERE NOT INSIDE(o, P)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(strict.EvaluateQuery(*q, Interval(0, 60)).ok());
}

TEST_F(FtlEvalTest, SemijoinPrunesAndPreservesResults) {
  // 30 planes; only one is headed for P, so the AND's cheap INSIDE side
  // should shrink the expensive DIST side's domain to ~1 object.
  ObjectId inbound = AddPlane({-20, 5}, {1, 0});
  for (int i = 0; i < 29; ++i) {
    AddPlane({1000.0 + 10 * i, 1000}, {0, 0});
  }
  auto q = ParseQuery(
      "RETRIEVE o, n FROM PLANES o, PLANES n "
      "WHERE INSIDE(o, P) AND DIST(o, n) <= 50");
  ASSERT_TRUE(q.ok());
  Interval window(0, 80);
  FtlEvaluator with(db_, {.enable_semijoin = true});
  FtlEvaluator without(db_, {.enable_semijoin = false});
  auto with_rel = with.EvaluateQuery(*q, window);
  auto without_rel = without.EvaluateQuery(*q, window);
  ASSERT_TRUE(with_rel.ok());
  ASSERT_TRUE(without_rel.ok());
  EXPECT_EQ(with_rel->rows, without_rel->rows);
  EXPECT_FALSE(with_rel->rows.empty());
  // The DIST atom enumerated ~|P-matches| * 30 pairs instead of 30 * 30.
  EXPECT_LT(with.stats().atomic_evaluations,
            without.stats().atomic_evaluations / 2);
  (void)inbound;
}

TEST_F(FtlEvalTest, QueryValidationErrors) {
  AddPlane({0, 0}, {0, 0});
  // Unbound variable in WHERE.
  EXPECT_FALSE(Run("RETRIEVE o FROM PLANES o WHERE INSIDE(z, P)",
                   Interval(0, 10))
                   .ok());
  // Unbound RETRIEVE variable.
  EXPECT_FALSE(Run("RETRIEVE z FROM PLANES o WHERE INSIDE(o, P)",
                   Interval(0, 10))
                   .ok());
  // Unknown class.
  EXPECT_FALSE(Run("RETRIEVE o FROM NOPE o WHERE INSIDE(o, P)",
                   Interval(0, 10))
                   .ok());
  // Unknown region.
  EXPECT_FALSE(Run("RETRIEVE o FROM PLANES o WHERE INSIDE(o, NOPE)",
                   Interval(0, 10))
                   .ok());
  // Free value variable.
  EXPECT_FALSE(Run("RETRIEVE o FROM PLANES o WHERE o.PRICE <= x",
                   Interval(0, 10))
                   .ok());
}

TEST_F(FtlEvalTest, UnconstrainedRetrieveVarRangesOverClass) {
  ObjectId a = AddPlane({5, 5}, {0, 0});
  ObjectId b = AddPlane({5, 5}, {0, 0});
  // n is retrieved but unconstrained: every (o, n) pair of inside-objects.
  auto rel = Run("RETRIEVE o, n FROM PLANES o, PLANES n WHERE INSIDE(o, P)",
                 Interval(0, 5));
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->rows.size(), 4u);
  (void)a;
  (void)b;
}

// ---------------------------------------------------------------------------
// Property test: the interval evaluator must agree with the state-stepping
// reference evaluator on randomized worlds and formulas.
// ---------------------------------------------------------------------------

// All geometry on a 0.25 grid so predicate flips at integer ticks are
// computed identically (exactly) by both evaluators.
double Grid(Rng* rng, double lo, double hi) {
  int64_t steps = static_cast<int64_t>((hi - lo) * 4);
  return lo + 0.25 * static_cast<double>(rng->UniformInt(0, steps));
}

FormulaPtr RandomAtom(Rng* rng) {
  switch (rng->UniformInt(0, 8)) {
    case 7:
      // Moving region anchored at the other object.
      return FtlFormula::Inside("o", rng->Bernoulli(0.5) ? "R1" : "R2", "n");
    case 8:
      return FtlFormula::Outside("n", rng->Bernoulli(0.5) ? "R1" : "R2",
                                 "o");
    case 0:
      return FtlFormula::Inside("o", rng->Bernoulli(0.5) ? "R1" : "R2");
    case 1:
      return FtlFormula::Outside("o", rng->Bernoulli(0.5) ? "R1" : "R2");
    case 2:
      return FtlFormula::Inside("n", rng->Bernoulli(0.5) ? "R1" : "R2");
    case 3: {
      auto op = static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5));
      return FtlFormula::Compare(
          op, FtlTerm::Dist("o", "n"),
          FtlTerm::Literal(Value(Grid(rng, 1, 30))));
    }
    case 4: {
      auto op = static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5));
      return FtlFormula::Compare(
          op, FtlTerm::AttrRef("o", "FUEL"),
          FtlTerm::Literal(Value(Grid(rng, 0, 100))));
    }
    case 5: {
      auto op = static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5));
      return FtlFormula::Compare(op, FtlTerm::Time(),
                                 FtlTerm::Literal(Value(static_cast<double>(
                                     rng->UniformInt(0, 30)))));
    }
    default:
      return FtlFormula::WithinSphere(Grid(rng, 1, 20), {"o", "n"});
  }
}

FormulaPtr RandomFormula(Rng* rng, int depth) {
  if (depth <= 0) return RandomAtom(rng);
  switch (rng->UniformInt(0, 9)) {
    case 0:
      return FtlFormula::And(RandomFormula(rng, depth - 1),
                             RandomFormula(rng, depth - 1));
    case 1:
      return FtlFormula::Or(RandomFormula(rng, depth - 1),
                            RandomFormula(rng, depth - 1));
    case 2:
      return FtlFormula::Not(RandomFormula(rng, depth - 1));
    case 3:
      return FtlFormula::Until(RandomFormula(rng, depth - 1),
                               RandomFormula(rng, depth - 1));
    case 4:
      return FtlFormula::UntilWithin(rng->UniformInt(0, 10),
                                     RandomFormula(rng, depth - 1),
                                     RandomFormula(rng, depth - 1));
    case 5:
      return FtlFormula::Nexttime(RandomFormula(rng, depth - 1));
    case 6:
      return FtlFormula::EventuallyWithin(rng->UniformInt(0, 12),
                                          RandomFormula(rng, depth - 1));
    case 7:
      return FtlFormula::AlwaysFor(rng->UniformInt(0, 8),
                                   RandomFormula(rng, depth - 1));
    case 8:
      return rng->Bernoulli(0.5)
                 ? FtlFormula::Eventually(RandomFormula(rng, depth - 1))
                 : FtlFormula::Always(RandomFormula(rng, depth - 1));
    default:
      return FtlFormula::EventuallyAfter(rng->UniformInt(0, 10),
                                         RandomFormula(rng, depth - 1));
  }
}

class FtlAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FtlAgreementTest, IntervalEvaluatorMatchesNaive) {
  Rng rng(GetParam());
  for (int world = 0; world < 4; ++world) {
    MostDatabase db;
    ASSERT_TRUE(
        db.CreateClass("M", {{"FUEL", true, ValueType::kNull}}, true).ok());
    ASSERT_TRUE(
        db.DefineRegion("R1", Polygon::Rectangle({-10, -10}, {5, 5})).ok());
    ASSERT_TRUE(
        db.DefineRegion("R2", Polygon::Rectangle({0, 0}, {15, 12})).ok());
    int num_objects = 3;
    for (int i = 0; i < num_objects; ++i) {
      auto obj = db.CreateObject("M");
      ASSERT_TRUE(obj.ok());
      ObjectId id = (*obj)->id();
      // Half the objects get piecewise routes.
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(db.SetMotion("M", id,
                                 {Grid(&rng, -20, 20), Grid(&rng, -20, 20)},
                                 {Grid(&rng, -2, 2), Grid(&rng, -2, 2)})
                        .ok());
      } else {
        auto fx = TimeFunction::Piecewise(
            {{0, Grid(&rng, -2, 2)},
             {rng.UniformInt(3, 15), Grid(&rng, -2, 2)}});
        ASSERT_TRUE(fx.ok());
        ASSERT_TRUE(db.UpdateDynamic("M", id, kAttrX, Grid(&rng, -20, 20),
                                     *fx)
                        .ok());
        ASSERT_TRUE(db.UpdateDynamic("M", id, kAttrY, Grid(&rng, -20, 20),
                                     TimeFunction::Linear(Grid(&rng, -2, 2)))
                        .ok());
      }
      ASSERT_TRUE(db.UpdateDynamic("M", id, "FUEL", Grid(&rng, 0, 100),
                                   TimeFunction::Linear(Grid(&rng, -2, 2)))
                      .ok());
    }

    for (int round = 0; round < 6; ++round) {
      FtlQuery query;
      query.retrieve = {"o", "n"};
      query.from = {{"M", "o"}, {"M", "n"}};
      query.where = RandomFormula(&rng, 2);

      Interval window(0, 30);
      FtlEvaluator fast(db);
      NaiveFtlEvaluator naive(db);
      auto fast_rel = fast.EvaluateQuery(query, window);
      auto naive_rel = naive.EvaluateQuery(query, window);
      ASSERT_TRUE(fast_rel.ok()) << fast_rel.status() << "\nformula: "
                                 << query.where->ToString();
      ASSERT_TRUE(naive_rel.ok()) << naive_rel.status();
      EXPECT_EQ(fast_rel->vars, naive_rel->vars);
      EXPECT_EQ(fast_rel->rows, naive_rel->rows)
          << "formula: " << query.where->ToString() << "\nfast: "
          << fast_rel->ToString() << "\nnaive: " << naive_rel->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1997));

}  // namespace
}  // namespace most
