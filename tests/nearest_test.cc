#include "ftl/nearest.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace most {
namespace {

class NearestTest : public ::testing::Test {
 protected:
  NearestTest() {
    EXPECT_TRUE(db_.CreateClass("HOSPITALS",
                                {{"NAME", false, ValueType::kString}},
                                /*spatial=*/true)
                    .ok());
    EXPECT_TRUE(db_.CreateClass("CARS", {}, true).ok());
  }

  const MostObject* AddHospital(Point2 pos) {
    auto obj = db_.CreateObject("HOSPITALS");
    EXPECT_TRUE(db_.SetMotion("HOSPITALS", (*obj)->id(), pos, {0, 0}).ok());
    return *obj;
  }

  const MostObject* AddCar(Point2 pos, Vec2 vel) {
    auto obj = db_.CreateObject("CARS");
    EXPECT_TRUE(db_.SetMotion("CARS", (*obj)->id(), pos, vel).ok());
    return *obj;
  }

  MostDatabase db_;
};

TEST_F(NearestTest, PaperOpeningQuery) {
  // "How far is the car with license plate RWW860 from the nearest
  // hospital?" — and because positions are functions of time, the answer
  // changes as the car drives, with no update in between.
  const MostObject* h1 = AddHospital({0, 0});
  const MostObject* h2 = AddHospital({100, 0});
  const MostObject* car = AddCar({20, 0}, {1, 0});

  auto at0 = NearestNeighbor(db_, "HOSPITALS", *car, 0);
  ASSERT_TRUE(at0.ok()) << at0.status();
  EXPECT_EQ(at0->id, h1->id());
  EXPECT_DOUBLE_EQ(at0->distance, 20.0);

  auto at60 = NearestNeighbor(db_, "HOSPITALS", *car, 60);
  ASSERT_TRUE(at60.ok());
  EXPECT_EQ(at60->id, h2->id());
  EXPECT_DOUBLE_EQ(at60->distance, 20.0);
}

TEST_F(NearestTest, EmptyClassAndSelfExclusion) {
  const MostObject* car = AddCar({0, 0}, {0, 0});
  EXPECT_FALSE(NearestNeighbor(db_, "HOSPITALS", *car, 0).ok());
  EXPECT_FALSE(NearestNeighbor(db_, "NOPE", *car, 0).ok());
  // A car is never its own nearest CAR.
  const MostObject* other = AddCar({5, 0}, {0, 0});
  auto nearest = NearestNeighbor(db_, "CARS", *car, 0);
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(nearest->id, other->id());
}

TEST_F(NearestTest, WindowPartitionsAtCrossover) {
  // Car drives from h1 toward h2; handover at the midpoint x=50 (t=30).
  const MostObject* h1 = AddHospital({0, 0});
  const MostObject* h2 = AddHospital({100, 0});
  const MostObject* car = AddCar({20, 0}, {1, 0});
  auto result = NearestOverWindow(db_, "HOSPITALS", *car, Interval(0, 60));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 2u);
  std::map<ObjectId, IntervalSet> by_id(result->begin(), result->end());
  // x(t) = 20 + t; equidistant at x=50 (t=30); tie goes to smaller id.
  EXPECT_EQ(by_id.at(h1->id()), IntervalSet(Interval(0, 30)));
  EXPECT_EQ(by_id.at(h2->id()), IntervalSet(Interval(31, 60)));
}

TEST_F(NearestTest, WindowMatchesPerTickOracle) {
  Rng rng(1997);
  std::vector<const MostObject*> hospitals;
  for (int i = 0; i < 8; ++i) {
    hospitals.push_back(AddHospital({0.25 * rng.UniformInt(-200, 200),
                                     0.25 * rng.UniformInt(-200, 200)}));
  }
  for (int round = 0; round < 10; ++round) {
    const MostObject* car =
        AddCar({0.25 * rng.UniformInt(-200, 200),
                0.25 * rng.UniformInt(-200, 200)},
               {0.25 * rng.UniformInt(-8, 8), 0.25 * rng.UniformInt(-8, 8)});
    Interval window(0, 50);
    auto result = NearestOverWindow(db_, "HOSPITALS", *car, window);
    ASSERT_TRUE(result.ok());
    std::map<ObjectId, IntervalSet> by_id(result->begin(), result->end());
    for (Tick t = window.begin; t <= window.end; ++t) {
      // Oracle with the same tie-break: smallest distance, then id.
      auto expected = NearestNeighbor(db_, "HOSPITALS", *car, t);
      ASSERT_TRUE(expected.ok());
      // Skip near-ties (float-order ambiguity).
      int near_ties = 0;
      for (const MostObject* h : hospitals) {
        double d = h->PositionAt(t).DistanceTo(car->PositionAt(t));
        if (std::abs(d - expected->distance) < 1e-6) ++near_ties;
      }
      if (near_ties > 1) continue;
      size_t winners = 0;
      for (const auto& [id, when] : by_id) {
        if (when.Contains(t)) {
          ++winners;
          EXPECT_EQ(id, expected->id) << "t=" << t;
        }
      }
      EXPECT_EQ(winners, 1u) << "t=" << t;
    }
  }
}

TEST_F(NearestTest, MovingCandidates) {
  // A moving ambulance overtakes a stationary hospital as the nearest.
  const MostObject* fixed = AddHospital({10, 0});
  auto ambulance = db_.CreateObject("HOSPITALS");
  ASSERT_TRUE(
      db_.SetMotion("HOSPITALS", (*ambulance)->id(), {100, 0}, {-2, 0}).ok());
  const MostObject* car = AddCar({0, 0}, {0, 0});
  auto result = NearestOverWindow(db_, "HOSPITALS", *car, Interval(0, 60));
  ASSERT_TRUE(result.ok());
  std::map<ObjectId, IntervalSet> by_id(result->begin(), result->end());
  // Ambulance at 100 - 2t: closer than 10 when 100 - 2t < 10, t > 45.
  ASSERT_TRUE(by_id.count(fixed->id()));
  ASSERT_TRUE(by_id.count((*ambulance)->id()));
  EXPECT_TRUE(by_id.at(fixed->id()).Contains(45));
  EXPECT_TRUE(by_id.at((*ambulance)->id()).Contains(46));
}

}  // namespace
}  // namespace most
