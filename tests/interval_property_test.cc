// Property-based tests for the interval algebra against a brute-force
// oracle. IntervalSet is the value type every FTL relation is built from,
// and the evaluator's byte-identity contract (legacy vs SoA layouts,
// serial vs parallel vs cached paths) leans on two algebraic facts that
// this suite checks exhaustively on randomized inputs:
//
//   1. the normalized representation is canonical — equal sets of ticks
//      have identical interval vectors, regardless of construction order;
//   2. every operation (Union, Intersect, Complement, Clamp, Shift,
//      DilateLeft, ErodeRight, UntilWith) computes exactly its
//      set-semantic definition, verified tick-by-tick against a
//      std::set<Tick> model over a bounded universe.
//
// The in-place fused transforms (ShiftClampInPlace & co., used by the hot
// unary temporal operators) are additionally checked for representation
// equality against the const chains they replace.
//
// Seeds are drawn through tests/test_seed.h: the log prints them and
// MOST_TEST_SEED=<n> replays a single seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/rng.h"
#include "test_seed.h"

namespace most {
namespace {

// Bounded universe for the oracle. Small enough that tick-by-tick
// comparison is cheap, large enough that shifts/dilations move intervals
// across both edges.
constexpr Tick kLo = -48;
constexpr Tick kHi = 48;

// Tick-set model of an IntervalSet, restricted to [kLo, kHi].
std::set<Tick> Model(const IntervalSet& s) {
  std::set<Tick> out;
  for (const Interval& iv : s.intervals()) {
    for (Tick t = std::max(iv.begin, kLo); t <= std::min(iv.end, kHi); ++t) {
      out.insert(t);
    }
  }
  return out;
}

// Truth of "t in s" including ticks outside the modeled universe.
bool OracleContains(const std::vector<Interval>& raw, Tick t) {
  for (const Interval& iv : raw) {
    if (iv.valid() && iv.begin <= t && t <= iv.end) return true;
  }
  return false;
}

// A random interval list: mixed valid/invalid/overlapping/adjacent, the
// worst diet for the normalizing constructors.
std::vector<Interval> RandomIntervals(Rng* rng) {
  std::vector<Interval> out;
  int n = static_cast<int>(rng->UniformInt(0, 6));
  for (int i = 0; i < n; ++i) {
    Tick a = rng->UniformInt(kLo, kHi);
    // Mostly valid short intervals; occasionally inverted (invalid, must
    // be dropped) or long (spans a big chunk of the universe).
    Tick b = rng->Bernoulli(0.1) ? a - rng->UniformInt(1, 4)
                                 : a + rng->UniformInt(0, 12);
    out.push_back(Interval(a, b));
  }
  return out;
}

IntervalSet RandomSet(Rng* rng) { return IntervalSet::FromIntervals(RandomIntervals(rng)); }

// The canonical-form invariants every IntervalSet must satisfy: valid
// intervals, strictly increasing, with at least a one-tick gap (adjacent
// intervals must have been merged).
void ExpectNormalized(const IntervalSet& s, const char* label) {
  const auto& ivs = s.intervals();
  for (size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_TRUE(ivs[i].valid()) << label;
    if (i > 0) {
      EXPECT_GT(ivs[i].begin, ivs[i - 1].end + 1)
          << label << ": intervals " << i - 1 << "/" << i
          << " overlap or touch in " << s.ToString();
    }
  }
}

void ExpectSameSet(const std::set<Tick>& want, const IntervalSet& got,
                   const char* label) {
  EXPECT_EQ(want, Model(got)) << label << ": " << got.ToString();
}

TEST(IntervalPropertyTest, OperationsMatchBruteForceOracle) {
  int cases = 0;
  std::vector<uint64_t> seeds =
      test::SuiteSeeds("IntervalProperty.Oracle", {1, 2, 3, 5, 2026});
  // >= 10k cases regardless of how many seeds the override left us.
  const int rounds = static_cast<int>(10500 / seeds.size()) + 1;
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
    for (int round = 0; round < rounds; ++round) {
      ++cases;
      std::vector<Interval> raw_a = RandomIntervals(&rng);
      IntervalSet a = IntervalSet::FromIntervals(raw_a);
      IntervalSet b = RandomSet(&rng);
      std::set<Tick> ma = Model(a);
      std::set<Tick> mb = Model(b);

      // Construction: normalization must preserve membership exactly and
      // produce the canonical form.
      ExpectNormalized(a, "FromIntervals");
      for (Tick t = kLo; t <= kHi; ++t) {
        ASSERT_EQ(OracleContains(raw_a, t), a.Contains(t))
            << "t=" << t << " set=" << a.ToString();
      }

      // Union / Intersect / Difference / Complement against the model.
      std::set<Tick> u;
      std::set_union(ma.begin(), ma.end(), mb.begin(), mb.end(),
                     std::inserter(u, u.begin()));
      ExpectSameSet(u, a.Union(b), "Union");
      std::set<Tick> inter;
      std::set_intersection(ma.begin(), ma.end(), mb.begin(), mb.end(),
                            std::inserter(inter, inter.begin()));
      ExpectSameSet(inter, a.Intersect(b), "Intersect");
      std::set<Tick> diff;
      std::set_difference(ma.begin(), ma.end(), mb.begin(), mb.end(),
                          std::inserter(diff, diff.begin()));
      ExpectSameSet(diff, a.Difference(b), "Difference");

      Interval universe(rng.UniformInt(kLo, 0), rng.UniformInt(0, kHi));
      std::set<Tick> comp;
      for (Tick t = universe.begin; t <= universe.end; ++t) {
        if (ma.count(t) == 0) comp.insert(t);
      }
      ExpectSameSet(comp, a.Complement(universe), "Complement");

      // Clamp == Intersect with the universe interval.
      std::set<Tick> clamped;
      for (Tick t : ma) {
        if (universe.begin <= t && t <= universe.end) clamped.insert(t);
      }
      ExpectSameSet(clamped, a.Clamp(universe), "Clamp");

      // Shift / DilateLeft / ErodeRight, semantics per the header: t in
      // Shift(d) iff t-d in a; t in DilateLeft(c) iff some tick of a is in
      // [t, t+c]; t in ErodeRight(c) iff [t, t+c] is all in a.
      Tick d = rng.UniformInt(-10, 10);
      IntervalSet shifted = a.Shift(d);
      // Only ticks whose preimage lies inside the modeled universe — the
      // random sets may extend slightly past kHi, which the model clips.
      for (Tick t = kLo; t <= kHi; ++t) {
        if (t - d < kLo || t - d > kHi) continue;
        ASSERT_EQ(ma.count(t - d) != 0, shifted.Contains(t))
            << "Shift t=" << t << " d=" << d << " a=" << a.ToString();
      }

      Tick c = rng.UniformInt(0, 10);
      std::set<Tick> dilated;
      for (Tick t = kLo; t <= kHi; ++t) {
        for (Tick w = t; w <= t + c; ++w) {
          if (ma.count(w) != 0) {
            dilated.insert(t);
            break;
          }
        }
      }
      // The oracle misses witnesses beyond kHi; restrict the comparison to
      // sets fully inside the modeled universe (RandomIntervals only
      // produces ticks in [kLo, kHi+12]; clamp the checked range instead).
      std::set<Tick> got_dilated = Model(a.DilateLeft(c));
      for (Tick t = kLo; t + c <= kHi; ++t) {
        ASSERT_EQ(dilated.count(t) != 0, got_dilated.count(t) != 0)
            << "DilateLeft t=" << t << " c=" << c << " a=" << a.ToString();
      }

      std::set<Tick> eroded;
      for (Tick t = kLo; t + c <= kHi; ++t) {
        bool all = true;
        for (Tick w = t; w <= t + c; ++w) {
          if (ma.count(w) == 0) {
            all = false;
            break;
          }
        }
        if (all) eroded.insert(t);
      }
      std::set<Tick> got_eroded = Model(a.ErodeRight(c));
      for (Tick t = kLo; t + c <= kHi; ++t) {
        ASSERT_EQ(eroded.count(t) != 0, got_eroded.count(t) != 0)
            << "ErodeRight t=" << t << " c=" << c << " a=" << a.ToString();
      }

      // Cardinality / FirstAtOrAfter agree with the model (sets here are
      // fully inside the modeled universe only when raw ends pre-clamp;
      // compare against the unrestricted intervals instead).
      Tick card = 0;
      for (const Interval& iv : a.intervals()) card += iv.length();
      EXPECT_EQ(card, a.Cardinality());
      Tick probe = rng.UniformInt(kLo, kHi);
      Tick first = 0;
      bool has = a.FirstAtOrAfter(probe, &first);
      auto it = ma.lower_bound(probe);
      // Model may truncate at kHi; only compare when the answer is inside.
      if (it != ma.end()) {
        EXPECT_TRUE(has);
        EXPECT_EQ(*it, first) << "FirstAtOrAfter(" << probe << ")";
      }
    }
  }
  EXPECT_GE(cases, 10000) << "property corpus shrank below spec";
}

// FromSortedIntervals must equal FromIntervals whenever its precondition
// (sorted by begin) holds — it is the constructor the SoA kernels use on
// their accumulated per-segment tick lists.
TEST(IntervalPropertyTest, FromSortedIntervalsMatchesFromIntervals) {
  int cases = 0;
  std::vector<uint64_t> seeds =
      test::SuiteSeeds("IntervalProperty.FromSorted", {11, 17});
  const int rounds = static_cast<int>(5200 / seeds.size()) + 1;
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
      ++cases;
      std::vector<Interval> ivs = RandomIntervals(&rng);
      std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
        return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
      });
      IntervalSet sorted = IntervalSet::FromSortedIntervals(ivs.data(), ivs.size());
      IntervalSet general = IntervalSet::FromIntervals(ivs);
      EXPECT_EQ(general.intervals(), sorted.intervals())
          << "sorted=" << sorted.ToString() << " general=" << general.ToString();
      ExpectNormalized(sorted, "FromSortedIntervals");
    }
  }
  EXPECT_GE(cases, 5000);
}

// The fused in-place transforms must be representation-identical to the
// const chains they replace in the unary temporal operators — this is the
// exact substitution the evaluator makes on its hot path.
TEST(IntervalPropertyTest, InPlaceTransformsMatchConstChains) {
  int cases = 0;
  std::vector<uint64_t> seeds =
      test::SuiteSeeds("IntervalProperty.InPlace", {23, 29, 31});
  const int rounds = static_cast<int>(10500 / seeds.size()) + 1;
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    for (int round = 0; round < rounds; ++round) {
      ++cases;
      IntervalSet a = RandomSet(&rng);
      Interval universe(rng.UniformInt(kLo, 0), rng.UniformInt(-4, kHi));
      Tick d = rng.UniformInt(-12, 12);
      Tick c = rng.UniformInt(0, 12);

      IntervalSet shift = a;
      shift.ShiftClampInPlace(d, universe);
      EXPECT_EQ(a.Shift(d).Clamp(universe).intervals(), shift.intervals())
          << "ShiftClampInPlace d=" << d << " a=" << a.ToString();

      IntervalSet dilate = a;
      dilate.DilateLeftClampInPlace(c, universe);
      EXPECT_EQ(a.DilateLeft(c).Clamp(universe).intervals(),
                dilate.intervals())
          << "DilateLeftClampInPlace c=" << c << " a=" << a.ToString();

      IntervalSet erode = a;
      erode.ErodeRightClampInPlace(c, universe);
      EXPECT_EQ(a.ErodeRight(c).Clamp(universe).intervals(),
                erode.intervals())
          << "ErodeRightClampInPlace c=" << c << " a=" << a.ToString();

      // Saturation edges: the same checks with interval ends near the tick
      // extremes, where TickSaturatingAdd clamps.
      IntervalSet extreme = IntervalSet::FromIntervals(
          {Interval(kTickMin + rng.UniformInt(0, 2), kTickMin + 20),
           Interval(kTickMax - 20, kTickMax - rng.UniformInt(0, 2))});
      IntervalSet x1 = extreme;
      x1.ShiftClampInPlace(d, universe);
      EXPECT_EQ(extreme.Shift(d).Clamp(universe).intervals(), x1.intervals());
      IntervalSet x2 = extreme;
      x2.DilateLeftClampInPlace(c, Interval(kTickMin, kTickMax));
      EXPECT_EQ(extreme.DilateLeft(c).Clamp(Interval(kTickMin, kTickMax)).intervals(),
                x2.intervals());
    }
  }
  EXPECT_GE(cases, 10000);
}

// UntilWith against a brute-force model of the Until semantics: t is in
// g2.UntilWith(g1, bound) iff some witness t' in g2 exists with
// t <= t' <= t+bound and g1 covering every tick of [t, t'-1].
TEST(IntervalPropertyTest, UntilWithMatchesBruteForceSemantics) {
  int cases = 0;
  std::vector<uint64_t> seeds =
      test::SuiteSeeds("IntervalProperty.Until", {41, 43});
  const int rounds = static_cast<int>(3200 / seeds.size()) + 1;
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 2654435761ULL + 9);
    for (int round = 0; round < rounds; ++round) {
      ++cases;
      IntervalSet g2 = RandomSet(&rng);
      IntervalSet g1 = RandomSet(&rng);
      Tick bound = rng.Bernoulli(0.3) ? kTickMax : rng.UniformInt(0, 20);
      std::set<Tick> m1 = Model(g1);
      std::set<Tick> m2 = Model(g2);
      IntervalSet until = g2.UntilWith(g1, bound);
      ExpectNormalized(until, "UntilWith");
      // Restrict to ticks whose whole witness range stays in the modeled
      // universe (witnesses at most 32 ticks away exist in these inputs).
      for (Tick t = kLo; t <= kHi - 33; ++t) {
        bool want = false;
        Tick max_w = bound >= kHi ? kHi : t + bound;
        for (Tick w = t; w <= max_w && w <= kHi; ++w) {
          if (m2.count(w) == 0) continue;
          bool covered = true;
          for (Tick u = t; u < w; ++u) {
            if (m1.count(u) == 0) {
              covered = false;
              break;
            }
          }
          if (covered) {
            want = true;
            break;
          }
        }
        ASSERT_EQ(want, until.Contains(t))
            << "Until t=" << t << " bound=" << bound
            << "\ng2=" << g2.ToString() << "\ng1=" << g1.ToString()
            << "\nresult=" << until.ToString();
      }
    }
  }
  EXPECT_GE(cases, 3000);
}

}  // namespace
}  // namespace most
