// Fuzz harness for the FTL parser + evaluator, libFuzzer entry-point
// style: the input bytes are an FTL query source string. Everything that
// parses is evaluated twice — legacy (AoS) layout and SoA layout — and the
// two relations must be byte-identical with matching status codes; any
// divergence or crash/sanitizer report is a finding.
//
// This toolchain has no -fsanitize=fuzzer driver (gcc), so the harness
// always compiles with a standalone replay main(): it runs every corpus
// file/directory passed on the command line, then a bounded deterministic
// mutation loop (--mutate N, seeded by MOST_TEST_SEED or 1) over the
// corpus. ci.sh runs exactly that as the fuzz smoke stage under ASan.
// With a clang libFuzzer toolchain, define MOST_FUZZ_HAVE_LIBFUZZER to
// drop the main() and link -fsanitize=fuzzer instead.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/object_model.h"
#include "ftl/eval.h"
#include "ftl/parser.h"
#include "geometry/polygon.h"

namespace {

using namespace most;

// One deterministic world shared by every input: a spatial class M (with a
// FUEL attribute so assignment/compare formulas bind), a second class N,
// and four regions with the names the seed corpus uses. Coordinates are
// grid-snapped; motions include stationary, linear and piecewise routes.
MostDatabase* World() {
  static MostDatabase* db = [] {
    auto* d = new MostDatabase();
    (void)d->CreateClass("M", {{"FUEL", true, ValueType::kNull}}, true);
    (void)d->CreateClass("N", {}, true);
    (void)d->DefineRegion("R1", Polygon::Rectangle({-10, -10}, {5, 5}));
    (void)d->DefineRegion("R2", Polygon::Rectangle({0, 0}, {15, 12}));
    (void)d->DefineRegion("P", Polygon::Rectangle({2, 2}, {8, 8}));
    (void)d->DefineRegion("Q", *Polygon::Create({{0, 0}, {6, 0}, {3, 6}}));
    const double pos[5][2] = {{-4, -4}, {0, 0}, {3, 3}, {12, 1}, {-8, 6}};
    const double vel[5][2] = {{1, 0.5}, {0, 0}, {-0.5, 0.25}, {-1, 1}, {0.5, 0}};
    for (int i = 0; i < 5; ++i) {
      auto obj = d->CreateObject("M");
      if (!obj.ok()) std::abort();
      ObjectId id = (*obj)->id();
      (void)d->SetMotion("M", id, {pos[i][0], pos[i][1]},
                         {vel[i][0], vel[i][1]});
      (void)d->UpdateDynamic("M", id, "FUEL", 50.0 + 5.0 * i,
                             TimeFunction::Linear(-0.25 * i));
    }
    for (int i = 0; i < 2; ++i) {
      auto obj = d->CreateObject("N");
      if (!obj.ok()) std::abort();
      (void)d->SetMotion("N", (*obj)->id(), {2.0 * i, -1.0 * i}, {0.25, 0.5});
    }
    return d;
  }();
  return db;
}

void DieOnDivergence(const char* what, const std::string& query_text) {
  std::fprintf(stderr, "layout divergence (%s) on input:\n%s\n", what,
               query_text.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > 2048) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);
  auto query = ParseQuery(text);
  if (!query.ok()) return 0;  // Parse rejection is fine; crashes are not.

  MostDatabase* db = World();
  const Interval window(0, 24);

  FtlEvaluator::Options legacy_opts;
  legacy_opts.layout = EvalLayout::kLegacy;
  FtlEvaluator legacy(*db, legacy_opts);
  auto legacy_rel = legacy.EvaluateQuery(*query, window);

  FtlEvaluator::Options soa_opts;
  soa_opts.layout = EvalLayout::kSoa;
  FtlEvaluator soa(*db, soa_opts);
  auto soa_rel = soa.EvaluateQuery(*query, window);

  if (legacy_rel.ok() != soa_rel.ok()) DieOnDivergence("status", text);
  if (legacy_rel.ok()) {
    if (legacy_rel->vars != soa_rel->vars) DieOnDivergence("vars", text);
    if (legacy_rel->rows != soa_rel->rows) DieOnDivergence("rows", text);
  } else if (legacy_rel.status().code() != soa_rel.status().code()) {
    DieOnDivergence("status code", text);
  }
  return 0;
}

#ifndef MOST_FUZZ_HAVE_LIBFUZZER

namespace {

std::vector<std::string> CollectInputs(int argc, char** argv,
                                       size_t* mutations) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
      *mutations = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& e : std::filesystem::directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else {
      files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());  // Deterministic replay order.
  return files;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

}  // namespace

// Standalone driver: replay corpus inputs, then a bounded deterministic
// mutation loop. Exits non-zero only on harness misuse; divergences abort.
int main(int argc, char** argv) {
  size_t mutations = 0;
  std::vector<std::string> files = CollectInputs(argc, argv, &mutations);
  if (files.empty() && mutations == 0) {
    std::fprintf(stderr,
                 "usage: %s [--mutate N] <corpus file or dir>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::string> corpus;
  for (const std::string& f : files) {
    corpus.push_back(ReadFile(f));
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(corpus.back().data()),
        corpus.back().size());
  }
  std::printf("replayed %zu corpus inputs\n", corpus.size());

  if (mutations > 0 && !corpus.empty()) {
    uint64_t state = 1;
    if (const char* env = std::getenv("MOST_TEST_SEED")) {
      state = std::strtoull(env, nullptr, 10) | 1;
    }
    std::printf("mutation loop: %zu rounds, seed=%llu\n", mutations,
                static_cast<unsigned long long>(state));
    auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    for (size_t i = 0; i < mutations; ++i) {
      std::string input = corpus[next() % corpus.size()];
      switch (next() % 4) {
        case 0:  // Flip a byte.
          if (!input.empty()) {
            input[next() % input.size()] ^= static_cast<char>(next() & 0xFF);
          }
          break;
        case 1:  // Truncate.
          if (!input.empty()) input.resize(next() % input.size());
          break;
        case 2:  // Splice two corpus entries.
          if (!input.empty()) {
            const std::string& other = corpus[next() % corpus.size()];
            input = input.substr(0, next() % input.size()) + other;
          }
          break;
        default:  // Insert a token-ish fragment.
          static const char* kFragments[] = {
              " AND ", " OR ", " NOT ", " UNTIL ", " EVENTUALLY ",
              " ALWAYS FOR 3 ", " WITHIN ", " DIST(o, n) ", " INSIDE(o, P) ",
              "(", ")", " 999999999999 ", " -1 ", "\x00\xff"};
          size_t at = input.empty() ? 0 : next() % input.size();
          input.insert(at, kFragments[next() % std::size(kFragments)]);
      }
      LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                             input.size());
    }
    std::printf("mutation loop done\n");
  }
  return 0;
}

#endif  // MOST_FUZZ_HAVE_LIBFUZZER
