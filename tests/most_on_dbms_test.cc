#include "core/most_on_dbms.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace most {
namespace {

TEST(TimeFunctionCodecTest, RoundTrips) {
  std::vector<TimeFunction> functions = {
      TimeFunction(),
      TimeFunction::Linear(2.5),
      TimeFunction::Linear(-0.125),
      *TimeFunction::Piecewise({{0, 1.0}, {10, -2.0}, {20, 0.0}}),
  };
  TimeFunction::Piece reset_piece{5, 1.0, true, 42.5};
  functions.push_back(
      *TimeFunction::Piecewise({{0, 0.5}, reset_piece}));
  for (const TimeFunction& f : functions) {
    auto decoded = DecodeTimeFunction(EncodeTimeFunction(f));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(f == *decoded) << EncodeTimeFunction(f);
  }
}

TEST(TimeFunctionCodecTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeTimeFunction("").ok());
  EXPECT_FALSE(DecodeTimeFunction("abc").ok());
  EXPECT_FALSE(DecodeTimeFunction("0").ok());
  EXPECT_FALSE(DecodeTimeFunction("0:x").ok());
  EXPECT_FALSE(DecodeTimeFunction("5:1.0").ok());  // First piece not at 0.
}

class MostOnDbmsTest : public ::testing::Test {
 protected:
  MostOnDbmsTest() : most_(&db_, &clock_) {
    // CARS(PLATE static, POS dynamic, PRICE static).
    EXPECT_TRUE(most_
                    .CreateTable("CARS",
                                 {{"PLATE", false, ValueType::kString},
                                  {"POS", true, ValueType::kNull},
                                  {"PRICE", false, ValueType::kDouble}})
                    .ok());
  }

  RowId AddCar(const char* plate, double pos, double speed, double price) {
    auto rid = most_.Insert(
        "CARS", {{"PLATE", Value(plate)}, {"PRICE", Value(price)}},
        {{"POS", DynamicAttribute(pos, clock_.Now(),
                                  TimeFunction::Linear(speed))}});
    EXPECT_TRUE(rid.ok()) << rid.status();
    return rid.value();
  }

  Database db_;
  Clock clock_;
  MostOnDbms most_;
};

TEST_F(MostOnDbmsTest, DynamicAttributeStoredAsThreeColumns) {
  AddCar("A", 0.0, 2.0, 10.0);
  auto host = db_.GetTable("CARS");
  ASSERT_TRUE(host.ok());
  const Schema& s = (*host)->schema();
  EXPECT_TRUE(s.HasColumn("POS.value"));
  EXPECT_TRUE(s.HasColumn("POS.updatetime"));
  EXPECT_TRUE(s.HasColumn("POS.function"));
  EXPECT_TRUE(s.HasColumn("PLATE"));
  EXPECT_FALSE(s.HasColumn("POS"));
}

TEST_F(MostOnDbmsTest, ReadDynamicDependsOnQueryTime) {
  RowId car = AddCar("A", 100.0, 3.0, 10.0);
  EXPECT_DOUBLE_EQ(most_.ReadDynamic("CARS", car, "POS").value(), 100.0);
  clock_.Advance(10);
  // No update happened, yet the answer changed.
  EXPECT_DOUBLE_EQ(most_.ReadDynamic("CARS", car, "POS").value(), 130.0);
}

TEST_F(MostOnDbmsTest, SelectWithDynamicColumnInProjection) {
  AddCar("A", 0.0, 1.0, 10.0);
  AddCar("B", 50.0, -1.0, 20.0);
  clock_.Advance(5);
  SelectQuery q{.table = "CARS", .where = nullptr, .project = {"PLATE", "POS"}};
  auto rs = most_.ExecuteSelect(q);
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][1], Value(5.0));
  EXPECT_EQ(rs->rows[1][1], Value(45.0));
}

TEST_F(MostOnDbmsTest, DynamicAtomInWhereClause) {
  AddCar("A", 0.0, 1.0, 10.0);   // POS(20) = 20.
  AddCar("B", 100.0, 0.0, 20.0); // POS(20) = 100.
  clock_.Advance(20);
  SelectQuery q{.table = "CARS",
                .where = Expr::Compare(Expr::CmpOp::kLe, Expr::Column("POS"),
                                       Expr::Literal(Value(50.0))),
                .project = {"PLATE"}};
  QueryStats stats;
  auto rs = most_.ExecuteSelect(q, &stats);
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value("A"));
  // One dynamic atom -> 2^1 host queries.
  EXPECT_EQ(stats.queries_executed, 2u);
}

TEST_F(MostOnDbmsTest, MixedStaticAndDynamicAtoms) {
  AddCar("A", 0.0, 1.0, 10.0);
  AddCar("B", 0.0, 1.0, 200.0);
  AddCar("C", 500.0, 0.0, 10.0);
  clock_.Advance(20);
  // POS <= 50 AND PRICE <= 100: only A.
  auto where = Expr::And(
      Expr::Compare(Expr::CmpOp::kLe, Expr::Column("POS"),
                    Expr::Literal(Value(50.0))),
      Expr::Compare(Expr::CmpOp::kLe, Expr::Column("PRICE"),
                    Expr::Literal(Value(100.0))));
  SelectQuery q{.table = "CARS", .where = where, .project = {"PLATE"}};
  auto rs = most_.ExecuteSelect(q);
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value("A"));
}

TEST_F(MostOnDbmsTest, DisjunctionAcrossDynamicAtoms) {
  AddCar("A", 0.0, 1.0, 10.0);    // POS(10) = 10.
  AddCar("B", 100.0, 2.0, 20.0);  // POS(10) = 120.
  clock_.Advance(10);
  // POS < 50 OR POS > 110 -> both.
  auto where = Expr::Or(
      Expr::Compare(Expr::CmpOp::kLt, Expr::Column("POS"),
                    Expr::Literal(Value(50.0))),
      Expr::Compare(Expr::CmpOp::kGt, Expr::Column("POS"),
                    Expr::Literal(Value(110.0))));
  SelectQuery q{.table = "CARS", .where = where, .project = {"PLATE"}};
  QueryStats stats;
  auto rs = most_.ExecuteSelect(q, &stats);
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows.size(), 2u);
  // Two distinct dynamic atoms -> 4 host queries.
  EXPECT_EQ(stats.queries_executed, 4u);
}

TEST_F(MostOnDbmsTest, RepeatedAtomCountedOnce) {
  auto p = Expr::Compare(Expr::CmpOp::kLe, Expr::Column("POS"),
                         Expr::Literal(Value(50.0)));
  auto where = Expr::Or(Expr::And(p, Expr::Compare(Expr::CmpOp::kGe,
                                                   Expr::Column("PRICE"),
                                                   Expr::Literal(Value(0.0)))),
                        Expr::Not(p));
  EXPECT_EQ(most_.CountDynamicAtoms("CARS", where).value(), 1u);
}

TEST_F(MostOnDbmsTest, UpdateDynamicChangesTrajectory) {
  RowId car = AddCar("A", 0.0, 1.0, 10.0);
  clock_.Advance(10);
  // Stop the car at its current position.
  ASSERT_TRUE(most_.UpdateDynamic("CARS", car, "POS", 10.0, TimeFunction())
                  .ok());
  clock_.Advance(10);
  EXPECT_DOUBLE_EQ(most_.ReadDynamic("CARS", car, "POS").value(), 10.0);
  // Updating a static column through the dynamic API fails and vice versa.
  EXPECT_FALSE(most_.UpdateDynamic("CARS", car, "PLATE", 0, TimeFunction())
                   .ok());
  EXPECT_FALSE(most_.UpdateStatic("CARS", car, "POS", Value(1.0)).ok());
  EXPECT_TRUE(most_.UpdateStatic("CARS", car, "PRICE", Value(99.0)).ok());
}

TEST_F(MostOnDbmsTest, BranchPruningSkipsImpossibleBranches) {
  AddCar("A", 0.0, 1.0, 10.0);   // POS(20) = 20.
  AddCar("B", 100.0, 0.0, 20.0);
  clock_.Advance(20);
  // Conjunctive WHERE with two dynamic atoms: the pure 2^k decomposition
  // runs 4 host queries, but 3 branches contain a FALSE conjunct.
  auto where = Expr::And(
      Expr::Compare(Expr::CmpOp::kLe, Expr::Column("POS"),
                    Expr::Literal(Value(50.0))),
      Expr::Compare(Expr::CmpOp::kGe, Expr::Column("POS"),
                    Expr::Literal(Value(10.0))));
  SelectQuery q{.table = "CARS", .where = where, .project = {"PLATE"}};

  QueryStats plain, pruned;
  auto rs_plain = most_.ExecuteSelect(q, &plain);
  auto rs_pruned = most_.ExecuteSelect(q, &pruned,
                                       {.prune_trivial_branches = true});
  ASSERT_TRUE(rs_plain.ok());
  ASSERT_TRUE(rs_pruned.ok());
  ASSERT_EQ(rs_plain->rows.size(), 1u);
  ASSERT_EQ(rs_pruned->rows.size(), 1u);
  EXPECT_EQ(rs_plain->rows[0][0], rs_pruned->rows[0][0]);
  EXPECT_EQ(plain.queries_executed, 4u);
  EXPECT_EQ(plain.branches_pruned, 0u);
  EXPECT_EQ(pruned.queries_executed, 1u);
  EXPECT_EQ(pruned.branches_pruned, 3u);
}

TEST_F(MostOnDbmsTest, IndexedSelectMatchesDecomposition) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    AddCar(("car" + std::to_string(i)).c_str(), rng.UniformDouble(-100, 100),
           rng.UniformDouble(-2, 2), rng.UniformDouble(10, 200));
  }
  ASSERT_TRUE(most_.CreateDynamicIndex("CARS", "POS", {256, 16}).ok());
  clock_.Advance(50);

  auto where = Expr::And(
      Expr::Compare(Expr::CmpOp::kLe, Expr::Column("POS"),
                    Expr::Literal(Value(20.0))),
      Expr::Compare(Expr::CmpOp::kGe, Expr::Column("POS"),
                    Expr::Literal(Value(-20.0))));
  SelectQuery q{.table = "CARS", .where = where, .project = {"PLATE"}};

  QueryStats plain_stats, indexed_stats;
  auto plain = most_.ExecuteSelect(q, &plain_stats);
  auto indexed = most_.ExecuteSelect(q, &indexed_stats,
                                     {.use_dynamic_index = true});
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_TRUE(indexed.ok()) << indexed.status();

  auto names = [](const ResultSet& rs) {
    std::vector<std::string> out;
    for (const Row& r : rs.rows) out.push_back(r[0].string_value());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(names(*plain), names(*indexed));
  EXPECT_FALSE(names(*plain).empty());
  EXPECT_TRUE(indexed_stats.used_index);
  // The index examined only candidates, not all 200 rows.
  EXPECT_LT(indexed_stats.rows_examined, 200u);
}

TEST_F(MostOnDbmsTest, IndexSurvivesHorizonRebuild) {
  RowId car = AddCar("A", 0.0, 1.0, 10.0);
  ASSERT_TRUE(most_.CreateDynamicIndex("CARS", "POS", {64, 8}).ok());
  clock_.Advance(300);  // Far past the 64-tick horizon.
  auto where = Expr::Compare(Expr::CmpOp::kGe, Expr::Column("POS"),
                             Expr::Literal(Value(299.0)));
  SelectQuery q{.table = "CARS", .where = where, .project = {"PLATE"}};
  auto rs = most_.ExecuteSelect(q, nullptr, {.use_dynamic_index = true});
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  (void)car;
}

TEST_F(MostOnDbmsTest, DeleteRemovesFromIndex) {
  RowId car = AddCar("A", 5.0, 0.0, 10.0);
  ASSERT_TRUE(most_.CreateDynamicIndex("CARS", "POS", {256, 8}).ok());
  ASSERT_TRUE(most_.Delete("CARS", car).ok());
  auto where = Expr::Compare(Expr::CmpOp::kEq, Expr::Column("POS"),
                             Expr::Literal(Value(5.0)));
  SelectQuery q{.table = "CARS", .where = where, .project = {"PLATE"}};
  auto rs = most_.ExecuteSelect(q, nullptr, {.use_dynamic_index = true});
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
  EXPECT_FALSE(most_.ReadDynamic("CARS", car, "POS").ok());
}

// Property test: decomposition must agree with direct evaluation of the
// logical predicate on every row, for random predicates over k atoms.
class DecompositionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecompositionPropertyTest, MatchesDirectEvaluation) {
  Rng rng(GetParam());
  Database db;
  Clock clock;
  MostOnDbms most(&db, &clock);
  ASSERT_TRUE(most.CreateTable("T", {{"ID", false, ValueType::kInt},
                                     {"D1", true, ValueType::kNull},
                                     {"D2", true, ValueType::kNull},
                                     {"S", false, ValueType::kDouble}})
                  .ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        most.Insert("T",
                    {{"ID", Value(i)}, {"S", Value(rng.UniformDouble(0, 100))}},
                    {{"D1", DynamicAttribute(rng.UniformDouble(-50, 50), 0,
                                             TimeFunction::Linear(
                                                 rng.UniformDouble(-2, 2)))},
                     {"D2", DynamicAttribute(rng.UniformDouble(-50, 50), 0,
                                             TimeFunction::Linear(
                                                 rng.UniformDouble(-2, 2)))}})
            .ok());
  }
  clock.Advance(rng.UniformInt(1, 40));

  auto random_atom = [&](const char* col, double lo, double hi) {
    auto op = static_cast<Expr::CmpOp>(rng.UniformInt(0, 5));
    return Expr::Compare(op, Expr::Column(col),
                         Expr::Literal(Value(rng.UniformDouble(lo, hi))));
  };
  for (int round = 0; round < 20; ++round) {
    // Random boolean combination over D1, D2, S atoms.
    ExprPtr a = random_atom("D1", -100, 100);
    ExprPtr b = random_atom("D2", -100, 100);
    ExprPtr c = random_atom("S", 0, 100);
    ExprPtr where;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        where = Expr::And(a, Expr::Or(b, c));
        break;
      case 1:
        where = Expr::Or(Expr::And(a, c), Expr::Not(b));
        break;
      case 2:
        where = Expr::Or(a, Expr::And(b, Expr::Not(c)));
        break;
      default:
        where = Expr::And(Expr::Not(a), Expr::Or(b, c));
        break;
    }
    SelectQuery q{.table = "T", .where = where, .project = {"ID"}};
    auto rs = most.ExecuteSelect(q);
    ASSERT_TRUE(rs.ok()) << rs.status();
    std::set<int64_t> got;
    for (const Row& r : rs->rows) got.insert(r[0].int_value());

    // Oracle: evaluate the logical predicate directly per row.
    std::set<int64_t> want;
    auto host = db.GetTable("T");
    ASSERT_TRUE(host.ok());
    const Schema& schema = (*host)->schema();
    Status oracle_status = Status::OK();
    (*host)->Scan([&](RowId rid, const Row& row) {
      if (!oracle_status.ok()) return;
      // Compute current values of D1/D2 and build a logical row.
      auto eval_col = [&](const char* name) {
        return most.ReadDynamic("T", rid, name).value();
      };
      // Substitute into the expression by building an augmented schema: we
      // reuse the public API instead: direct recursive evaluation.
      std::function<Result<Value>(const ExprPtr&)> eval =
          [&](const ExprPtr& e) -> Result<Value> {
        switch (e->kind()) {
          case Expr::Kind::kLiteral:
            return e->literal();
          case Expr::Kind::kColumn:
            if (e->column() == "D1" || e->column() == "D2") {
              return Value(eval_col(e->column().c_str()));
            }
            {
              MOST_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(e->column()));
              return row[idx];
            }
          case Expr::Kind::kCompare: {
            MOST_ASSIGN_OR_RETURN(Value l, eval(e->children()[0]));
            MOST_ASSIGN_OR_RETURN(Value r, eval(e->children()[1]));
            int cp = l.Compare(r);
            switch (e->cmp_op()) {
              case Expr::CmpOp::kEq:
                return Value(cp == 0);
              case Expr::CmpOp::kNe:
                return Value(cp != 0);
              case Expr::CmpOp::kLt:
                return Value(cp < 0);
              case Expr::CmpOp::kLe:
                return Value(cp <= 0);
              case Expr::CmpOp::kGt:
                return Value(cp > 0);
              case Expr::CmpOp::kGe:
                return Value(cp >= 0);
            }
            return Status::Internal("bad op");
          }
          case Expr::Kind::kAnd: {
            MOST_ASSIGN_OR_RETURN(Value l, eval(e->children()[0]));
            if (!l.bool_value()) return Value(false);
            return eval(e->children()[1]);
          }
          case Expr::Kind::kOr: {
            MOST_ASSIGN_OR_RETURN(Value l, eval(e->children()[0]));
            if (l.bool_value()) return Value(true);
            return eval(e->children()[1]);
          }
          case Expr::Kind::kNot: {
            MOST_ASSIGN_OR_RETURN(Value v, eval(e->children()[0]));
            return Value(!v.bool_value());
          }
          default:
            return Status::Internal("unexpected kind");
        }
      };
      Result<Value> v = eval(where);
      if (!v.ok()) {
        oracle_status = v.status();
        return;
      }
      if (v->bool_value()) {
        auto idx = schema.IndexOf("ID");
        want.insert(row[idx.value()].int_value());
      }
    });
    ASSERT_TRUE(oracle_status.ok()) << oracle_status;
    EXPECT_EQ(got, want) << "round " << round << " where "
                         << where->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionPropertyTest,
                         ::testing::Values(1, 2, 3, 1997));

}  // namespace
}  // namespace most
