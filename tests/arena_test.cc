// Unit tests for the per-evaluation bump arena behind the SoA snapshots
// and join scratch (src/common/arena.h). The properties the evaluator
// depends on: alignment, block reuse across Reset() (steady state stops
// touching malloc), oversize requests degrading to counted heap
// fallbacks, and per-cycle vs lifetime stats.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/arena.h"

namespace most {
namespace {

TEST(BumpArenaTest, AllocationsAreAlignedAndDisjoint) {
  // Alignment is relative to the new[]-allocated block base, so the
  // supported range is 1..alignof(std::max_align_t) — the widest any
  // arena-backed container in the evaluator requests.
  BumpArena arena(1024);
  char* a = static_cast<char*>(arena.Allocate(13, 1));
  char* b = static_cast<char*>(arena.Allocate(16, 8));
  char* c = static_cast<char*>(arena.Allocate(1, alignof(std::max_align_t)));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % alignof(std::max_align_t), 0u);
  // Writes through one pointer must not clobber the others.
  std::memset(a, 0xAA, 13);
  std::memset(b, 0xBB, 16);
  std::memset(c, 0xCC, 1);
  EXPECT_EQ(static_cast<unsigned char>(a[0]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[15]), 0xBB);
  EXPECT_EQ(static_cast<unsigned char>(c[0]), 0xCC);
  EXPECT_GE(arena.stats().bytes_allocated, 13u + 16u + 1u);
}

TEST(BumpArenaTest, ResetRetainsBlocksAndZeroesCycleStats) {
  BumpArena arena(256);
  // Force several blocks.
  for (int i = 0; i < 10; ++i) (void)arena.Allocate(200);
  BumpArena::Stats before = arena.stats();
  EXPECT_GT(before.block_count, 1u);
  EXPECT_EQ(before.bytes_allocated, 2000u);
  EXPECT_EQ(before.heap_fallbacks, 0u);

  arena.Reset();
  BumpArena::Stats after = arena.stats();
  // Per-cycle stats reset; reserved capacity and blocks retained for reuse.
  EXPECT_EQ(after.bytes_allocated, 0u);
  EXPECT_EQ(after.heap_fallbacks, 0u);
  EXPECT_EQ(after.block_count, before.block_count);
  EXPECT_EQ(after.bytes_reserved, before.bytes_reserved);
  // Lifetime counters survive the reset.
  EXPECT_EQ(after.lifetime_bytes, before.lifetime_bytes);

  // The next cycle reuses the retained blocks: reserved bytes must not
  // grow when the same demand is replayed.
  for (int i = 0; i < 10; ++i) (void)arena.Allocate(200);
  EXPECT_EQ(arena.stats().bytes_reserved, before.bytes_reserved);
  EXPECT_EQ(arena.stats().lifetime_bytes, before.lifetime_bytes + 2000u);
}

TEST(BumpArenaTest, FirstAllocationOfACycleReusesTheFirstBlock) {
  BumpArena arena(512);
  void* first = arena.Allocate(64);
  arena.Reset();
  void* again = arena.Allocate(64);
  EXPECT_EQ(first, again) << "reset must rewind to the first retained block";
}

TEST(BumpArenaTest, OversizeRequestsFallBackToDedicatedBlocks) {
  BumpArena arena(128);
  void* big = arena.Allocate(4096);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 4096);
  BumpArena::Stats s = arena.stats();
  EXPECT_EQ(s.heap_fallbacks, 1u);
  EXPECT_EQ(s.lifetime_heap_fallbacks, 1u);
  EXPECT_GE(s.bytes_reserved, 4096u);

  // Oversize blocks are returned on reset, not pooled.
  arena.Reset();
  EXPECT_EQ(arena.stats().heap_fallbacks, 0u);
  EXPECT_EQ(arena.stats().lifetime_heap_fallbacks, 1u);
  EXPECT_LT(arena.stats().bytes_reserved, 4096u);
}

TEST(BumpArenaTest, ZeroByteAllocationsAreNonNull) {
  BumpArena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(ArenaAllocatorTest, VectorGrowsThroughArenaAndSurvivesReuse) {
  BumpArena arena(1024);
  {
    ArenaVector<int> v{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 200; ++i) v.push_back(i);
    for (int i = 0; i < 200; ++i) ASSERT_EQ(v[i], i);
    EXPECT_GT(arena.stats().bytes_allocated, 200u * sizeof(int));
  }
  // Vector destroyed (deallocate is a no-op) — the arena reclaims in bulk.
  arena.Reset();
  EXPECT_EQ(arena.stats().bytes_allocated, 0u);
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  ArenaVector<int> v;  // Default allocator: no arena, plain heap.
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
}

}  // namespace
}  // namespace most
