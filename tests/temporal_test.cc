#include <gtest/gtest.h>

#include "temporal/clock.h"
#include "temporal/dynamic_attribute.h"
#include "temporal/time_function.h"

namespace most {
namespace {

TEST(TimeFunctionTest, ZeroFunction) {
  TimeFunction f;
  EXPECT_DOUBLE_EQ(f.Eval(0), 0.0);
  EXPECT_DOUBLE_EQ(f.Eval(100), 0.0);
  EXPECT_DOUBLE_EQ(f.SlopeAt(50), 0.0);
  EXPECT_TRUE(f.IsLinear());
}

TEST(TimeFunctionTest, LinearEval) {
  TimeFunction f = TimeFunction::Linear(5.0);
  EXPECT_DOUBLE_EQ(f.Eval(0), 0.0);
  EXPECT_DOUBLE_EQ(f.Eval(3), 15.0);
  EXPECT_DOUBLE_EQ(f.Eval(-2), -10.0);  // Backward extrapolation.
  EXPECT_DOUBLE_EQ(f.SlopeAt(7), 5.0);
}

TEST(TimeFunctionTest, PiecewiseValidation) {
  EXPECT_FALSE(TimeFunction::Piecewise({}).ok());
  EXPECT_FALSE(TimeFunction::Piecewise({{5, 1.0}}).ok());  // Must start at 0.
  EXPECT_FALSE(
      TimeFunction::Piecewise({{0, 1.0}, {3, 2.0}, {3, 4.0}}).ok());
  EXPECT_TRUE(TimeFunction::Piecewise({{0, 1.0}, {3, 2.0}}).ok());
}

TEST(TimeFunctionTest, PiecewiseEvalIsContinuous) {
  // Slope 2 for t in [0,5), slope -1 afterwards.
  auto f = TimeFunction::Piecewise({{0, 2.0}, {5, -1.0}});
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->Eval(0), 0.0);
  EXPECT_DOUBLE_EQ(f->Eval(5), 10.0);
  EXPECT_DOUBLE_EQ(f->Eval(7), 8.0);
  EXPECT_DOUBLE_EQ(f->Eval(4.5), 9.0);
  EXPECT_DOUBLE_EQ(f->SlopeAt(4.5), 2.0);
  EXPECT_DOUBLE_EQ(f->SlopeAt(5.0), -1.0);
  EXPECT_DOUBLE_EQ(f->SlopeAt(100), -1.0);
}

TEST(TimeFunctionTest, ValueAtPieceStart) {
  auto f = TimeFunction::Piecewise({{0, 2.0}, {5, -1.0}, {10, 0.5}});
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->ValueAtPieceStart(0), 0.0);
  EXPECT_DOUBLE_EQ(f->ValueAtPieceStart(1), 10.0);
  EXPECT_DOUBLE_EQ(f->ValueAtPieceStart(2), 5.0);
}

TEST(DynamicAttributeTest, PaperExampleSpeedFive) {
  // Paper Section 2.3: X.POSITION changes according to 5t.
  DynamicAttribute x(0.0, 0, TimeFunction::Linear(5.0));
  EXPECT_DOUBLE_EQ(x.ValueAt(Tick{0}), 0.0);
  EXPECT_DOUBLE_EQ(x.ValueAt(Tick{2}), 10.0);
  EXPECT_DOUBLE_EQ(x.SlopeAt(2), 5.0);
}

TEST(DynamicAttributeTest, ValueChangesWithoutExplicitUpdate) {
  // The defining property of a dynamic attribute: two queries at different
  // times see different values with no intervening update.
  DynamicAttribute a(100.0, 50, TimeFunction::Linear(2.0));
  EXPECT_DOUBLE_EQ(a.ValueAt(Tick{50}), 100.0);
  EXPECT_DOUBLE_EQ(a.ValueAt(Tick{60}), 120.0);
  EXPECT_DOUBLE_EQ(a.ValueAt(Tick{55}), 110.0);
}

TEST(DynamicAttributeTest, UpdateReplacesSubAttributes) {
  DynamicAttribute a(0.0, 0, TimeFunction::Linear(5.0));
  a.Update(/*now=*/10, /*new_value=*/a.ValueAt(Tick{10}),
           TimeFunction::Linear(7.0));
  EXPECT_DOUBLE_EQ(a.value(), 50.0);
  EXPECT_EQ(a.updatetime(), 10);
  EXPECT_DOUBLE_EQ(a.ValueAt(Tick{12}), 64.0);
  EXPECT_DOUBLE_EQ(a.SlopeAt(12), 7.0);
}

TEST(DynamicAttributeTest, SubAttributesAreQueryable) {
  // Paper: "the user can ask for the objects for which
  // X.POSITION.function = 5*t".
  DynamicAttribute a(3.0, 7, TimeFunction::Linear(5.0));
  EXPECT_DOUBLE_EQ(a.value(), 3.0);
  EXPECT_EQ(a.updatetime(), 7);
  EXPECT_EQ(a.function(), TimeFunction::Linear(5.0));
  EXPECT_FALSE(a.function() == TimeFunction::Linear(4.0));
}

TEST(DynamicAttributeTest, LinearPiecesSingle) {
  DynamicAttribute a(10.0, 5, TimeFunction::Linear(2.0));
  auto pieces = a.LinearPieces(Interval(0, 20));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].ticks, Interval(0, 20));
  EXPECT_DOUBLE_EQ(pieces[0].value_at_begin, 0.0);  // Extrapolated back.
  EXPECT_DOUBLE_EQ(pieces[0].slope, 2.0);
}

TEST(DynamicAttributeTest, LinearPiecesPiecewise) {
  auto f = TimeFunction::Piecewise({{0, 1.0}, {10, -2.0}});
  ASSERT_TRUE(f.ok());
  DynamicAttribute a(0.0, 100, *f);
  auto pieces = a.LinearPieces(Interval(100, 130));
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].ticks, Interval(100, 109));
  EXPECT_DOUBLE_EQ(pieces[0].value_at_begin, 0.0);
  EXPECT_DOUBLE_EQ(pieces[0].slope, 1.0);
  EXPECT_EQ(pieces[1].ticks, Interval(110, 130));
  EXPECT_DOUBLE_EQ(pieces[1].value_at_begin, 10.0);
  EXPECT_DOUBLE_EQ(pieces[1].slope, -2.0);
}

TEST(DynamicAttributeTest, LinearPiecesWindowBeforeUpdate) {
  auto f = TimeFunction::Piecewise({{0, 1.0}, {10, -2.0}});
  ASSERT_TRUE(f.ok());
  DynamicAttribute a(0.0, 100, *f);
  // Window entirely before the second piece begins.
  auto pieces = a.LinearPieces(Interval(90, 105));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].ticks, Interval(90, 105));
  EXPECT_DOUBLE_EQ(pieces[0].slope, 1.0);
  EXPECT_DOUBLE_EQ(pieces[0].value_at_begin, -10.0);
}

TEST(DynamicAttributeTest, PieceValuesAgreeWithValueAt) {
  auto f = TimeFunction::Piecewise({{0, 1.5}, {4, -0.5}, {9, 3.0}});
  ASSERT_TRUE(f.ok());
  DynamicAttribute a(7.0, 20, *f);
  for (const auto& piece : a.LinearPieces(Interval(15, 40))) {
    for (Tick t = piece.ticks.begin; t <= piece.ticks.end; ++t) {
      double from_piece =
          piece.value_at_begin +
          piece.slope * static_cast<double>(t - piece.ticks.begin);
      EXPECT_NEAR(from_piece, a.ValueAt(t), 1e-9) << "t=" << t;
    }
  }
}

TEST(ClockTest, AdvanceAndJump) {
  Clock c;
  EXPECT_EQ(c.Now(), 0);
  c.Advance();
  EXPECT_EQ(c.Now(), 1);
  c.Advance(9);
  EXPECT_EQ(c.Now(), 10);
  c.AdvanceTo(5);  // Backward jumps ignored.
  EXPECT_EQ(c.Now(), 10);
  c.AdvanceTo(50);
  EXPECT_EQ(c.Now(), 50);
}

}  // namespace
}  // namespace most
