#include <gtest/gtest.h>

#include "core/motion_index_manager.h"
#include "ftl/eval.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "workload/fleet.h"

namespace most {
namespace {

TEST(MotionIndexManagerTest, IndexClassValidation) {
  MostDatabase db;
  ASSERT_TRUE(db.CreateClass("CARS", {}, true).ok());
  ASSERT_TRUE(db.CreateClass("MOTELS", {}, false).ok());
  MotionIndexManager manager(&db);
  EXPECT_TRUE(manager.IndexClass("CARS").ok());
  EXPECT_FALSE(manager.IndexClass("CARS").ok());    // Duplicate.
  EXPECT_FALSE(manager.IndexClass("MOTELS").ok());  // Not spatial.
  EXPECT_FALSE(manager.IndexClass("NOPE").ok());
  EXPECT_NE(manager.Get("CARS"), nullptr);
  EXPECT_EQ(manager.Get("MOTELS"), nullptr);
}

TEST(MotionIndexManagerTest, TracksUpdatesAndDeletes) {
  MostDatabase db;
  ASSERT_TRUE(db.CreateClass("CARS", {}, true).ok());
  MotionIndexManager manager(&db);
  ASSERT_TRUE(manager.IndexClass("CARS").ok());

  auto car = db.CreateObject("CARS");
  ASSERT_TRUE(db.SetMotion("CARS", (*car)->id(), {5, 5}, {0, 0}).ok());
  MotionIndex* index = manager.Get("CARS");
  ASSERT_NE(index, nullptr);
  BoundingBox region{{0, 0}, {10, 10}};
  EXPECT_EQ(index->QueryRegionExact(region, 0).size(), 1u);

  // Motion change is tracked.
  ASSERT_TRUE(db.SetMotion("CARS", (*car)->id(), {500, 500}, {0, 0}).ok());
  EXPECT_TRUE(manager.Get("CARS")->QueryRegionExact(region, 0).empty());

  // Deletion is tracked.
  ASSERT_TRUE(db.DeleteObject("CARS", (*car)->id()).ok());
  EXPECT_EQ(manager.Get("CARS")->num_objects(), 0u);
}

TEST(MotionIndexManagerTest, LazyRebuildAfterHorizon) {
  MostDatabase db;
  ASSERT_TRUE(db.CreateClass("CARS", {}, true).ok());
  MotionIndexManager manager(&db, {.horizon = 64});
  ASSERT_TRUE(manager.IndexClass("CARS").ok());
  auto car = db.CreateObject("CARS");
  ASSERT_TRUE(db.SetMotion("CARS", (*car)->id(), {0, 0}, {1, 0}).ok());
  db.clock().AdvanceTo(500);
  MotionIndex* index = manager.Get("CARS");  // Triggers the rebuild.
  EXPECT_GE(index->epoch_start(), 500);
  BoundingBox region{{499, -1}, {501, 1}};
  EXPECT_EQ(index->QueryRegionExact(region, 500).size(), 1u);
}

class IndexedEvalTest : public ::testing::Test {
 protected:
  IndexedEvalTest() : manager_(&db_, {.horizon = 512}) {
    FleetGenerator fleet({.num_vehicles = 200, .area = 1000.0, .seed = 21});
    EXPECT_TRUE(fleet.Populate(&db_, "CARS").ok());
    EXPECT_TRUE(
        db_.DefineRegion("P", Polygon::Rectangle({100, 100}, {220, 220}))
            .ok());
    EXPECT_TRUE(manager_.IndexClass("CARS").ok());
  }

  MostDatabase db_;
  MotionIndexManager manager_;
};

TEST_F(IndexedEvalTest, IndexedInsideMatchesUnindexed) {
  auto query = ParseQuery(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  FtlEvaluator plain(db_);
  FtlEvaluator::Options opts;
  opts.motion_indexes = &manager_;
  FtlEvaluator indexed(db_, opts);

  auto plain_rel = plain.EvaluateQuery(*query, Interval(0, 256));
  auto indexed_rel = indexed.EvaluateQuery(*query, Interval(0, 256));
  ASSERT_TRUE(plain_rel.ok());
  ASSERT_TRUE(indexed_rel.ok());
  EXPECT_EQ(plain_rel->rows, indexed_rel->rows);
  EXPECT_FALSE(plain_rel->rows.empty());
  // The index must actually have pruned something on this workload.
  EXPECT_GT(indexed.stats().index_pruned, 0u);
  EXPECT_LT(indexed.stats().atomic_evaluations,
            plain.stats().atomic_evaluations);
}

TEST_F(IndexedEvalTest, OutsideIsNeverPruned) {
  auto query = ParseQuery("RETRIEVE o FROM CARS o WHERE OUTSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  FtlEvaluator::Options opts;
  opts.motion_indexes = &manager_;
  FtlEvaluator indexed(db_, opts);
  auto rel = indexed.EvaluateQuery(*query, Interval(0, 64));
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(indexed.stats().index_pruned, 0u);
  // Essentially every car is outside P at some point.
  EXPECT_GT(rel->rows.size(), 150u);
}

TEST_F(IndexedEvalTest, QueryManagerUsesIndexes) {
  QueryManager qm(&db_, {.horizon = 256, .motion_indexes = &manager_});
  auto query = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  auto answer = qm.Instantaneous(*query);
  ASSERT_TRUE(answer.ok());
  // Cross-check against an unindexed manager.
  QueryManager plain_qm(&db_, {.horizon = 256});
  auto plain_answer = plain_qm.Instantaneous(*query);
  ASSERT_TRUE(plain_answer.ok());
  EXPECT_EQ(*answer, *plain_answer);
}

TEST_F(IndexedEvalTest, IndexStaysConsistentUnderUpdates) {
  auto query = ParseQuery(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 50 INSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  FtlEvaluator::Options opts;
  opts.motion_indexes = &manager_;
  Rng rng(5);
  for (int round = 0; round < 5; ++round) {
    db_.clock().Advance(20);
    for (int u = 0; u < 20; ++u) {
      ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, 199));
      ASSERT_TRUE(db_.SetMotion("CARS", id,
                                {rng.UniformDouble(0, 1000),
                                 rng.UniformDouble(0, 1000)},
                                {rng.UniformDouble(-3, 3),
                                 rng.UniformDouble(-3, 3)})
                      .ok());
    }
    FtlEvaluator plain(db_);
    FtlEvaluator indexed(db_, opts);
    Tick now = db_.Now();
    auto plain_rel = plain.EvaluateQuery(*query, Interval(now, now + 128));
    auto indexed_rel = indexed.EvaluateQuery(*query, Interval(now, now + 128));
    ASSERT_TRUE(plain_rel.ok());
    ASSERT_TRUE(indexed_rel.ok());
    ASSERT_EQ(plain_rel->rows, indexed_rel->rows) << "round " << round;
  }
}

}  // namespace
}  // namespace most
