// Unit tests for the shard-per-core engine (docs/sharding.md): routing,
// scatter-gather byte-identity against an unsharded oracle, cross-shard
// edge cases (DIST atoms straddling shards, empty shards), resharding,
// degradation, and per-shard WAL replay.

#include "core/sharded_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/shard_router.h"
#include "ftl/ast.h"
#include "ftl/query_manager.h"
#include "workload/fleet.h"

namespace most {
namespace {

FleetGenerator::Options SmallFleet(size_t vehicles, uint64_t seed) {
  FleetGenerator::Options opt;
  opt.num_vehicles = vehicles;
  opt.area = 100.0;
  opt.change_probability = 0.2;
  opt.seed = seed;
  return opt;
}

FtlQuery InsideQuery() {
  FtlQuery q;
  q.retrieve = {"o"};
  q.from = {{"V", "o"}};
  q.where = FtlFormula::Eventually(FtlFormula::Inside("o", "R1"));
  return q;
}

FtlQuery DistQuery(double radius) {
  FtlQuery q;
  q.retrieve = {"o", "n"};
  q.from = {{"V", "o"}, {"V", "n"}};
  q.where = FtlFormula::Compare(FtlFormula::CmpOp::kLt,
                                FtlTerm::Dist("o", "n"),
                                FtlTerm::Literal(Value(radius)));
  return q;
}

// Builds identical fleet worlds in `oracle_db` and `engine_db` and defines
// the region both query forms reference.
void BuildTwinWorlds(const FleetGenerator::Options& fopt,
                     MostDatabase* oracle_db, MostDatabase* engine_db) {
  for (MostDatabase* db : {oracle_db, engine_db}) {
    FleetGenerator fleet(fopt);
    ASSERT_TRUE(fleet.Populate(db, "V").ok());
    ASSERT_TRUE(
        db->DefineRegion("R1", Polygon::Rectangle({10, 10}, {60, 60})).ok());
  }
}

// Drives the same update schedule into the oracle database (direct
// application) and the engine (enqueue + Advance), comparing the gathered
// continuous answer against the oracle's after every tick.
void RunScheduleAndCompare(const FleetGenerator::Options& fopt,
                           size_t shard_count, Tick ticks,
                           const FtlQuery& query) {
  MostDatabase oracle_db;
  MostDatabase engine_db;
  ASSERT_NO_FATAL_FAILURE(BuildTwinWorlds(fopt, &oracle_db, &engine_db));

  QueryManager::Options qm_opt;
  qm_opt.horizon = 32;
  qm_opt.delta_max_dirty_fraction = 1.0;
  QueryManager oracle(&oracle_db, qm_opt);

  ShardedEngine::Options eng_opt;
  eng_opt.shard_count = shard_count;
  eng_opt.query_options = qm_opt;
  ShardedEngine engine(&engine_db, eng_opt);
  ASSERT_EQ(engine.shard_count(), shard_count);

  auto oracle_id = oracle.RegisterContinuous(query);
  auto engine_id = engine.RegisterContinuous(query);
  ASSERT_TRUE(oracle_id.ok()) << oracle_id.status();
  ASSERT_TRUE(engine_id.ok()) << engine_id.status();

  FleetGenerator fleet(fopt);
  std::vector<MotionUpdate> updates = fleet.GenerateUpdates(ticks);
  size_t next = 0;
  for (Tick t = 1; t <= ticks; ++t) {
    // Enqueue this tick's updates, then advance: the engine applies them
    // at tick t, exactly when the oracle does.
    size_t batch_begin = next;
    while (next < updates.size() && updates[next].at == t) {
      const MotionUpdate& u = updates[next];
      engine.EnqueueMotion("V", u.id, u.position, u.velocity);
      ++next;
    }
    ASSERT_TRUE(engine.Advance(1).ok());
    oracle_db.clock().AdvanceTo(t);
    for (size_t i = batch_begin; i < next; ++i) {
      ASSERT_TRUE(
          FleetGenerator::Apply(&oracle_db, "V", updates[i]).ok());
    }

    auto want = oracle.ContinuousAnswer(*oracle_id);
    auto got = engine.ContinuousAnswer(*engine_id);
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->complete());
    ASSERT_EQ(got->tuples, *want)
        << "sharded answer diverged from oracle at tick " << t << " with "
        << shard_count << " shards";
  }
}

TEST(ShardedEngineTest, ShardRouterIsStableAndCoversAllShards) {
  ShardRouter router(8);
  std::set<size_t> hit;
  for (ObjectId id = 0; id < 1000; ++id) {
    size_t k = router.ShardOf(id);
    EXPECT_LT(k, 8u);
    EXPECT_EQ(k, router.ShardOf(id));  // Pure function of (id, count).
    hit.insert(k);
  }
  EXPECT_EQ(hit.size(), 8u) << "hash assignment left shards empty";
}

TEST(ShardedEngineTest, SingleShardMatchesUnshardedByteForByte) {
  RunScheduleAndCompare(SmallFleet(12, 7), /*shard_count=*/1, /*ticks=*/10,
                        InsideQuery());
}

TEST(ShardedEngineTest, FourShardsMatchOracleOnSingleVariableQuery) {
  RunScheduleAndCompare(SmallFleet(16, 11), /*shard_count=*/4, /*ticks=*/10,
                        InsideQuery());
}

// A DIST atom joins objects that hash to different shards: every shard
// evaluates (o restricted to its partition, n unrestricted), so cross-
// shard pairs must survive the gather.
TEST(ShardedEngineTest, DistAtomStraddlingShardsMatchesOracle) {
  RunScheduleAndCompare(SmallFleet(10, 13), /*shard_count=*/4, /*ticks=*/8,
                        DistQuery(25.0));
}

// More shards than objects: some shards own nothing and contribute empty
// relations; the gather must still be byte-identical and complete.
TEST(ShardedEngineTest, EmptyShardsGatherCleanly) {
  RunScheduleAndCompare(SmallFleet(2, 17), /*shard_count=*/8, /*ticks=*/6,
                        DistQuery(40.0));
}

TEST(ShardedEngineTest, StatsPartitionTheObjectDomain) {
  MostDatabase db;
  FleetGenerator fleet(SmallFleet(40, 3));
  ASSERT_TRUE(fleet.Populate(&db, "V").ok());
  ShardedEngine::Options opt;
  opt.shard_count = 4;
  ShardedEngine engine(&db, opt);
  size_t total = 0;
  for (const ShardedEngine::ShardStats& s : engine.Stats()) {
    total += s.objects;
    EXPECT_EQ(s.queue_depth, 0u);
  }
  EXPECT_EQ(total, 40u);
}

// Reshard re-partitions ownership and re-anchors query windows: the
// contract is equality with a *fresh* oracle registered at the same tick,
// not with the pre-reshard state (docs/sharding.md).
TEST(ShardedEngineTest, ReshardMatchesFreshOracleAndMovesOwnership) {
  FleetGenerator::Options fopt = SmallFleet(20, 23);
  MostDatabase oracle_db;
  MostDatabase engine_db;
  ASSERT_NO_FATAL_FAILURE(BuildTwinWorlds(fopt, &oracle_db, &engine_db));

  QueryManager::Options qm_opt;
  qm_opt.horizon = 32;
  ShardedEngine::Options eng_opt;
  eng_opt.shard_count = 2;
  eng_opt.query_options = qm_opt;
  ShardedEngine engine(&engine_db, eng_opt);
  auto engine_id = engine.RegisterContinuous(InsideQuery());
  ASSERT_TRUE(engine_id.ok());

  // Some ownership must actually move between 2 and 5 shards.
  std::vector<size_t> owner_before;
  for (ObjectId id = 0; id < 20; ++id) {
    owner_before.push_back(engine.ShardOf(id));
  }
  ASSERT_TRUE(engine.Advance(3).ok());
  oracle_db.clock().AdvanceTo(3);

  ASSERT_TRUE(engine.Reshard(5).ok());
  EXPECT_EQ(engine.shard_count(), 5u);
  bool moved = false;
  size_t total = 0;
  for (const ShardedEngine::ShardStats& s : engine.Stats()) total += s.objects;
  EXPECT_EQ(total, 20u) << "reshard lost or duplicated objects";
  for (ObjectId id = 0; id < 20; ++id) {
    if (engine.ShardOf(id) != owner_before[id]) moved = true;
  }
  EXPECT_TRUE(moved) << "rehash moved no object between shards";

  // The engine id survives the reshard; answers equal a fresh oracle.
  QueryManager fresh_oracle(&oracle_db, qm_opt);
  auto oracle_id = fresh_oracle.RegisterContinuous(InsideQuery());
  ASSERT_TRUE(oracle_id.ok());
  auto want = fresh_oracle.ContinuousAnswer(*oracle_id);
  auto got = engine.ContinuousAnswer(*engine_id);
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(got->complete());
  EXPECT_EQ(got->tuples, *want);
}

// Engine-mediated creations and deletions keep partitions, indexes and
// answers consistent.
TEST(ShardedEngineTest, StructuralOpsReassignOwnershipAndDirtyQueries) {
  MostDatabase oracle_db;
  MostDatabase engine_db;
  ASSERT_NO_FATAL_FAILURE(
      BuildTwinWorlds(SmallFleet(6, 29), &oracle_db, &engine_db));
  QueryManager::Options qm_opt;
  qm_opt.horizon = 32;
  QueryManager oracle(&oracle_db, qm_opt);
  ShardedEngine::Options eng_opt;
  eng_opt.shard_count = 4;
  eng_opt.query_options = qm_opt;
  ShardedEngine engine(&engine_db, eng_opt);

  auto oid = oracle.RegisterContinuous(DistQuery(30.0));
  auto eid = engine.RegisterContinuous(DistQuery(30.0));
  ASSERT_TRUE(oid.ok() && eid.ok());

  // Create one object on both sides (same id: both databases hand out the
  // same counter), give it motion, then delete another.
  auto oracle_obj = oracle_db.CreateObject("V");
  auto engine_obj = engine.CreateObject("V");
  ASSERT_TRUE(oracle_obj.ok() && engine_obj.ok());
  ASSERT_EQ((*oracle_obj)->id(), (*engine_obj)->id());
  ObjectId new_id = (*engine_obj)->id();
  ASSERT_TRUE(oracle_db.SetMotion("V", new_id, {20, 20}, {1, 0}).ok());
  engine.EnqueueMotion("V", new_id, {20, 20}, {1, 0});
  ASSERT_TRUE(engine.DrainAndRefresh().ok());

  ASSERT_TRUE(oracle_db.DeleteObject("V", 0).ok());
  ASSERT_TRUE(engine.DeleteObject("V", 0).ok());

  ASSERT_TRUE(engine.Advance(2).ok());
  oracle_db.clock().AdvanceTo(2);

  auto want = oracle.ContinuousAnswer(*oid);
  auto got = engine.ContinuousAnswer(*eid);
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->tuples, *want);

  size_t total = 0;
  for (const ShardedEngine::ShardStats& s : engine.Stats()) total += s.objects;
  EXPECT_EQ(total, 6u);  // 6 initial + 1 created - 1 deleted.
}

// A shard that blows its refresh budget degrades instead of blocking the
// gather: the merged answer lists it in missing_shards and every tuple is
// demoted to kStale (completeness marking, docs/sharding.md).
TEST(ShardedEngineTest, DegradedShardPoisonsGatherAsStale) {
  MostDatabase db;
  FleetGenerator fleet(SmallFleet(12, 31));
  ASSERT_TRUE(fleet.Populate(&db, "V").ok());
  ASSERT_TRUE(
      db.DefineRegion("R1", Polygon::Rectangle({0, 0}, {100, 100})).ok());

  ShardedEngine::Options opt;
  opt.shard_count = 4;
  opt.query_options.horizon = 32;
  // One arena byte: every shard's refresh trips the memory gate at its
  // first budget checkpoint. (max_rows would need a join to materialize a
  // row-counted relation; the arena knob sheds any evaluation shape.)
  opt.query_options.refresh_budget.max_arena_bytes = 1;
  ShardedEngine engine(&db, opt);
  auto id = engine.RegisterContinuous(InsideQuery());
  ASSERT_TRUE(id.ok());

  auto got = engine.ContinuousAnswer(*id);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_FALSE(got->complete());
  EXPECT_FALSE(got->missing_shards.empty());
  for (const AnswerTuple& t : got->tuples) {
    EXPECT_EQ(t.confidence, Confidence::kStale);
  }
}

// Per-shard ownership-filtered motion indexes: the engine-level union of
// candidate supersets equals an unfiltered manager's candidates.
TEST(ShardedEngineTest, CandidatesNearObjectUnionsShardIndexes) {
  MostDatabase db;
  FleetGenerator fleet(SmallFleet(30, 37));
  ASSERT_TRUE(fleet.Populate(&db, "V").ok());

  ShardedEngine::Options opt;
  opt.shard_count = 4;
  opt.index_classes = {"V"};
  ShardedEngine engine(&db, opt);

  MotionIndexManager full(&db);
  ASSERT_TRUE(full.IndexClass("V").ok());

  auto cls = db.GetClass("V");
  ASSERT_TRUE(cls.ok());
  const MostObject* probe = *(*cls)->Get(3);
  Interval window(0, 16);
  auto want = full.CandidatesNearObject("V", *probe, 10.0, window);
  auto got = engine.CandidatesNearObject("V", *probe, 10.0, window);
  ASSERT_TRUE(want.has_value());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, *want);
}

// Durability: every drained update lands in its owner shard's WAL; replay
// into a fresh database reconstructs the exact object state.
TEST(ShardedEngineTest, ShardWalRoundTripReplaysExactState) {
  const std::string dir = ::testing::TempDir() + "/shard_wal_roundtrip";
  // Shard WALs open in append mode (a reopened engine must not truncate
  // its own history), so a rerun against a dirty dir would replay twice.
  std::filesystem::remove_all(dir);
  const size_t kShards = 4;
  MostDatabase db;
  ASSERT_TRUE(db.CreateClass("V", {}, /*spatial=*/true).ok());

  ShardedEngine::Options opt;
  opt.shard_count = kShards;
  opt.wal_dir = dir;
  ShardedEngine engine(&db, opt);

  // All structure and updates flow through the engine so the logs carry
  // the full history.
  std::vector<ObjectId> ids;
  for (int i = 0; i < 10; ++i) {
    auto obj = engine.CreateObject("V");
    ASSERT_TRUE(obj.ok());
    ids.push_back((*obj)->id());
  }
  for (Tick t = 1; t <= 5; ++t) {
    for (size_t i = 0; i < ids.size(); ++i) {
      engine.EnqueueMotion("V", ids[i],
                           {static_cast<double>(i) + t, 2.0 * t},
                           {0.5 * static_cast<double>(i % 3), 1.0});
    }
    ASSERT_TRUE(engine.Advance(1).ok());
  }
  ASSERT_TRUE(engine.DeleteObject("V", ids.back()).ok());

  MostDatabase replayed;
  ASSERT_TRUE(replayed.CreateClass("V", {}, /*spatial=*/true).ok());
  auto report = ShardedEngine::ReplayShardWals(dir, kShards, &replayed);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->applied, 50u);  // 10 creates + 50 motions + 1 delete.
  EXPECT_EQ(replayed.Now(), db.Now());

  auto orig_cls = db.GetClass("V");
  auto repl_cls = replayed.GetClass("V");
  ASSERT_TRUE(orig_cls.ok() && repl_cls.ok());
  ASSERT_EQ((*repl_cls)->size(), (*orig_cls)->size());
  for (const auto& [id, obj] : (*orig_cls)->objects()) {
    auto copy = (*repl_cls)->Get(id);
    ASSERT_TRUE(copy.ok());
    // Bit-exact reconstruction: the WAL stores the update's doubles and
    // the replay re-applies them at the same tick.
    Point2 want = obj.PositionAt(db.Now());
    Point2 got = (*copy)->PositionAt(db.Now());
    EXPECT_EQ(want.x, got.x);
    EXPECT_EQ(want.y, got.y);
    EXPECT_EQ(obj.last_update(), (*copy)->last_update());
  }
}

}  // namespace
}  // namespace most
