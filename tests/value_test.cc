#include "storage/value.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

namespace most {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt);
  EXPECT_EQ(Value(7).type(), ValueType::kInt);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value("hi").string_value(), "hi");
}

TEST(ValueTest, NumericTowerComparison) {
  EXPECT_EQ(Value(3).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(3).Compare(Value(3.5)), 0);
  EXPECT_GT(Value(4.5).Compare(Value(4)), 0);
}

TEST(ValueTest, CrossTypeTotalOrder) {
  // Null < bool < numeric < string (by type tag), needed for index keys.
  EXPECT_LT(Value().Compare(Value(false)), 0);
  EXPECT_LT(Value(true).Compare(Value(0)), 0);
  EXPECT_LT(Value(99).Compare(Value("a")), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
}

TEST(ValueTest, ComparisonOperators) {
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value(2) <= Value(2));
  EXPECT_TRUE(Value(3) > Value(2));
  EXPECT_TRUE(Value(3) >= Value(3));
  EXPECT_TRUE(Value(3) == Value(3.0));
}

TEST(ValueTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Value(4).AsDouble().value(), 4.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble().value(), 2.5);
  EXPECT_FALSE(Value("x").AsDouble().ok());
  EXPECT_FALSE(Value().AsDouble().ok());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
}

TEST(SchemaTest, IndexOfAndValidation) {
  Schema s({{"id", ValueType::kInt},
            {"name", ValueType::kString},
            {"price", ValueType::kDouble}});
  EXPECT_EQ(s.IndexOf("id").value(), 0u);
  EXPECT_EQ(s.IndexOf("price").value(), 2u);
  EXPECT_FALSE(s.IndexOf("missing").ok());
  EXPECT_TRUE(s.HasColumn("name"));

  EXPECT_TRUE(s.Validate({Value(1), Value("a"), Value(9.99)}).ok());
  // Int widens to double column.
  EXPECT_TRUE(s.Validate({Value(1), Value("a"), Value(10)}).ok());
  // Null allowed anywhere.
  EXPECT_TRUE(s.Validate({Value(), Value(), Value()}).ok());
  // Arity mismatch.
  EXPECT_FALSE(s.Validate({Value(1)}).ok());
  // Type mismatch.
  EXPECT_FALSE(s.Validate({Value("x"), Value("a"), Value(9.99)}).ok());
  // Double does not narrow to int.
  EXPECT_FALSE(s.Validate({Value(1.5), Value("a"), Value(9.99)}).ok());
}

}  // namespace
}  // namespace most
