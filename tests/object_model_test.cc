#include "core/object_model.h"

#include <gtest/gtest.h>

namespace most {
namespace {

class ObjectModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateClass("CARS", {{"PLATE", false, ValueType::kString}},
                                /*spatial=*/true)
                    .ok());
    ASSERT_TRUE(
        db_.CreateClass("MOTELS", {{"PRICE", false, ValueType::kDouble}})
            .ok());
  }

  MostDatabase db_;
};

TEST_F(ObjectModelTest, ClassCreation) {
  EXPECT_TRUE(db_.HasClass("CARS"));
  EXPECT_FALSE(db_.HasClass("PLANES"));
  EXPECT_FALSE(db_.CreateClass("CARS", {}).ok());  // Duplicate.
  // Reserved attribute names rejected.
  EXPECT_FALSE(
      db_.CreateClass("BAD", {{kAttrX, true, ValueType::kNull}}).ok());
  // Spatial classes get position attributes implicitly.
  auto cars = db_.GetClass("CARS");
  ASSERT_TRUE(cars.ok());
  EXPECT_TRUE((*cars)->spatial());
  bool has_x = false;
  for (const auto& a : (*cars)->attributes()) {
    if (a.name == kAttrX) has_x = true;
  }
  EXPECT_TRUE(has_x);
}

TEST_F(ObjectModelTest, ObjectLifecycle) {
  auto car = db_.CreateObject("CARS");
  ASSERT_TRUE(car.ok());
  ObjectId id = (*car)->id();
  EXPECT_TRUE((*car)->IsSpatial());
  EXPECT_TRUE((*car)->GetStatic("PLATE").ok());
  EXPECT_TRUE((*car)->GetStatic("PLATE")->is_null());

  EXPECT_TRUE(db_.UpdateStatic("CARS", id, "PLATE", Value("RWW860")).ok());
  EXPECT_EQ((*car)->GetStatic("PLATE")->string_value(), "RWW860");
  EXPECT_FALSE(db_.UpdateStatic("CARS", id, "NOPE", Value(1)).ok());
  EXPECT_FALSE(db_.UpdateStatic("CARS", 999, "PLATE", Value(1)).ok());

  EXPECT_TRUE(db_.DeleteObject("CARS", id).ok());
  EXPECT_FALSE(db_.DeleteObject("CARS", id).ok());
  EXPECT_FALSE(db_.CreateObject("NOPE").ok());
}

TEST_F(ObjectModelTest, MotionAndPosition) {
  auto car = db_.CreateObject("CARS");
  ASSERT_TRUE(car.ok());
  ObjectId id = (*car)->id();
  db_.clock().AdvanceTo(10);
  ASSERT_TRUE(db_.SetMotion("CARS", id, {100, 50}, {2, -1}).ok());
  EXPECT_EQ((*car)->PositionAt(10), Point2(100, 50));
  EXPECT_EQ((*car)->PositionAt(15), Point2(110, 45));
  // Position "changes" without further updates as the clock advances.
  db_.clock().AdvanceTo(20);
  EXPECT_EQ((*car)->PositionAt(db_.Now()), Point2(120, 40));
}

TEST_F(ObjectModelTest, MotionSegmentsAlignXandY) {
  auto car = db_.CreateObject("CARS");
  ASSERT_TRUE(car.ok());
  ObjectId id = (*car)->id();
  auto fx = TimeFunction::Piecewise({{0, 1.0}, {10, 0.0}});
  auto fy = TimeFunction::Piecewise({{0, 0.0}, {5, 2.0}});
  ASSERT_TRUE(fx.ok());
  ASSERT_TRUE(fy.ok());
  ASSERT_TRUE(db_.UpdateDynamic("CARS", id, kAttrX, 0.0, *fx).ok());
  ASSERT_TRUE(db_.UpdateDynamic("CARS", id, kAttrY, 0.0, *fy).ok());

  auto segs = (*car)->MotionSegments(Interval(0, 20));
  ASSERT_EQ(segs.size(), 3u);  // Cuts at t=5 and t=10.
  EXPECT_EQ(segs[0].ticks, Interval(0, 4));
  EXPECT_EQ(segs[1].ticks, Interval(5, 9));
  EXPECT_EQ(segs[2].ticks, Interval(10, 20));
  // Segment motion agrees with attribute evaluation at every tick.
  for (const MotionSegment& seg : segs) {
    for (Tick t = seg.ticks.begin; t <= seg.ticks.end; ++t) {
      Point2 from_seg = seg.motion.At(static_cast<double>(t));
      Point2 from_attr = (*car)->PositionAt(t);
      EXPECT_NEAR(from_seg.x, from_attr.x, 1e-9) << t;
      EXPECT_NEAR(from_seg.y, from_attr.y, 1e-9) << t;
    }
  }
}

TEST_F(ObjectModelTest, Regions) {
  EXPECT_TRUE(
      db_.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10})).ok());
  EXPECT_TRUE(db_.GetRegion("P").ok());
  EXPECT_FALSE(db_.GetRegion("Q").ok());
}

TEST_F(ObjectModelTest, UpdateListenersFire) {
  int fired = 0;
  std::string last_class;
  db_.AddUpdateListener([&](const std::string& cls, ObjectId) {
    ++fired;
    last_class = cls;
  });
  auto car = db_.CreateObject("CARS");
  ASSERT_TRUE(car.ok());
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(db_.SetMotion("CARS", (*car)->id(), {0, 0}, {1, 1}).ok());
  EXPECT_EQ(fired, 3);  // One per coordinate attribute.
  EXPECT_EQ(last_class, "CARS");
  EXPECT_EQ(db_.update_count(), 3u);
}

TEST_F(ObjectModelTest, NonSpatialClassHasNoPosition) {
  auto motel = db_.CreateObject("MOTELS");
  ASSERT_TRUE(motel.ok());
  EXPECT_FALSE((*motel)->IsSpatial());
}

TEST_F(ObjectModelTest, ExplicitUpdatesStampLastUpdate) {
  auto car = db_.CreateObject("CARS");
  ASSERT_TRUE(car.ok());
  ObjectId id = (*car)->id();
  EXPECT_EQ((*car)->last_update(), 0);  // Creation counts as an update.

  db_.clock().AdvanceTo(17);
  ASSERT_TRUE(db_.SetMotion("CARS", id, {1, 1}, {1, 0}).ok());
  EXPECT_EQ((*car)->last_update(), 17);

  db_.clock().AdvanceTo(30);
  ASSERT_TRUE(db_.UpdateStatic("CARS", id, "PLATE", Value("AAA111")).ok());
  EXPECT_EQ((*car)->last_update(), 30);
}

TEST_F(ObjectModelTest, IsStaleComparesAgainstHorizon) {
  auto car = db_.CreateObject("CARS");
  ASSERT_TRUE(car.ok());
  const MostObject& obj = **car;
  EXPECT_FALSE(IsStale(obj, /*now=*/50, /*horizon=*/50));  // Boundary.
  EXPECT_TRUE(IsStale(obj, /*now=*/51, /*horizon=*/50));
  EXPECT_FALSE(IsStale(obj, /*now=*/51, /*horizon=*/-1));  // Disabled.

  // A fresh update at t=60 resets the clock.
  db_.clock().AdvanceTo(60);
  ASSERT_TRUE(db_.SetMotion("CARS", obj.id(), {0, 0}, {0, 0}).ok());
  EXPECT_FALSE(IsStale(obj, /*now=*/100, /*horizon=*/50));
  EXPECT_TRUE(IsStale(obj, /*now=*/111, /*horizon=*/50));
}

}  // namespace
}  // namespace most
