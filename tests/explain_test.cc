// Golden tests for QueryManager::Explain — EXPLAIN ANALYZE for FTL. The
// profile tree mirrors the formula tree (the appendix's bottom-up
// algorithm computes one interval relation per subformula), and with
// include_timings=false the rendering is fully deterministic: wall times
// mask to "..ns" while tuple/interval cardinalities and counter deltas
// stay exact.

#include <gtest/gtest.h>

#include "ftl/parser.h"
#include "ftl/query_manager.h"

namespace most {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : qm_(&db_, {.horizon = 200}) {
    EXPECT_TRUE(db_.CreateClass("CARS", {{"PRICE", false, ValueType::kDouble}},
                                /*spatial=*/true)
                    .ok());
    EXPECT_TRUE(
        db_.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10})).ok());
  }

  ObjectId AddCar(Point2 pos, Vec2 vel) {
    auto obj = db_.CreateObject("CARS");
    EXPECT_TRUE(obj.ok());
    EXPECT_TRUE(db_.SetMotion("CARS", (*obj)->id(), pos, vel).ok());
    return (*obj)->id();
  }

  FtlQuery Parse(const std::string& s) {
    auto q = ParseQuery(s);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  MostDatabase db_;
  QueryManager qm_;
};

TEST_F(ExplainTest, FullRefreshGolden) {
  AddCar({-20, 5}, {1, 0});  // Inside P during [20, 30].
  AddCar({100, 100}, {0, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(qm_.ContinuousAnswer(*id).ok());

  auto text = qm_.Explain(*id, /*include_timings=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(*text,
            "Query: RETRIEVE o FROM CARS o WHERE INSIDE(o, P)\n"
            "Window: [0, 200]\n"
            "Path: full (initial)\n"
            "Refresh: #1 dirty_objects=0 total=..ns\n"
            "-> EvaluateQuery  (tuples=1 intervals=1 time=..ns)\n"
            "  -> Inside INSIDE(o, P)  (tuples=1 intervals=1 time=..ns"
            " atoms=2 inst=2)\n");
}

TEST_F(ExplainTest, DeltaRefreshGolden) {
  ObjectId car = AddCar({-20, 5}, {1, 0});
  for (int i = 0; i < 5; ++i) AddCar({100.0 + i, 100}, {0, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(qm_.ContinuousAnswer(*id).ok());

  // One updated object out of six: under the dirty fraction, so the
  // refresh is served by the delta path with a single restricted pass.
  ASSERT_TRUE(db_.SetMotion("CARS", car, {-10, 5}, {1, 0}).ok());
  ASSERT_TRUE(qm_.ContinuousAnswer(*id).ok());

  auto text = qm_.Explain(*id, /*include_timings=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(*text,
            "Query: RETRIEVE o FROM CARS o WHERE INSIDE(o, P)\n"
            "Window: [0, 200]\n"
            "Path: delta (coalesced updates)\n"
            "Refresh: #2 dirty_objects=1 total=..ns\n"
            "-> DeltaRefresh  (tuples=1 intervals=0 time=..ns)\n"
            "  -> RestrictedPass o (1 dirty)  (tuples=1 intervals=1"
            " time=..ns)\n"
            "    -> Inside INSIDE(o, P)  (tuples=1 intervals=1 time=..ns"
            " atoms=1 inst=1)\n");
}

TEST_F(ExplainTest, NestedFormulaMirrorsTheTree) {
  AddCar({-20, 5}, {1, 0});
  auto id = qm_.RegisterContinuous(Parse(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 50 INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(qm_.ContinuousAnswer(*id).ok());
  auto text = qm_.Explain(*id, /*include_timings=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  // The bounded-eventually node wraps the INSIDE leaf one level deeper.
  EXPECT_NE(text->find("-> EvaluateQuery"), std::string::npos);
  EXPECT_NE(text->find("    -> Inside"), std::string::npos);
}

TEST_F(ExplainTest, UnknownIdIsNotFound) {
  auto text = qm_.Explain(999);
  EXPECT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kNotFound);
}

TEST_F(ExplainTest, ProfilingDisabledIsInvalidArgument) {
  QueryManager qm(&db_, {.horizon = 200, .enable_profiling = false});
  auto id =
      qm.RegisterContinuous(Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(qm.ContinuousAnswer(*id).ok());
  auto text = qm.Explain(*id);
  EXPECT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExplainTest, ProfileSnapshotSurvivesLaterRefreshes) {
  ObjectId car = AddCar({-20, 5}, {1, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(qm_.ContinuousAnswer(*id).ok());
  auto first = qm_.Profile(*id);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->path, "full");

  ASSERT_TRUE(db_.SetMotion("CARS", car, {-10, 5}, {1, 0}).ok());
  ASSERT_TRUE(qm_.ContinuousAnswer(*id).ok());
  auto second = qm_.Profile(*id);
  ASSERT_TRUE(second.ok());
  // The earlier snapshot is untouched; the new refresh installed a fresh
  // profile object rather than mutating the old one.
  EXPECT_EQ((*first)->path, "full");
  EXPECT_EQ((*first)->refresh_seq, 1u);
  EXPECT_EQ((*second)->refresh_seq, 2u);
}

TEST_F(ExplainTest, ProfilingNeverChangesAnswers) {
  // Differential guard: the instrumented and uninstrumented managers agree
  // tuple for tuple, with the metrics registry on and off.
  auto run = [&](bool profiling, bool metrics) {
    obs::MetricsRegistry::Global().set_enabled(metrics);
    MostDatabase db;
    EXPECT_TRUE(db.CreateClass("CARS", {{"PRICE", false, ValueType::kDouble}},
                               /*spatial=*/true)
                    .ok());
    EXPECT_TRUE(
        db.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10})).ok());
    QueryManager qm(&db, {.horizon = 200, .enable_profiling = profiling});
    std::vector<ObjectId> cars;
    for (int i = 0; i < 6; ++i) {
      auto obj = db.CreateObject("CARS");
      EXPECT_TRUE(obj.ok());
      cars.push_back((*obj)->id());
      EXPECT_TRUE(
          db.SetMotion("CARS", cars.back(), {-20.0 - i, 5}, {1, 0}).ok());
    }
    auto id = qm.RegisterContinuous(
        *ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(db.SetMotion("CARS", cars[2], {0, 5}, {0.5, 0}).ok());
    auto answer = qm.ContinuousAnswer(*id);
    EXPECT_TRUE(answer.ok());
    obs::MetricsRegistry::Global().set_enabled(true);
    return *answer;
  };
  std::vector<AnswerTuple> baseline = run(false, false);
  EXPECT_EQ(run(true, true), baseline);
  EXPECT_EQ(run(true, false), baseline);
  EXPECT_EQ(run(false, true), baseline);
  EXPECT_FALSE(baseline.empty());
}

}  // namespace
}  // namespace most
