// Crash-torture harness: run a randomized workload against a
// DurableDatabase, trip an armed failpoint (torn append, failed flush,
// failed fsync, failed checkpoint) or corrupt the log file directly
// (truncation, byte flips), then reopen and verify the recovered state
// against an in-memory oracle:
//
//   * no committed record is lost (every op that returned OK is visible),
//   * no torn/corrupt record is applied (recovery never invents state),
//   * Open() always succeeds in salvage mode — corruption degrades the
//     database, it does not brick it.
//
// Three injection families x 80 randomized iterations each = 240
// injections, all ASan-clean. A summary test at the end fails loudly if
// the failpoints never actually fired, so the harness cannot silently
// no-op (ci.sh runs this suite as its crash-torture stage).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "metrics_dump_listener.h"

#include "common/failpoint.h"
#include "common/rng.h"
#include "storage/durable_database.h"
#include "test_seed.h"

namespace most {
namespace {

constexpr int kIterationsPerFamily = 80;

// Aggregate injection counts, checked by the summary test at the bottom.
int g_injections = 0;

using State = std::map<RowId, int64_t>;

std::string TortureePath(const std::string& name, int iter) {
  // Pid-qualified: ctest runs this binary twice (plain + _fixed_seed) and
  // may schedule both concurrently; shared paths make them corrupt each
  // other's logs.
  return ::testing::TempDir() + "/torture_" + std::to_string(getpid()) +
         "_" + name + "_" + std::to_string(iter) + ".log";
}

State ReadState(const DurableDatabase& db) {
  State out;
  auto table = db.GetTable("T");
  if (!table.ok()) return out;
  (*table)->Scan(
      [&](RowId rid, const Row& row) { out[rid] = row[0].int_value(); });
  return out;
}

struct PendingOp {
  enum Kind { kInsert, kUpdate, kDelete } kind = kInsert;
  RowId rid = kInvalidRowId;  // kUpdate / kDelete.
  int64_t value = 0;          // kInsert / kUpdate.
};

// Performs one random mutation. On success the oracle is updated and
// nullopt-equivalent false is returned; on failure `pending` describes the
// op whose commit was interrupted.
bool RandomOp(DurableDatabase* db, Rng* rng, State* oracle,
              PendingOp* pending, bool* failed) {
  double action = rng->UniformDouble(0, 1);
  *failed = false;
  if (action < 0.5 || oracle->empty()) {
    pending->kind = PendingOp::kInsert;
    pending->value = rng->UniformInt(0, 1000);
    auto rid = db->Insert("T", {Value(pending->value)});
    if (!rid.ok()) {
      *failed = true;
      return true;
    }
    (*oracle)[*rid] = pending->value;
  } else if (action < 0.8) {
    auto it = oracle->begin();
    std::advance(it, rng->UniformInt(0, oracle->size() - 1));
    pending->kind = PendingOp::kUpdate;
    pending->rid = it->first;
    pending->value = rng->UniformInt(0, 1000);
    Status s = db->Update("T", it->first, {Value(pending->value)});
    if (!s.ok()) {
      *failed = true;
      return true;
    }
    it->second = pending->value;
  } else {
    auto it = oracle->begin();
    std::advance(it, rng->UniformInt(0, oracle->size() - 1));
    pending->kind = PendingOp::kDelete;
    pending->rid = it->first;
    Status s = db->Delete("T", it->first);
    if (!s.ok()) {
      *failed = true;
      return true;
    }
    oracle->erase(it);
  }
  return true;
}

// The crash-recovery contract for an interrupted commit: the recovered
// state is either the oracle without the pending op (the record never
// reached the log) or with it (the record reached the log before the
// failure was reported). Anything else lost a committed record or applied
// a torn one.
bool MatchesBeforeOrAfter(const State& got, const State& before,
                          const PendingOp& op) {
  if (got == before) return true;
  State after = before;
  switch (op.kind) {
    case PendingOp::kUpdate:
      after[op.rid] = op.value;
      return got == after;
    case PendingOp::kDelete:
      after.erase(op.rid);
      return got == after;
    case PendingOp::kInsert: {
      // The interrupted insert's row id was never returned; accept exactly
      // one extra row holding the pending value.
      for (const auto& [rid, value] : got) {
        if (before.count(rid) > 0) continue;
        if (value != op.value) return false;
        State trimmed = got;
        trimmed.erase(rid);
        return trimmed == before;
      }
      return false;
    }
  }
  return false;
}

class CrashTortureTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// ---- Family 1: interrupted WAL appends ------------------------------------

TEST_F(CrashTortureTest, InterruptedAppendKeepsCommittedPrefix) {
  auto& reg = FailpointRegistry::Instance();
  struct Fault {
    const char* site;
    const char* spec;
    bool needs_sync;
  };
  const Fault kFaults[] = {
      {"wal/append/write", "truncate*1", false},  // Torn record.
      {"wal/append/write", "truncate(1)*1", false},
      {"wal/append/write", "error*1", false},     // Nothing written.
      {"wal/append/flush", "error*1", false},
      {"wal/sync", "error*1", true},
  };
  const uint64_t seed_base = test::SuiteSeed("CrashTorture.Append", 7000);
  for (int iter = 0; iter < kIterationsPerFamily; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Rng rng(seed_base + iter);
    const Fault& fault = kFaults[iter % std::size(kFaults)];
    std::string path = TortureePath("append", iter);
    std::remove(path.c_str());

    DurableDatabase::Options opts;
    opts.salvage = true;
    opts.durability = (fault.needs_sync || iter % 3 == 0)
                          ? DurableDatabase::Options::Durability::kSync
                          : DurableDatabase::Options::Durability::kFlush;
    // Half the iterations write legacy v1 framing: recovery invariants
    // must hold for both formats.
    opts.wal_format_version = (iter % 2 == 0) ? 2 : 1;

    State before;
    PendingOp pending;
    bool crashed = false;
    uint64_t fired_before = reg.total_triggered();
    {
      DurableDatabase db(opts);
      ASSERT_TRUE(db.Open(path).ok());
      ASSERT_TRUE(db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
      State oracle;
      int64_t arm_at = rng.UniformInt(3, 30);
      for (int step = 0; step < 64; ++step) {
        if (step == arm_at) {
          ASSERT_TRUE(reg.Arm(fault.site, fault.spec).ok());
        }
        before = oracle;
        bool failed = false;
        RandomOp(&db, &rng, &oracle, &pending, &failed);
        if (failed) {
          crashed = true;
          break;
        }
      }
      // "Crash": drop the DurableDatabase on the floor with the failed
      // commit unresolved.
    }
    ASSERT_TRUE(crashed) << "failpoint " << fault.site << " never tripped";
    EXPECT_GT(reg.total_triggered(), fired_before);
    ++g_injections;

    DurableDatabase recovered(opts);
    ASSERT_TRUE(recovered.Open(path).ok());
    State got = ReadState(recovered);
    EXPECT_TRUE(MatchesBeforeOrAfter(got, before, pending))
        << "recovered state diverges from the committed prefix";
    // The reopened database must keep working.
    EXPECT_TRUE(recovered.Insert("T", {Value(int64_t{4242})}).ok());
    std::remove(path.c_str());
  }
}

// ---- Family 2: interrupted checkpoints ------------------------------------

TEST_F(CrashTortureTest, FailedCheckpointLeavesOldLogAuthoritative) {
  auto& reg = FailpointRegistry::Instance();
  struct Fault {
    const char* site;
    const char* spec;
    bool needs_sync;
  };
  const Fault kFaults[] = {
      {"durable/checkpoint/begin", "error*1", false},
      {"durable/checkpoint/rename", "error*1", false},
      {"wal/append/write", "truncate*1", false},  // Tears the snapshot.
      {"wal/append/write", "error*1", false},
      {"wal/sync", "error*1", true},  // Snapshot pre-rename sync fails.
  };
  const uint64_t seed_base = test::SuiteSeed("CrashTorture.Checkpoint", 8000);
  for (int iter = 0; iter < kIterationsPerFamily; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Rng rng(seed_base + iter);
    const Fault& fault = kFaults[iter % std::size(kFaults)];
    std::string path = TortureePath("checkpoint", iter);
    std::string tmp_path = path + ".checkpoint";
    std::remove(path.c_str());

    DurableDatabase::Options opts;
    opts.salvage = true;
    if (fault.needs_sync) {
      opts.durability = DurableDatabase::Options::Durability::kSync;
    }

    State oracle;
    uint64_t fired_before = reg.total_triggered();
    {
      DurableDatabase db(opts);
      ASSERT_TRUE(db.Open(path).ok());
      ASSERT_TRUE(db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
      PendingOp pending;
      bool failed = false;
      int64_t warmup = rng.UniformInt(5, 30);
      for (int step = 0; step < warmup; ++step) {
        RandomOp(&db, &rng, &oracle, &pending, &failed);
        ASSERT_FALSE(failed);
      }

      ASSERT_TRUE(reg.Arm(fault.site, fault.spec).ok());
      EXPECT_FALSE(db.Checkpoint().ok());
      EXPECT_GT(reg.total_triggered(), fired_before);
      // The failed checkpoint must not leave its temporary snapshot
      // behind, and the database must remain fully usable.
      std::ifstream leftover(tmp_path);
      EXPECT_FALSE(leftover.good()) << "stale checkpoint tmp file";
      for (int step = 0; step < 10; ++step) {
        RandomOp(&db, &rng, &oracle, &pending, &failed);
        ASSERT_FALSE(failed) << "database unusable after failed checkpoint";
      }
    }
    ++g_injections;

    DurableDatabase recovered(opts);
    ASSERT_TRUE(recovered.Open(path).ok());
    EXPECT_EQ(ReadState(recovered), oracle)
        << "failed checkpoint lost committed records";
    std::remove(path.c_str());
  }
}

// ---- Family 3: log corruption discovered at recovery ----------------------

TEST_F(CrashTortureTest, CorruptedLogSalvagesWithoutInventingState) {
  const uint64_t seed_base = test::SuiteSeed("CrashTorture.Corrupt", 9000);
  for (int iter = 0; iter < kIterationsPerFamily; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    Rng rng(seed_base + iter);
    std::string path = TortureePath("corrupt", iter);
    std::remove(path.c_str());

    DurableDatabase::Options opts;
    opts.salvage = true;
    opts.wal_format_version = (iter / 2) % 2 == 0 ? 2 : 1;

    // Every state the committed history passed through, newest last, plus
    // the set of every (row, value) fact that was ever true. Recovery may
    // land on any committed prefix (truncation) or lose interior records
    // (flips), but it must never exhibit a row/value pair that was never
    // committed.
    std::vector<State> history;
    history.emplace_back();
    {
      DurableDatabase db(opts);
      ASSERT_TRUE(db.Open(path).ok());
      ASSERT_TRUE(db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
      State oracle;
      PendingOp pending;
      bool failed = false;
      int64_t ops = rng.UniformInt(10, 40);
      for (int step = 0; step < ops; ++step) {
        RandomOp(&db, &rng, &oracle, &pending, &failed);
        ASSERT_FALSE(failed);
        history.push_back(oracle);
      }
    }

    // Read, corrupt, write back.
    std::string contents;
    {
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.good());
      contents.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(contents.empty());
    bool truncation = iter % 2 == 0;
    if (truncation) {
      contents.resize(rng.UniformInt(0, contents.size() - 1));
    } else {
      size_t pos = rng.UniformInt(0, contents.size() - 1);
      contents[pos] = static_cast<char>(contents[pos] ^
                                        (1 + rng.UniformInt(0, 254)));
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << contents;
    }
    ++g_injections;

    DurableDatabase recovered(opts);
    ASSERT_TRUE(recovered.Open(path).ok())
        << "salvage recovery must survive arbitrary log corruption: "
        << recovered.recovery_report().first_error;
    State got = ReadState(recovered);

    if (truncation) {
      // Truncation cuts a suffix of whole records (plus one torn one):
      // the result must be exactly some committed prefix state.
      bool is_prefix = false;
      for (const State& s : history) {
        if (got == s) {
          is_prefix = true;
          break;
        }
      }
      EXPECT_TRUE(is_prefix)
          << "recovered state is not a committed prefix after truncation";
    } else if (opts.wal_format_version == 2) {
      // A byte flip may drop interior records (and transitively whatever
      // depended on them), but with CRC framing every surviving fact must
      // have been committed at some point — corruption never invents
      // state. (v1's length-only framing cannot detect an in-place body
      // mutation; that gap is exactly why v2 exists, so this assertion is
      // CRC-framed logs only.)
      std::set<std::pair<RowId, int64_t>> committed_facts;
      for (const State& s : history) {
        for (const auto& [rid, value] : s) committed_facts.insert({rid, value});
      }
      for (const auto& [rid, value] : got) {
        EXPECT_TRUE(committed_facts.count({rid, value}) > 0)
            << "row " << rid << " = " << value << " was never committed";
      }
    }
    // If the table survived, the database must accept new commits.
    if (recovered.GetTable("T").ok()) {
      EXPECT_TRUE(recovered.Insert("T", {Value(int64_t{4242})}).ok());
    }
    std::remove(path.c_str());
  }
}

// ---- CI loudness ----------------------------------------------------------

// ci.sh arms a probe via MOST_FAILPOINTS before running this suite; the
// registry parses the environment on first use. If the probe is armed but
// never counts a hit, env-based fault injection has silently broken.
TEST_F(CrashTortureTest, EnvArmedProbeFires) {
  const char* env = std::getenv("MOST_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("ci/torture_probe") == std::string::npos) {
    GTEST_SKIP() << "MOST_FAILPOINTS probe not armed (not the CI stage)";
  }
  auto& reg = FailpointRegistry::Instance();
  // Earlier fixtures DisarmAll() between iterations; re-parse the
  // environment to restore the probe exactly as startup arming did.
  ASSERT_TRUE(reg.ArmFromEnv().ok());
  EXPECT_TRUE(reg.Check("ci/torture_probe").ok());  // noop spec: counts only.
  EXPECT_GE(reg.triggered("ci/torture_probe"), 1u)
      << "environment-armed failpoint did not fire";
}

// Runs last (gtest preserves declaration order): the torture families must
// have actually injected faults. Zero fired failpoints means the harness
// no-opped, which must fail the build loudly.
TEST(CrashTortureSummary, InjectionsActuallyHappened) {
  EXPECT_GE(g_injections, 3 * kIterationsPerFamily);
  EXPECT_GE(g_injections, 200) << "acceptance floor: >= 200 injections";
  EXPECT_GE(FailpointRegistry::Instance().total_triggered(),
            static_cast<uint64_t>(2 * kIterationsPerFamily))
      << "failpoints never fired: the fault-injection harness is a no-op";
}

}  // namespace
}  // namespace most
