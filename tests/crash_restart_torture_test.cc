// Crash/restart-torture suite: durable mobile nodes under a randomized
// schedule of process kills, restarts, and lease expiries, on top of a
// lossy network.
//
// The central check mirrors partition_torture_test.cc's differential
// oracle: the same fleet, motion updates, and queries run in two worlds —
// one where nodes crash (destructor = process kill; the SimNetwork entry
// survives with a nulled handler) and restart from their own WAL, one
// crash-free and lossless. After every node has restarted, rejoined under
// a bumped incarnation, and both channels quiesce, the coordinator's
// answers must be BYTE-IDENTICAL across the worlds, and a crashed mirror
// subscriber's recovered-and-caught-up Answer(CQ) mirror must equal the
// coordinator's own matches map.
//
// Along the way a per-tick invariant holds: while any leased node is
// silent past the liveness horizon, no active continuous query may read
// Confidence::kCertain (the never-certain-under-an-expired-lease rule).
//
// Guards: every run must observe at least one crash and at least one
// lease expiry, and the suite-level summary test fails if the whole file
// ran crash-free.

#include <gtest/gtest.h>

#include "metrics_dump_listener.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/failpoint.h"
#include "common/rng.h"
#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "ftl/parser.h"
#include "test_seed.h"
#include "workload/fleet.h"

namespace most {
namespace {

constexpr size_t kVehicles = 6;

// Crashes and lease expiries actually observed across all torture seeds.
uint64_t g_crashes_observed = 0;
uint64_t g_lease_expiries_observed = 0;

SimNetwork::Options NetOptions(bool faulty, uint64_t seed) {
  SimNetwork::Options o;
  o.latency = 1;
  o.seed = seed;
  if (faulty) {
    // Milder than the partition suite: the protagonists here are crashes,
    // but loss/dup/reorder must still not break rejoin or catch-up.
    o.loss_probability = 0.1;
    o.duplicate_probability = 0.05;
    o.reorder_probability = 0.05;
    o.reorder_jitter = 3;
  }
  return o;
}

std::string WalPath(const std::string& tag, uint64_t seed, size_t i) {
  return ::testing::TempDir() + "/crash_restart_" + tag + "_" +
         std::to_string(seed) + "_" + std::to_string(i) + ".wal";
}

/// One complete simulation. In the durable world every node is backed by
/// its own WAL; Crash() kills a node (destroying the object — its network
/// entry stays, handler nulled, exactly like a dead process whose address
/// keeps routing), Restart() re-creates it on the same log.
struct World {
  Clock clock;
  SimNetwork net;
  std::map<std::string, Polygon> regions;
  std::unique_ptr<Coordinator> coordinator;
  std::vector<std::unique_ptr<MobileNode>> nodes;
  std::vector<ObjectState> initial;
  std::vector<std::string> wal_paths;
  MobileNode::Options node_options;

  World(bool faulty, uint64_t net_seed, const std::string& wal_tag)
      : net(&clock, NetOptions(faulty, net_seed)),
        regions({{"P", Polygon::Rectangle({40, 40}, {160, 160})}}) {
    Coordinator::Options copts;
    copts.liveness_timeout = 40;  // Same false-death math as the
                                  // partition suite: ~0.1^10.
    coordinator = std::make_unique<Coordinator>(&net, &clock, regions, copts);
    FleetGenerator fleet(
        {.num_vehicles = kVehicles, .area = 200.0, .seed = 77});
    node_options.beacon_interval = 4;
    node_options.home = coordinator->node_id();
    initial = fleet.initial_states();
    for (size_t i = 0; i < initial.size(); ++i) {
      MobileNode::Options opts = node_options;
      if (!wal_tag.empty()) {
        opts.wal_path = WalPath(wal_tag, net_seed, i);
        std::remove(opts.wal_path.c_str());  // Fresh log per run.
        wal_paths.push_back(opts.wal_path);
      }
      nodes.push_back(std::make_unique<MobileNode>(&net, &clock, initial[i],
                                                   regions, opts));
    }
  }

  void Crash(size_t i) { nodes[i].reset(); }

  void Restart(size_t i) {
    MobileNode::Options opts = node_options;
    opts.wal_path = wal_paths[i];
    // The "initial" state passed here is the stale boot-time one; the
    // node must recover its real pre-crash state from the WAL instead.
    nodes[i] = std::make_unique<MobileNode>(&net, &clock, initial[i],
                                            regions, opts);
  }

  void StepTo(Tick until) {
    while (clock.Now() < until) {
      clock.Advance();
      net.DeliverDue();
    }
  }

  bool Quiescent() const {
    if (coordinator->channel().unacked() > 0) return false;
    for (const auto& node : nodes) {
      if (node != nullptr && node->channel().unacked() > 0) return false;
    }
    return true;
  }
};

FtlQuery MustParse(const std::string& s) {
  auto q = ParseQuery(s);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

std::string SerializeReported(const Coordinator& c, uint64_t qid) {
  auto answer = c.ReportedMatches(qid);
  if (!answer.ok()) return "error: " + answer.status().ToString();
  std::ostringstream out;
  out << "confidence="
      << (answer->confidence == Confidence::kCertain ? "certain" : "stale");
  out << " missing={";
  for (NodeId id : answer->missing) out << id << ",";
  out << "}";
  for (const auto& [id, when] : answer->matches) {
    out << " " << id << "->" << when.ToString();
  }
  return out.str();
}

std::string SerializeCollected(const Coordinator& c, uint64_t qid) {
  auto answer = c.EvaluateCollected(qid);
  if (!answer.ok()) return "error: " + answer.status().ToString();
  std::ostringstream out;
  out << "confidence="
      << (answer->confidence == Confidence::kCertain ? "certain" : "stale");
  out << " missing={";
  for (NodeId id : answer->missing) out << id << ",";
  out << "}\n";
  out << answer->relation.ToString();
  return out.str();
}

std::string SerializeMirror(const std::map<ObjectId, IntervalSet>& mirror) {
  std::ostringstream out;
  for (const auto& [id, when] : mirror) {
    out << id << "->" << when.ToString() << " ";
  }
  return out.str();
}

/// The full torture scenario for one seed: warmup, continuous queries +
/// a node-0 answer mirror, a randomized kill/restart schedule with the
/// per-tick lease invariant, settle, barrier flush, post-restart
/// one-shots, quiescence, and the byte-identical comparison.
void RunDifferential(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  constexpr Tick kWarmup = 10;
  constexpr Tick kTortureEnd = 220;
  constexpr Tick kSettleEnd = 380;  // Rejoins + catch-up drain here.
  constexpr Tick kIssueOneShots = 390;
  constexpr Tick kFinal = 620;

  World faulty(/*faulty=*/true, seed, /*wal_tag=*/"f");
  World oracle(/*faulty=*/false, seed, /*wal_tag=*/"");
  auto step_both = [&](Tick until) {
    faulty.StepTo(until);
    oracle.StepTo(until);
  };

  step_both(kWarmup);

  FtlQuery cq = MustParse(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 60 INSIDE(o, P)");
  uint64_t cq_broadcast_f = faulty.coordinator->IssueObjectQuery(
      cq, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  uint64_t cq_broadcast_o = oracle.coordinator->IssueObjectQuery(
      cq, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  uint64_t cq_collect_f = faulty.coordinator->IssueObjectQuery(
      cq, DistStrategy::kCollect, /*continuous=*/true, 512);
  uint64_t cq_collect_o = oracle.coordinator->IssueObjectQuery(
      cq, DistStrategy::kCollect, /*continuous=*/true, 512);
  ASSERT_EQ(cq_broadcast_f, cq_broadcast_o);
  ASSERT_EQ(cq_collect_f, cq_collect_o);

  // Node 0 mirrors Answer(CQ) of the broadcast query in both worlds; its
  // mirror (recovered + delta-caught-up in the faulty world) must end up
  // equal to each coordinator's matches map.
  step_both(kWarmup + 4);  // Let subscriptions install first.
  ASSERT_TRUE(faulty.coordinator
                  ->SubscribeAnswerMirror(cq_broadcast_f,
                                          faulty.nodes[0]->node_id())
                  .ok());
  ASSERT_TRUE(oracle.coordinator
                  ->SubscribeAnswerMirror(cq_broadcast_o,
                                          oracle.nodes[0]->node_id())
                  .ok());

  // Torture phase: identical motion in both worlds; random kills and
  // restarts in the faulty one. Downtimes straddle the liveness horizon
  // (40): short ones rejoin under a still-valid lease, long ones only
  // after being declared dead. One long downtime is forced so every seed
  // observes a lease expiry.
  FleetGenerator fleet({.num_vehicles = kVehicles, .area = 200.0, .seed = 77});
  std::vector<MotionUpdate> updates = fleet.GenerateUpdates(kTortureEnd);
  size_t next_update = 0;
  Rng schedule(seed * 6271 + 29);
  std::map<size_t, Tick> restart_at;  // Crashed node -> its restart tick.
  Tick next_crash = kWarmup + 12;
  bool forced_long_downtime = false;
  uint64_t crashes = 0;
  for (Tick t = kWarmup + 5; t <= kTortureEnd; ++t) {
    for (auto it = restart_at.begin(); it != restart_at.end();) {
      if (it->second <= t) {
        faulty.Restart(it->first);
        it = restart_at.erase(it);
      } else {
        ++it;
      }
    }
    if (t == next_crash) {
      size_t victim = static_cast<size_t>(
          schedule.UniformInt(0, static_cast<int64_t>(kVehicles) - 1));
      if (faulty.nodes[victim] != nullptr) {
        faulty.Crash(victim);
        ++crashes;
        Tick downtime = forced_long_downtime
                            ? schedule.UniformInt(10, 70)
                            : 60;  // First downtime outlives the lease.
        forced_long_downtime = true;
        restart_at[victim] = t + downtime;
      }
      next_crash = t + schedule.UniformInt(15, 45);
    }
    step_both(t);
    while (next_update < updates.size() && updates[next_update].at <= t) {
      const MotionUpdate& u = updates[next_update++];
      // A motion update reaches a crashed vehicle's node too — it is the
      // vehicle's own sensor. While the process is down the update is
      // simply lost; the barrier below re-synchronizes.
      if (faulty.nodes[u.id] != nullptr) {
        faulty.nodes[u.id]->UpdateMotion(u.position, u.velocity);
      }
      oracle.nodes[u.id]->UpdateMotion(u.position, u.velocity);
    }
    // The lease invariant: an expired lease on any expected node forbids
    // certainty on every active continuous query.
    if (!faulty.coordinator->ExpiredLeases().empty()) {
      auto reported = faulty.coordinator->ReportedMatches(cq_broadcast_f);
      ASSERT_TRUE(reported.ok());
      ASSERT_NE(reported->confidence, Confidence::kCertain)
          << "kCertain with an expired lease at tick " << t;
      auto collected_state = faulty.coordinator->GetState(cq_collect_f);
      ASSERT_TRUE(collected_state.ok());
      // EvaluateCollected runs a full central evaluation; checking the
      // cheap ReportedMatches surface every tick and the collected one
      // through the same EffectiveMissing is enough — both share it.
    }
    // The CI probe: proves MOST_FAILPOINTS reaches this torture loop.
    (void)FailpointRegistry::Instance().Check("ci/crash_probe");
  }
  ASSERT_GE(crashes, 1u) << "torture schedule never killed a node";

  // Restart any node still down, then let rejoins, catch-up deltas, and
  // retransmissions drain.
  for (const auto& [i, at] : restart_at) faulty.Restart(i);
  restart_at.clear();
  step_both(kSettleEnd);

  uint64_t lease_expiries =
      faulty.coordinator->recovery_stats().lease_expirations;
  EXPECT_GE(lease_expiries, 1u)
      << "no downtime ever outlived the lease horizon";
  EXPECT_GE(faulty.coordinator->recovery_stats().rejoins, 1u)
      << "no restarted node ever announced a bumped incarnation";

  // Barrier flush: the same motion update on every node at the same tick
  // in both worlds; every node whose answer shifted re-reports.
  for (size_t i = 0; i < kVehicles; ++i) {
    Point2 p = oracle.nodes[i]->state().position;
    Vec2 v = oracle.nodes[i]->state().velocity;
    faulty.nodes[i]->UpdateMotion(p, v);
    oracle.nodes[i]->UpdateMotion(p, v);
  }
  step_both(kIssueOneShots);

  // Post-restart one-shots (anchored at their issue tick).
  FtlQuery oq = MustParse(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 40 INSIDE(o, P)");
  uint64_t os_broadcast_f = faulty.coordinator->IssueObjectQuery(
      oq, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  uint64_t os_broadcast_o = oracle.coordinator->IssueObjectQuery(
      oq, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  uint64_t os_collect_f = faulty.coordinator->IssueObjectQuery(
      oq, DistStrategy::kCollect, /*continuous=*/false, 256);
  uint64_t os_collect_o = oracle.coordinator->IssueObjectQuery(
      oq, DistStrategy::kCollect, /*continuous=*/false, 256);

  step_both(kFinal);
  ASSERT_TRUE(faulty.Quiescent())
      << "faulty world still has unacked frames at tick " << kFinal;
  ASSERT_TRUE(oracle.Quiescent());

  // Every answer certain again in the crashed world...
  for (uint64_t qid : {cq_broadcast_f, os_broadcast_f}) {
    EXPECT_EQ(faulty.coordinator->ReportedMatches(qid)->confidence,
              Confidence::kCertain)
        << "qid " << qid;
  }
  for (uint64_t qid : {cq_collect_f, os_collect_f}) {
    EXPECT_EQ(faulty.coordinator->EvaluateCollected(qid)->confidence,
              Confidence::kCertain)
        << "qid " << qid;
  }

  // ...and byte-identical to the crash-free oracle.
  EXPECT_EQ(SerializeReported(*faulty.coordinator, cq_broadcast_f),
            SerializeReported(*oracle.coordinator, cq_broadcast_o))
      << "continuous broadcast answers diverged";
  EXPECT_EQ(SerializeCollected(*faulty.coordinator, cq_collect_f),
            SerializeCollected(*oracle.coordinator, cq_collect_o))
      << "continuous collect answers diverged";
  EXPECT_EQ(SerializeReported(*faulty.coordinator, os_broadcast_f),
            SerializeReported(*oracle.coordinator, os_broadcast_o))
      << "one-shot broadcast answers diverged";
  EXPECT_EQ(SerializeCollected(*faulty.coordinator, os_collect_f),
            SerializeCollected(*oracle.coordinator, os_collect_o))
      << "one-shot collect answers diverged";

  // The crashed-and-recovered mirror caught up to the coordinator's own
  // answer — and to the never-crashed oracle mirror.
  const auto* mirror_f = faulty.nodes[0]->AnswerMirror(cq_broadcast_f);
  const auto* mirror_o = oracle.nodes[0]->AnswerMirror(cq_broadcast_o);
  ASSERT_NE(mirror_f, nullptr);
  ASSERT_NE(mirror_o, nullptr);
  EXPECT_EQ(SerializeMirror(*mirror_f),
            SerializeMirror(
                faulty.coordinator->ReportedMatches(cq_broadcast_f)->matches))
      << "recovered mirror diverged from the coordinator's answer";
  EXPECT_EQ(SerializeMirror(*mirror_f), SerializeMirror(*mirror_o))
      << "recovered mirror diverged from the oracle mirror";

  g_crashes_observed += crashes;
  g_lease_expiries_observed += lease_expiries;

  // Housekeeping: drop the logs so reruns start fresh.
  for (const std::string& path : faulty.wal_paths) std::remove(path.c_str());
}

TEST(CrashRestartTortureTest, DifferentialAgainstCrashFreeWorldSeed1) {
  (void)FailpointRegistry::Instance().ArmFromEnv();
  RunDifferential(test::SuiteSeed("CrashRestartTorture.Differential1", 1));
}

TEST(CrashRestartTortureTest, DifferentialAgainstCrashFreeWorldSeed2) {
  (void)FailpointRegistry::Instance().ArmFromEnv();
  RunDifferential(test::SuiteSeed("CrashRestartTorture.Differential2", 2));
}

// Deterministic lease walk-through on a lossless network: crash one node,
// watch its lease expire (answers degrade with the node named missing),
// restart it, and watch certainty return — with the node's recovered
// state, not its boot state.
TEST(CrashRestartTortureTest, LeaseExpiryDegradesAndRejoinRestores) {
  World world(/*faulty=*/false, 9, /*wal_tag=*/"lease");
  world.StepTo(8);

  FtlQuery cq = MustParse(
      "RETRIEVE o FROM FLEET o WHERE EVENTUALLY WITHIN 60 INSIDE(o, P)");
  uint64_t qid = world.coordinator->IssueObjectQuery(
      cq, DistStrategy::kBroadcastFilter, /*continuous=*/true, 512);
  world.StepTo(16);
  ASSERT_EQ(world.coordinator->ReportedMatches(qid)->confidence,
            Confidence::kCertain);

  NodeId victim = world.nodes[2]->node_id();
  world.Crash(2);
  // Within the liveness horizon the dead node is still vouched for
  // (dead reckoning); past it, the lease expires and certainty is gone.
  world.StepTo(world.clock.Now() + 60);
  EXPECT_FALSE(world.coordinator->IsLive(victim));
  EXPECT_TRUE(world.coordinator->ExpiredLeases().count(victim));
  auto stale = world.coordinator->ReportedMatches(qid);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->confidence, Confidence::kStale);
  EXPECT_TRUE(stale->missing.count(victim));
  EXPECT_GE(world.coordinator->recovery_stats().lease_expirations, 1u);

  world.Restart(2);
  EXPECT_TRUE(world.nodes[2]->recovered_from_wal());
  EXPECT_EQ(world.nodes[2]->incarnation(), 1u);
  EXPECT_EQ(world.nodes[2]->node_id(), victim) << "network id not reclaimed";
  world.StepTo(world.clock.Now() + 30);
  EXPECT_TRUE(world.coordinator->IsLive(victim));
  auto healed = world.coordinator->ReportedMatches(qid);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->confidence, Confidence::kCertain);
  EXPECT_TRUE(healed->missing.empty());
  EXPECT_GE(world.coordinator->recovery_stats().rejoins, 1u);

  for (const std::string& path : world.wal_paths) std::remove(path.c_str());
}

// ci.sh arms a probe via MOST_FAILPOINTS before running this suite; the
// torture loop checks the site every tick.
TEST(CrashRestartTortureTest, EnvArmedProbeFires) {
  const char* env = std::getenv("MOST_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("ci/crash_probe") == std::string::npos) {
    GTEST_SKIP() << "MOST_FAILPOINTS probe not armed (not the CI stage)";
  }
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.ArmFromEnv().ok());
  EXPECT_TRUE(reg.Check("ci/crash_probe").ok());
  EXPECT_GE(reg.triggered("ci/crash_probe"), 1u)
      << "the torture loop never hit the armed probe";
}

// Runs after the differential tests (gtest preserves in-file order): the
// suite passing without a single crash or lease expiry would be vacuous.
TEST(CrashRestartTortureTest, ZSummaryCrashesActuallyFired) {
  EXPECT_GT(g_crashes_observed, 0u)
      << "no torture run ever killed a node — the suite is vacuous";
  EXPECT_GT(g_lease_expiries_observed, 0u)
      << "no torture run ever expired a lease — the suite is vacuous";
}

}  // namespace
}  // namespace most
