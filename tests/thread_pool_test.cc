#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace most {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == 100) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return count.load() == 100; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
    pool.Shutdown();  // Must execute everything already queued.
    EXPECT_EQ(count.load(), 64);
    pool.Shutdown();  // Idempotent.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPoolTest, DestructorJoinsWithPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 256; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
    // Destructor must drain and join without losing tasks.
  }
  EXPECT_EQ(count.load(), 256);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsSeriallyInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 100, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, SingleWorkerPoolRunsSeriallyInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  ParallelFor(&pool, 50, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 50u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, ZeroAndTinyIterationCounts) {
  ThreadPool pool(4);
  int ran = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  std::atomic<int> one{0};
  ParallelFor(&pool, 1, [&](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
  std::atomic<int> few{0};
  ParallelFor(&pool, 3, [&](size_t) { few.fetch_add(1); });
  EXPECT_EQ(few.load(), 3);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Inner loops run from inside pool tasks; the caller-participation
  // design must make progress even with every worker busy.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  ParallelFor(&pool, 8, [&](size_t) {
    ParallelFor(&pool, 32, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 32u);
}

TEST(ParallelForTest, ConcurrentLoopsOnOnePool) {
  ThreadPool pool(4);
  std::atomic<size_t> a{0}, b{0};
  std::thread t1([&] { ParallelFor(&pool, 5000, [&](size_t) { a++; }); });
  std::thread t2([&] { ParallelFor(&pool, 5000, [&](size_t) { b++; }); });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 5000u);
  EXPECT_EQ(b.load(), 5000u);
}

TEST(ParallelForTest, ResultsIndependentOfThreadCount) {
  // The parallel evaluator's determinism rests on this shape: workers fill
  // disjoint slots, the caller merges in index order.
  constexpr size_t kN = 1024;
  auto run = [&](ThreadPool* pool) {
    std::vector<uint64_t> out(kN);
    ParallelFor(pool, kN, [&](size_t i) { out[i] = i * i + 7; });
    return out;
  };
  std::vector<uint64_t> serial = run(nullptr);
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(run(&pool), serial) << threads << " threads";
  }
}

}  // namespace
}  // namespace most
