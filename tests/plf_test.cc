#include "ftl/plf.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace most {
namespace {

const Interval kWindow{0, 100};

TEST(PlfTest, ConstantAndTimeLine) {
  Plf c = Plf::Constant(kWindow, 7.5);
  EXPECT_TRUE(c.IsConstant());
  EXPECT_DOUBLE_EQ(c.At(0), 7.5);
  EXPECT_DOUBLE_EQ(c.At(100), 7.5);

  Plf t = Plf::TimeLine(kWindow);
  EXPECT_FALSE(t.IsConstant());
  EXPECT_DOUBLE_EQ(t.At(0), 0.0);
  EXPECT_DOUBLE_EQ(t.At(42), 42.0);
}

TEST(PlfTest, ArithmeticOps) {
  Plf t = Plf::TimeLine(kWindow);
  Plf c = Plf::Constant(kWindow, 10.0);
  EXPECT_DOUBLE_EQ(t.Add(c).At(5), 15.0);
  EXPECT_DOUBLE_EQ(t.Sub(c).At(5), -5.0);
  EXPECT_DOUBLE_EQ(t.Negate().At(5), -5.0);
  EXPECT_DOUBLE_EQ(t.Scale(3.0).At(5), 15.0);
  EXPECT_DOUBLE_EQ(t.AddConstant(1.0).At(5), 6.0);

  auto prod = t.Mul(c);
  ASSERT_TRUE(prod.ok());
  EXPECT_DOUBLE_EQ(prod->At(5), 50.0);
  auto quot = t.Div(c);
  ASSERT_TRUE(quot.ok());
  EXPECT_DOUBLE_EQ(quot->At(5), 0.5);

  // Nonlinear products and division by varying terms are rejected.
  EXPECT_FALSE(t.Mul(t).ok());
  EXPECT_FALSE(c.Div(t).ok());
  EXPECT_FALSE(c.Div(Plf::Constant(kWindow, 0.0)).ok());
}

TEST(PlfTest, AddAlignsDifferentPieceBoundaries) {
  // f: slope 1 until 50, then slope 0; g: slope 0 until 30, then slope 2.
  Plf f = Plf::FromPieces(kWindow, {{Interval(0, 49), 0.0, 1.0},
                                    {Interval(50, 100), 50.0, 0.0}});
  Plf g = Plf::FromPieces(kWindow, {{Interval(0, 29), 5.0, 0.0},
                                    {Interval(30, 100), 5.0, 2.0}});
  Plf sum = f.Add(g);
  for (Tick t : {0, 10, 29, 30, 49, 50, 80, 100}) {
    EXPECT_NEAR(sum.At(t), f.At(t) + g.At(t), 1e-9) << t;
  }
  EXPECT_EQ(sum.pieces().size(), 3u);  // Cuts at 30 and 50.
}

TEST(PlfTest, TicksLeSimpleCrossing) {
  // t <= 40.
  Plf t = Plf::TimeLine(kWindow);
  Plf c = Plf::Constant(kWindow, 40.0);
  EXPECT_EQ(t.TicksLe(c), IntervalSet(Interval(0, 40)));
  EXPECT_EQ(t.TicksGe(c), IntervalSet(Interval(40, 100)));
  EXPECT_EQ(t.TicksEq(c), IntervalSet(Interval(40, 40)));
}

TEST(PlfTest, TicksLeNonIntegerCrossing) {
  // 2t <= 41 -> t <= 20.5 -> ticks 0..20.
  Plf t = Plf::TimeLine(kWindow).Scale(2.0);
  Plf c = Plf::Constant(kWindow, 41.0);
  EXPECT_EQ(t.TicksLe(c), IntervalSet(Interval(0, 20)));
}

TEST(PlfTest, CompareConstantFunctions) {
  Plf a = Plf::Constant(kWindow, 1.0);
  Plf b = Plf::Constant(kWindow, 2.0);
  EXPECT_EQ(a.TicksLe(b), IntervalSet(kWindow));
  EXPECT_TRUE(a.TicksGe(b).empty());
  EXPECT_EQ(a.TicksEq(a), IntervalSet(kWindow));
}

class PlfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Plf RandomPlf(Rng* rng, Interval window) {
  // 1-3 pieces on a 0.25 grid.
  int pieces = static_cast<int>(rng->UniformInt(1, 3));
  std::vector<Tick> cuts = {window.begin};
  for (int i = 1; i < pieces; ++i) {
    cuts.push_back(rng->UniformInt(window.begin + 1, window.end - 1));
  }
  cuts.push_back(window.end + 1);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<Plf::Piece> ps;
  double value = 0.25 * static_cast<double>(rng->UniformInt(-80, 80));
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    Plf::Piece p;
    p.ticks = Interval(cuts[i], cuts[i + 1] - 1);
    p.value_at_begin = value;
    p.slope = 0.25 * static_cast<double>(rng->UniformInt(-8, 8));
    value = p.At(p.ticks.end) + p.slope;  // Keep it continuous.
    ps.push_back(p);
  }
  return Plf::FromPieces(window, std::move(ps));
}

TEST_P(PlfPropertyTest, ComparisonsMatchPointwiseEvaluation) {
  Rng rng(GetParam());
  Interval window(0, 60);
  for (int round = 0; round < 50; ++round) {
    Plf a = RandomPlf(&rng, window);
    Plf b = RandomPlf(&rng, window);
    IntervalSet le = a.TicksLe(b);
    IntervalSet ge = a.TicksGe(b);
    IntervalSet eq = a.TicksEq(b);
    for (Tick t = window.begin; t <= window.end; ++t) {
      double diff = a.At(t) - b.At(t);
      EXPECT_EQ(le.Contains(t), diff <= 1e-9) << "t=" << t;
      EXPECT_EQ(ge.Contains(t), diff >= -1e-9) << "t=" << t;
      EXPECT_EQ(eq.Contains(t), std::abs(diff) <= 1e-9) << "t=" << t;
    }
  }
}

TEST_P(PlfPropertyTest, AddSubMatchPointwise) {
  Rng rng(GetParam() + 99);
  Interval window(0, 60);
  for (int round = 0; round < 30; ++round) {
    Plf a = RandomPlf(&rng, window);
    Plf b = RandomPlf(&rng, window);
    Plf sum = a.Add(b);
    Plf diff = a.Sub(b);
    for (Tick t = window.begin; t <= window.end; ++t) {
      EXPECT_NEAR(sum.At(t), a.At(t) + b.At(t), 1e-9);
      EXPECT_NEAR(diff.At(t), a.At(t) - b.At(t), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlfPropertyTest,
                         ::testing::Values(1, 2, 3, 1997));

}  // namespace
}  // namespace most
