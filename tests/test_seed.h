#ifndef MOST_TESTS_TEST_SEED_H_
#define MOST_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <vector>

namespace most::test {

/// True when MOST_TEST_SEED pins this run to a single seed. Corpus-size
/// assertions (">= N random cases") should be skipped in that mode — a
/// one-seed replay is deliberately smaller than the default sweep.
inline bool SeedOverridden() {
  return std::getenv("MOST_TEST_SEED") != nullptr;
}

/// Seeds for a randomized suite. Every randomized/torture suite draws its
/// seeds through this helper so failures are reproducible from the log:
/// the seeds in effect are printed, and MOST_TEST_SEED=<n> replaces the
/// default sweep with exactly that one seed (the way to replay a logged
/// failure without recompiling).
inline std::vector<uint64_t> SuiteSeeds(
    const char* suite, std::initializer_list<uint64_t> defaults) {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("MOST_TEST_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
    std::printf("[seeds] %s: MOST_TEST_SEED override -> %llu\n", suite,
                static_cast<unsigned long long>(seeds[0]));
  } else {
    seeds.assign(defaults);
    std::printf("[seeds] %s: MOST_TEST_SEED unset, defaults ->", suite);
    for (uint64_t s : seeds) {
      std::printf(" %llu", static_cast<unsigned long long>(s));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
  return seeds;
}

/// Single-seed variant for suites parameterized by one base seed (e.g.
/// torture loops deriving per-iteration seeds as base + i).
inline uint64_t SuiteSeed(const char* suite, uint64_t default_seed) {
  return SuiteSeeds(suite, {default_seed})[0];
}

}  // namespace most::test

#endif  // MOST_TESTS_TEST_SEED_H_
