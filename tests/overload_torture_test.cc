// Overload-torture harness (docs/robustness.md): drive the engine with
// randomized update storms under deliberately tiny resource budgets and
// armed failpoints, and verify graceful degradation against an
// unconstrained oracle:
//
//   * soundness — a query whose refresh was shed serves its previous
//     answer with every tuple tagged kStale (excluded from the must
//     answer); a query that is not degraded answers byte-identically to
//     the oracle. Emitted bindings never stray outside what the oracle
//     has ever emitted — degradation may lose freshness, never invent
//     tuples;
//   * bounded memory — the byte-budgeted interval cache never exceeds its
//     cap, whatever the storm does;
//   * recovery — when the pressure lifts (governor limits cleared, quiet
//     ticks past the cooldown), every query converges back to the
//     oracle's exact answer;
//   * storage pressure — an armed wal/append/enospc failpoint degrades
//     the database to read-only-in-effect (writes fail and roll back,
//     reads keep working, the governor's sticky flag goes up) until a
//     checkpoint succeeds again through the capped retry backoff;
//   * bounded channels — a lossy storm against a capped reliable endpoint
//     never exceeds the unacked cap, delivers every payload at most
//     once, and keeps working after dead-peer eviction.
//
// A summary test fails loudly if the storms never actually shed anything
// (a harness that exercises no pressure would pass vacuously), and ci.sh
// arms a MOST_FAILPOINTS probe through this binary (ASan) to prove the
// env plumbing reaches the overload loop.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metrics_dump_listener.h"

#include "common/failpoint.h"
#include "common/rng.h"
#include "distributed/network.h"
#include "distributed/reliable_channel.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "obs/governor.h"
#include "storage/durable_database.h"
#include "test_seed.h"

namespace most {
namespace {

constexpr size_t kCars = 12;
constexpr int kStormRounds = 40;

// Pressure actually observed across all torture seeds; the summary test
// at the bottom fails loudly if the whole suite ran pressure-free.
uint64_t g_query_sheds = 0;
uint64_t g_cache_evictions = 0;
uint64_t g_channel_sheds = 0;

class OverloadTortureTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    // Leave no limits or sticky health state behind for other suites in
    // this binary.
    ResourceGovernor::Global().set_limits({});
    ResourceGovernor::Global().ResetStateForTest();
  }
};

FtlQuery MustParse(const std::string& s) {
  auto q = ParseQuery(s);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

/// A world both managers share: one database, kCars cars with randomized
/// motion, one region. The governed and oracle managers both listen to
/// its updates.
struct QueryWorld {
  MostDatabase db;
  std::vector<ObjectId> cars;

  explicit QueryWorld(Rng* rng) {
    EXPECT_TRUE(db.CreateClass("CARS", {{"PRICE", false, ValueType::kDouble}},
                               /*spatial=*/true)
                    .ok());
    EXPECT_TRUE(
        db.DefineRegion("P", Polygon::Rectangle({0, 0}, {60, 60})).ok());
    for (size_t i = 0; i < kCars; ++i) {
      auto obj = db.CreateObject("CARS");
      EXPECT_TRUE(obj.ok());
      if (!obj.ok()) continue;
      cars.push_back((*obj)->id());
      Jolt(rng, cars.back());
    }
  }

  void Jolt(Rng* rng, ObjectId id) {
    Point2 pos{rng->UniformDouble(-40, 100), rng->UniformDouble(-40, 100)};
    Vec2 vel{rng->UniformDouble(-2, 2), rng->UniformDouble(-2, 2)};
    EXPECT_TRUE(db.SetMotion("CARS", id, pos, vel).ok());
  }
};

std::string Key(const std::vector<ObjectId>& binding) {
  std::string out;
  for (ObjectId id : binding) out += std::to_string(id) + ",";
  return out;
}

// The central differential check: the same queries over the same world in
// a governed manager (tiny budgets through the governor + its own queue
// and cooldown knobs) and an oracle manager that opts out of the governor
// with explicitly enormous budgets.
TEST_F(OverloadTortureTest, GovernedStormDegradesSoundlyAndRecovers) {
  const std::vector<uint64_t> seeds =
      test::SuiteSeeds("Overload.Storm", {1997, 42, 20260809});
  const std::vector<std::string> query_texts = {
      "RETRIEVE o FROM CARS o WHERE INSIDE(o, P)",
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 50 INSIDE(o, P)",
      // The join is the budget-buster: kCars^2 candidate rows trip the
      // governor's max_rows while the single-variable queries fit.
      "RETRIEVE o, n FROM CARS o, CARS n WHERE DIST(o, n) <= 25",
  };
  constexpr size_t kCacheCap = 2048;

  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    QueryWorld world(&rng);

    // Storm-phase pressure comes from the governor so it can be lifted
    // later without touching the managers.
    ResourceGovernor::Global().ResetStateForTest();
    ResourceGovernor::Limits limits;
    limits.refresh_budget.max_rows = 64;  // < kCars^2, > kCars.
    ResourceGovernor::Global().set_limits(limits);

    QueryManager::Options governed_opts;
    governed_opts.horizon = 4096;  // No window expiry inside the run.
    governed_opts.enable_interval_cache = true;
    governed_opts.interval_cache_max_bytes = kCacheCap;
    governed_opts.refresh_queue_limit = 2;
    governed_opts.degrade_cooldown_ticks = 3;
    QueryManager governed(&world.db, governed_opts);

    QueryManager::Options oracle_opts;
    oracle_opts.horizon = 4096;
    oracle_opts.enable_interval_cache = true;
    // Fully-specified huge budget: skips the governor fallback entirely,
    // so the oracle stays unconstrained while the governor is armed.
    oracle_opts.refresh_budget = {uint64_t{1} << 60, size_t{1} << 50,
                                  size_t{1} << 50};
    QueryManager oracle(&world.db, oracle_opts);

    std::vector<QueryManager::QueryId> gq, oq;
    for (const std::string& text : query_texts) {
      FtlQuery q = MustParse(text);
      auto g = governed.RegisterContinuous(q);
      auto o = oracle.RegisterContinuous(q);
      ASSERT_TRUE(g.ok() && o.ok());
      gq.push_back(*g);
      oq.push_back(*o);
    }

    // Every binding the oracle has ever emitted, per query: the governed
    // manager's (possibly stale) tuples must never leave this set.
    std::vector<std::set<std::string>> oracle_seen(query_texts.size());

    auto check_round = [&]() {
      for (size_t i = 0; i < gq.size(); ++i) {
        auto oans = oracle.ContinuousAnswer(oq[i]);
        ASSERT_TRUE(oans.ok()) << oans.status();
        for (const AnswerTuple& t : *oans) {
          oracle_seen[i].insert(Key(t.binding));
        }
        auto info = governed.QueryDegradeInfo(gq[i]);
        ASSERT_TRUE(info.ok()) << info.status();
        auto gans = governed.ContinuousAnswer(gq[i]);
        ASSERT_TRUE(gans.ok()) << gans.status();
        // ContinuousAnswer may itself have refreshed (and shed); re-read
        // the degrade state it left behind.
        info = governed.QueryDegradeInfo(gq[i]);
        ASSERT_TRUE(info.ok());
        if (info->reason == DegradeReason::kNone) {
          EXPECT_EQ(*gans, *oans)
              << "non-degraded answer diverged from the oracle (query "
              << query_texts[i] << ")";
        } else {
          EXPECT_FALSE(info->detail.empty());
          EXPECT_GE(info->at, 0);
          for (const AnswerTuple& t : *gans) {
            EXPECT_EQ(t.confidence, Confidence::kStale)
                << "degraded answers must not vouch for any tuple";
            EXPECT_TRUE(oracle_seen[i].count(Key(t.binding)))
                << "degraded answer invented binding " << Key(t.binding);
          }
          // The must-answer refuses degraded tuples; the may-answer
          // carries them.
          auto must = governed.CurrentAnswer(gq[i]);
          ASSERT_TRUE(must.ok());
          EXPECT_TRUE(must->empty());
        }
        ASSERT_NE(governed.interval_cache(), nullptr);
        EXPECT_LE(governed.interval_cache()->ApproxBytes(), kCacheCap)
            << "interval cache exceeded its byte budget";
      }
    };

    for (int round = 0; round < kStormRounds; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      const int updates = static_cast<int>(rng.UniformInt(1, 4));
      for (int u = 0; u < updates; ++u) {
        world.Jolt(&rng,
                   world.cars[static_cast<size_t>(
                       rng.UniformInt(0, static_cast<int64_t>(kCars) - 1))]);
      }
      world.db.clock().Advance(rng.UniformInt(1, 3));
      ASSERT_TRUE(oracle.TickAll().ok());
      ASSERT_TRUE(governed.TickAll().ok());
      check_round();
    }

    // The storm must have actually shed something for this seed.
    uint64_t sheds = 0;
    for (QueryManager::QueryId id : gq) {
      sheds += governed.QueryDegradeInfo(id)->shed_refreshes;
    }
    EXPECT_GT(sheds, 0u) << "storm ran pressure-free: harness is a no-op";
    g_query_sheds += sheds;
    g_cache_evictions += governed.interval_cache()->stats().evictions;

    // Lift the pressure: clear the governor and let quiet ticks drain the
    // cooldowns and the refresh queue. Every query must converge back to
    // the oracle's exact answer.
    ResourceGovernor::Global().set_limits({});
    bool converged = false;
    for (int t = 0; t < 32 && !converged; ++t) {
      world.db.clock().Advance(1);
      ASSERT_TRUE(oracle.TickAll().ok());
      ASSERT_TRUE(governed.TickAll().ok());
      converged = true;
      for (QueryManager::QueryId id : gq) {
        if (governed.QueryDegradeInfo(id)->reason != DegradeReason::kNone) {
          converged = false;
        }
      }
    }
    ASSERT_TRUE(converged) << "queries still degraded after pressure lifted";
    for (size_t i = 0; i < gq.size(); ++i) {
      auto gans = governed.ContinuousAnswer(gq[i]);
      auto oans = oracle.ContinuousAnswer(oq[i]);
      ASSERT_TRUE(gans.ok() && oans.ok());
      EXPECT_EQ(*gans, *oans)
          << "post-recovery answer diverged (query " << query_texts[i] << ")";
    }
  }
}

// An armed evaluator-checkpoint failpoint is a *genuine* error, not a
// budget exhaustion: it must surface to the caller (not be silently
// absorbed as a shed) and stop mattering the moment it is disarmed. The
// site only fires while a budget gate is active, so the unbudgeted oracle
// path never pays for it.
TEST_F(OverloadTortureTest, EvalCheckpointFailpointSurfacesAndRecovers) {
  Rng rng(7);
  QueryWorld world(&rng);
  QueryManager::Options opts;
  opts.horizon = 1024;
  opts.refresh_budget.max_rows = 1u << 20;  // Gate active, never trips.
  QueryManager qm(&world.db, opts);
  auto id = qm.RegisterContinuous(
      MustParse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(qm.ContinuousAnswer(*id).ok());

  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("ftl/eval/checkpoint", "error").ok());
  world.Jolt(&rng, world.cars[0]);
  world.db.clock().Advance(1);
  EXPECT_FALSE(qm.TickAll().ok()) << "injected eval fault must surface";
  EXPECT_GT(FailpointRegistry::Instance().triggered("ftl/eval/checkpoint"),
            0u);

  FailpointRegistry::Instance().Disarm("ftl/eval/checkpoint");
  world.db.clock().Advance(1);
  EXPECT_TRUE(qm.TickAll().ok());
  auto answer = qm.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(qm.QueryDegradeInfo(*id)->reason, DegradeReason::kNone);
}

TEST_F(OverloadTortureTest, WalEnospcDegradesStorageUntilCheckpointHeals) {
  const std::string path = ::testing::TempDir() + "/overload_enospc_" +
                           std::to_string(getpid()) + ".log";
  std::remove(path.c_str());
  ResourceGovernor& gov = ResourceGovernor::Global();
  gov.ResetStateForTest();

  DurableDatabase db;
  ASSERT_TRUE(db.Open(path).ok());
  ASSERT_TRUE(db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.Insert("T", {Value(i)}).ok());
  }
  auto live_rows = [&]() {
    size_t n = 0;
    auto table = db.GetTable("T");
    EXPECT_TRUE(table.ok());
    if (!table.ok()) return n;
    (*table)->Scan([&](RowId, const Row&) { ++n; });
    return n;
  };
  ASSERT_EQ(live_rows(), 4u);
  EXPECT_FALSE(gov.storage_degraded());

  // Device full: every append fails before writing a byte.
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.Arm("wal/append/enospc", "error").ok());
  EXPECT_FALSE(db.Insert("T", {Value(int64_t{99})}).ok());
  EXPECT_TRUE(gov.storage_degraded()) << "failed commit must raise the flag";
  EXPECT_FALSE(gov.storage_degraded_detail().empty());
  EXPECT_EQ(live_rows(), 4u) << "failed insert must roll back";
  EXPECT_TRUE(db.GetTable("T").ok()) << "reads must survive storage pressure";

  // Checkpoint fails too (its snapshot writes hit the same device) and
  // arms the retry backoff: 2 skipped retries after the first failure.
  EXPECT_FALSE(db.Checkpoint().ok());
  EXPECT_EQ(db.checkpoint_failures(), 1u);
  EXPECT_FALSE(db.CheckpointRetryDue());
  EXPECT_TRUE(db.MaybeRetryCheckpoint().ok());  // Backoff tick 1: no attempt.
  EXPECT_TRUE(db.MaybeRetryCheckpoint().ok());  // Backoff tick 2: no attempt.
  EXPECT_EQ(db.checkpoint_failures(), 1u);
  EXPECT_TRUE(db.CheckpointRetryDue());
  EXPECT_FALSE(db.MaybeRetryCheckpoint().ok());  // Due: attempts, fails.
  EXPECT_EQ(db.checkpoint_failures(), 2u);
  EXPECT_TRUE(gov.storage_degraded());

  // Space comes back: the next due retry succeeds, clears the sticky flag
  // and the backoff, and writes work again.
  reg.Disarm("wal/append/enospc");
  // Two failures left a countdown of 4: four calls drain the backoff, the
  // fifth is due and succeeds.
  for (int i = 0; i < 5 && db.checkpoint_failures() > 0; ++i) {
    EXPECT_TRUE(db.MaybeRetryCheckpoint().ok());
  }
  EXPECT_EQ(db.checkpoint_failures(), 0u);
  EXPECT_FALSE(gov.storage_degraded()) << "successful checkpoint must heal";
  ASSERT_TRUE(db.Insert("T", {Value(int64_t{5})}).ok());
  EXPECT_EQ(live_rows(), 5u);

  // The healed log is complete: a fresh recovery sees exactly the
  // committed rows, none of the failed ones.
  DurableDatabase recovered;
  ASSERT_TRUE(recovered.Open(path).ok());
  size_t n = 0;
  auto table = recovered.GetTable("T");
  ASSERT_TRUE(table.ok());
  (*table)->Scan([&](RowId, const Row&) { ++n; });
  EXPECT_EQ(n, 5u);
  std::remove(path.c_str());
}

TEST_F(OverloadTortureTest, BoundedChannelStormRespectsCapsAndNeverDuplicates) {
  const std::vector<uint64_t> seeds =
      test::SuiteSeeds("Overload.Channel", {1997, 42, 20260809});
  for (uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    Clock clock;
    SimNetwork net(&clock, {.latency = 1,
                            .loss_probability = 0.2,
                            .duplicate_probability = 0.1,
                            .reorder_probability = 0.1,
                            .reorder_jitter = 3,
                            .seed = seed});
    ReliableEndpoint::Options opts;
    opts.max_unacked_messages = 8;
    opts.peer_dead_horizon = 24;
    ReliableEndpoint sender(&net, &clock, opts);
    ReliableEndpoint receiver(&net, &clock);
    std::vector<uint64_t> delivered;
    receiver.SetHandler([&](const Message& m) {
      delivered.push_back(std::get<CancelQuery>(m.payload).qid);
    });

    uint64_t next_qid = 0;
    std::set<uint64_t> sent;
    bool cut = false;
    for (int round = 0; round < 120; ++round) {
      // Random bursts, with occasional partitions long enough to trigger
      // dead-peer eviction.
      if (rng.Bernoulli(0.05)) {
        if (cut) {
          net.Heal("cut");
        } else {
          net.Partition("cut", {sender.node_id()}, {receiver.node_id()});
        }
        cut = !cut;
      }
      const int burst = static_cast<int>(rng.UniformInt(0, 4));
      for (int b = 0; b < burst; ++b) {
        uint64_t qid = next_qid++;
        if (sender.SendReliable(receiver.node_id(), CancelQuery{qid}) !=
            Backpressure::kShed) {
          sent.insert(qid);
        }
      }
      EXPECT_LE(sender.unacked(), opts.max_unacked_messages)
          << "bounded buffer exceeded its cap";
      clock.Advance();
      net.DeliverDue();
    }
    if (cut) net.Heal("cut");
    for (int t = 0; t < 200 && sender.unacked() > 0; ++t) {
      clock.Advance();
      net.DeliverDue();
    }
    EXPECT_EQ(sender.unacked(), 0u) << "channel failed to quiesce";

    // At-most-once: no payload is ever delivered twice (epochs make
    // post-eviction resynchronization safe), and nothing is invented.
    std::set<uint64_t> unique(delivered.begin(), delivered.end());
    EXPECT_EQ(unique.size(), delivered.size())
        << "a payload was delivered more than once";
    for (uint64_t qid : delivered) {
      EXPECT_TRUE(sent.count(qid)) << "delivered a never-sent payload";
    }
    g_channel_sheds += sender.stats().frames_shed;
  }
  EXPECT_GT(g_channel_sheds, 0u)
      << "channel storm never shed: caps were not exercised";
}

// ---- CI loudness ----------------------------------------------------------

// ci.sh arms a probe via MOST_FAILPOINTS before running this suite under
// ASan; if the probe is armed but never counts a hit, env-based fault
// injection has silently broken for the overload stage.
TEST_F(OverloadTortureTest, EnvArmedProbeFires) {
  const char* env = std::getenv("MOST_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("ci/overload_probe") == std::string::npos) {
    GTEST_SKIP() << "MOST_FAILPOINTS probe not armed (not the CI stage)";
  }
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.ArmFromEnv().ok());
  EXPECT_TRUE(reg.Check("ci/overload_probe").ok());  // noop spec: counts only.
  EXPECT_GE(reg.triggered("ci/overload_probe"), 1u)
      << "environment-armed failpoint did not fire";
}

// Runs last (gtest preserves declaration order): the storms must actually
// have exercised pressure. A pressure-free run means the harness no-ops,
// which must fail the build loudly.
TEST(OverloadTortureSummary, PressureActuallyHappened) {
  EXPECT_GT(g_query_sheds, 0u) << "no refresh was ever shed";
  EXPECT_GT(g_cache_evictions, 0u) << "the byte-budgeted cache never evicted";
  EXPECT_GT(g_channel_sheds, 0u) << "the bounded channel never shed";
}

}  // namespace
}  // namespace most
