#include "ftl/query_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "ftl/parser.h"

namespace most {
namespace {

class QueryManagerTest : public ::testing::Test {
 protected:
  QueryManagerTest() : qm_(&db_, {.horizon = 200}) {
    EXPECT_TRUE(db_.CreateClass("CARS", {{"PRICE", false, ValueType::kDouble}},
                                /*spatial=*/true)
                    .ok());
    EXPECT_TRUE(
        db_.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10})).ok());
  }

  ObjectId AddCar(Point2 pos, Vec2 vel) {
    auto obj = db_.CreateObject("CARS");
    EXPECT_TRUE(obj.ok());
    EXPECT_TRUE(db_.SetMotion("CARS", (*obj)->id(), pos, vel).ok());
    return (*obj)->id();
  }

  FtlQuery Parse(const std::string& s) {
    auto q = ParseQuery(s);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  MostDatabase db_;
  QueryManager qm_;
};

TEST_F(QueryManagerTest, InstantaneousAnswerDependsOnEntryTime) {
  // Car crosses P during ticks [20, 30].
  ObjectId car = AddCar({-20, 5}, {1, 0});
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");

  auto at0 = qm_.Instantaneous(q);
  ASSERT_TRUE(at0.ok());
  EXPECT_TRUE(at0->empty());

  db_.clock().AdvanceTo(25);
  auto at25 = qm_.Instantaneous(q);
  ASSERT_TRUE(at25.ok());
  ASSERT_EQ(at25->size(), 1u);
  EXPECT_EQ((*at25)[0], (std::vector<ObjectId>{car}));

  // The defining MOST behaviour: a different answer at a different time
  // with no intervening update.
  db_.clock().AdvanceTo(50);
  auto at50 = qm_.Instantaneous(q);
  ASSERT_TRUE(at50.ok());
  EXPECT_TRUE(at50->empty());
}

TEST_F(QueryManagerTest, InstantaneousFutureQuery) {
  // "Will reach P within 10 ticks": answered from the motion vector alone.
  AddCar({-5, 5}, {1, 0});  // Enters P (x >= 0) at t=5.
  FtlQuery q =
      Parse("RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)");
  auto now = qm_.Instantaneous(q);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->size(), 1u);
}

TEST_F(QueryManagerTest, FirstSatisfactionTimesAreReachingTimes) {
  // Paper: "Display the tuples (motel, reaching-time) representing the
  // motels that I will reach, and the time when I will do so".
  ObjectId fast = AddCar({-10, 5}, {1, 0});   // Reaches P (x>=0) at t=10.
  ObjectId slow = AddCar({-40, 5}, {0.5, 0}); // Reaches P at t=80.
  AddCar({-500, 5}, {0, 0});                  // Never reaches P.
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto times = qm_.FirstSatisfactionTimes(q);
  ASSERT_TRUE(times.ok()) << times.status();
  ASSERT_EQ(times->size(), 2u);
  EXPECT_EQ((*times)[0].binding, (std::vector<ObjectId>{fast}));
  EXPECT_EQ((*times)[0].at, 10);
  EXPECT_EQ((*times)[1].binding, (std::vector<ObjectId>{slow}));
  EXPECT_EQ((*times)[1].at, 80);
}

TEST_F(QueryManagerTest, ContinuousQuerySingleEvaluation) {
  ObjectId car = AddCar({-20, 5}, {1, 0});  // In P during [20, 30].
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto id = qm_.RegisterContinuous(q);
  ASSERT_TRUE(id.ok());

  // Answer(CQ) contains the interval tuple.
  auto answer = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_EQ((*answer)[0].binding, (std::vector<ObjectId>{car}));
  EXPECT_EQ((*answer)[0].interval, Interval(20, 30));

  // Display changes per tick without re-evaluation.
  for (Tick t : {0, 19, 20, 30, 31}) {
    db_.clock().AdvanceTo(t);
    auto current = qm_.CurrentAnswer(*id);
    ASSERT_TRUE(current.ok());
    EXPECT_EQ(current->size(), (t >= 20 && t <= 30) ? 1u : 0u) << "t=" << t;
  }
  EXPECT_EQ(qm_.EvaluationCount(*id).value(), 1u);
}

TEST_F(QueryManagerTest, ContinuousQueryReevaluatedOnUpdate) {
  ObjectId car = AddCar({-20, 5}, {1, 0});
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto id = qm_.RegisterContinuous(q);
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(qm_.EvaluationCount(*id).value(), 1u);

  // Car turns away at t=10: the old tuple (20..30) must disappear.
  db_.clock().AdvanceTo(10);
  ASSERT_TRUE(db_.SetMotion("CARS", car, {-10, 5}, {0, 1}).ok());
  auto answer = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());
  EXPECT_EQ(qm_.EvaluationCount(*id).value(), 2u);

  // Lookups without updates do not re-evaluate.
  db_.clock().AdvanceTo(20);
  ASSERT_TRUE(qm_.CurrentAnswer(*id).ok());
  EXPECT_EQ(qm_.EvaluationCount(*id).value(), 2u);
}

TEST_F(QueryManagerTest, ContinuousQueryExpiresAndSlides) {
  AddCar({5, 5}, {0, 0});  // Always inside P.
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto id = qm_.RegisterContinuous(q);
  ASSERT_TRUE(id.ok());
  // Move past the horizon: the answer window must slide via re-evaluation.
  db_.clock().AdvanceTo(500);
  auto current = qm_.CurrentAnswer(*id);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->size(), 1u);
  EXPECT_EQ(qm_.EvaluationCount(*id).value(), 2u);
}

TEST_F(QueryManagerTest, CancelRemovesQuery) {
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto id = qm_.RegisterContinuous(q);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(qm_.Cancel(*id).ok());
  EXPECT_FALSE(qm_.Cancel(*id).ok());
  EXPECT_FALSE(qm_.ContinuousAnswer(*id).ok());
}

TEST_F(QueryManagerTest, PersistentQueryPaperExampleR) {
  // Paper Section 2.3, query R: "retrieve the objects whose speed in the
  // X direction doubles within 10 minutes". Speed 5 at t=0, updated to 7
  // at t=1 and to 10 at t=2.
  ObjectId car = AddCar({0, 0}, {5, 0});
  FtlQuery r = Parse(
      "RETRIEVE o FROM CARS o "
      "WHERE [x := SPEED(o.X.POSITION)] EVENTUALLY WITHIN 10 "
      "SPEED(o.X.POSITION) >= x * 2");
  auto id = qm_.RegisterPersistent(r);
  ASSERT_TRUE(id.ok());

  // At time 0: speed constant in every future state -> empty.
  auto at0 = qm_.PersistentAnswer(*id);
  ASSERT_TRUE(at0.ok());
  EXPECT_TRUE(at0->empty());

  db_.clock().AdvanceTo(1);
  ASSERT_TRUE(db_.UpdateDynamic("CARS", car, kAttrX, 5.0,
                                TimeFunction::Linear(7.0))
                  .ok());
  auto at1 = qm_.PersistentAnswer(*id);
  ASSERT_TRUE(at1.ok());
  EXPECT_TRUE(at1->empty());  // 7 < 2 * 5.

  db_.clock().AdvanceTo(2);
  ASSERT_TRUE(db_.UpdateDynamic("CARS", car, kAttrX, 12.0,
                                TimeFunction::Linear(10.0))
                  .ok());
  auto at2 = qm_.PersistentAnswer(*id);
  ASSERT_TRUE(at2.ok());
  // The history anchored at 0 now contains speed 5 at t in [0,0] and
  // speed 10 from t=2: doubling observed within 10 of t=0.
  ASSERT_FALSE(at2->empty());
  bool found_at_anchor = false;
  for (const AnswerTuple& t : *at2) {
    if (t.binding == std::vector<ObjectId>{car} && t.interval.Contains(0)) {
      found_at_anchor = true;
    }
  }
  EXPECT_TRUE(found_at_anchor);

  // Entered as instantaneous at time 2, the same query stays empty: the
  // future history has constant speed 10 (the paper's point).
  auto inst = qm_.Instantaneous(r);
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(inst->empty());
}

TEST_F(QueryManagerTest, PersistentQueryRecordsPositionHistory) {
  // Object enters P in the recorded past of the persistent query.
  ObjectId car = AddCar({-5, 5}, {1, 0});  // Enters P at t=5.
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE EVENTUALLY INSIDE(o, P)");
  auto id = qm_.RegisterPersistent(q);
  ASSERT_TRUE(id.ok());

  // At t=3 the car turns away; it never actually enters P after t=3, but
  // the history anchored at 0 still sees it entering at t=5? No: the
  // recorded history replaces the projection from t=3 on.
  db_.clock().AdvanceTo(3);
  ASSERT_TRUE(db_.SetMotion("CARS", car, {-2, 5}, {-1, 0}).ok());
  auto answer = qm_.PersistentAnswer(*id);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());

  // If instead it accelerates into P, the recorded history sees an entry.
  db_.clock().AdvanceTo(4);
  ASSERT_TRUE(db_.SetMotion("CARS", car, {-3, 5}, {2, 0}).ok());
  answer = qm_.PersistentAnswer(*id);
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->empty());
}

TEST_F(QueryManagerTest, TriggerFiresOnIntervalEntry) {
  AddCar({-20, 5}, {1, 0});  // In P during [20, 30].
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  std::vector<Tick> fires;
  auto id = qm_.RegisterTrigger(
      q, [&](const std::vector<ObjectId>&, Tick at) { fires.push_back(at); });
  ASSERT_TRUE(id.ok());

  db_.clock().AdvanceTo(10);
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_TRUE(fires.empty());

  db_.clock().AdvanceTo(25);
  ASSERT_TRUE(qm_.Poll().ok());
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], 20);  // The tick at which the interval was entered.

  // No duplicate firing on later polls within the same interval.
  db_.clock().AdvanceTo(28);
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_EQ(fires.size(), 1u);
}

TEST_F(QueryManagerTest, TriggerRespondsToUpdates) {
  ObjectId car = AddCar({100, 100}, {0, 0});  // Never in P.
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  int fires = 0;
  auto id = qm_.RegisterTrigger(
      q, [&](const std::vector<ObjectId>&, Tick) { ++fires; });
  ASSERT_TRUE(id.ok());
  db_.clock().AdvanceTo(5);
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_EQ(fires, 0);

  // Teleport the car into P: poll must fire after the update.
  ASSERT_TRUE(db_.SetMotion("CARS", car, {5, 5}, {0, 0}).ok());
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_EQ(fires, 1);
}

// ---------------------------------------------------------------------------
// Delta maintenance: update-triggered refreshes splice only the dirty rows.
// ---------------------------------------------------------------------------

TEST_F(QueryManagerTest, DeltaRefreshSplicesUpdatedRowsOnly) {
  // Four cars so one dirty object sits exactly at the default 0.25
  // fraction: c0/c2 inside P, c1/c3 far away.
  ObjectId c0 = AddCar({5, 5}, {0, 0});
  ObjectId c1 = AddCar({100, 100}, {0, 0});
  ObjectId c2 = AddCar({5, 6}, {0, 0});
  AddCar({200, 200}, {0, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  auto counters = qm_.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->full_evaluations, 1u);  // Registration.
  EXPECT_EQ(counters->delta_evaluations, 0u);

  // c1 teleports into P: the refresh must be served by the delta path and
  // add exactly c1's row.
  ASSERT_TRUE(db_.SetMotion("CARS", c1, {6, 6}, {0, 0}).ok());
  auto answer = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 3u);
  counters = qm_.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->delta_evaluations, 1u);
  EXPECT_EQ(counters->full_evaluations, 1u);

  // c0 leaves P: its row must be evicted by the next delta refresh while
  // the clean rows (c1, c2) survive untouched.
  ASSERT_TRUE(db_.SetMotion("CARS", c0, {100, 5}, {0, 0}).ok());
  answer = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 2u);
  for (const AnswerTuple& t : *answer) {
    EXPECT_TRUE(t.binding == std::vector<ObjectId>{c1} ||
                t.binding == std::vector<ObjectId>{c2});
  }
  counters = qm_.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->delta_evaluations, 2u);
  EXPECT_EQ(counters->full_evaluations, 1u);
  EXPECT_EQ(qm_.EvaluationCount(*id).value(), 3u);
}

TEST_F(QueryManagerTest, UpdateTriggeredRefreshKeepsWindowAnchor) {
  // The car is inside P during [5, 15]. An update to an unrelated object
  // at t=10 re-derives the answer over the *original* window, so the
  // already-elapsed part of the interval survives — under the old
  // re-anchor-on-every-refresh policy it would be clipped to [10, 15],
  // and the delta path (which keeps clean rows verbatim) could never
  // match the full path.
  ObjectId car = AddCar({-5, 5}, {1, 0});
  ObjectId far = AddCar({300, 300}, {0, 0});
  AddCar({310, 300}, {0, 0});
  AddCar({320, 300}, {0, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());

  db_.clock().AdvanceTo(10);
  ASSERT_TRUE(db_.SetMotion("CARS", far, {301, 300}, {0, 0}).ok());
  auto answer = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_EQ((*answer)[0].binding, (std::vector<ObjectId>{car}));
  EXPECT_EQ((*answer)[0].interval, Interval(5, 15));
}

TEST_F(QueryManagerTest, LargeDirtySetFallsBackToFullRefresh) {
  ObjectId c0 = AddCar({5, 5}, {0, 0});
  ObjectId c1 = AddCar({100, 100}, {0, 0});
  AddCar({5, 6}, {0, 0});
  AddCar({200, 200}, {0, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());

  // Two of four objects dirty (0.5 > default 0.25): the coalesced batch
  // must be served by a single full re-evaluation, not the delta path.
  ASSERT_TRUE(db_.SetMotion("CARS", c0, {5.5, 5}, {0, 0}).ok());
  ASSERT_TRUE(db_.SetMotion("CARS", c1, {6, 6}, {0, 0}).ok());
  auto answer = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 3u);
  auto counters = qm_.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->delta_evaluations, 0u);
  EXPECT_EQ(counters->full_evaluations, 2u);
}

TEST_F(QueryManagerTest, DeltaRefreshHandlesDeletedObjects) {
  // Five cars inside P; deleting one is a 1/4-of-remaining-domain dirty
  // set, inside the delta threshold.
  std::vector<ObjectId> cars;
  for (int i = 0; i < 5; ++i) {
    cars.push_back(AddCar({5, 5 + 0.5 * i}, {0, 0}));
  }
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(qm_.ContinuousAnswer(*id)->size(), 5u);

  ASSERT_TRUE(db_.DeleteObject("CARS", cars[2]).ok());
  auto answer = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 4u);
  for (const AnswerTuple& t : *answer) {
    EXPECT_NE(t.binding, (std::vector<ObjectId>{cars[2]}));
  }
  auto counters = qm_.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->delta_evaluations, 1u);
}

TEST_F(QueryManagerTest, DeltaRefreshFailureFallsBackToFull) {
  ObjectId c1 = AddCar({100, 100}, {0, 0});
  AddCar({5, 5}, {0, 0});
  AddCar({5, 6}, {0, 0});
  AddCar({200, 200}, {0, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());

  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.Arm("ftl/delta/refresh", "error*1").ok());
  uint64_t fired_before = reg.triggered("ftl/delta/refresh");
  ASSERT_TRUE(db_.SetMotion("CARS", c1, {6, 6}, {0, 0}).ok());
  auto answer = qm_.ContinuousAnswer(*id);
  reg.Disarm("ftl/delta/refresh");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 3u);  // Correct despite the injected fault.
  EXPECT_GT(reg.triggered("ftl/delta/refresh"), fired_before);
  auto counters = qm_.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_EQ(counters->delta_evaluations, 0u);
  EXPECT_EQ(counters->full_evaluations, 2u);
}

TEST_F(QueryManagerTest, MultiVariableTriggerFiresOncePerIntervalUnderDelta) {
  // DIST(o, n) <= 5 over two cars: a stands at the origin-side of P, b
  // approaches. The (a, b) interval starts at [25, 35]; an update between
  // polls shifts it earlier to [19, 29] through the delta path, and the
  // trigger must still fire exactly once per (binding, interval).
  QueryManager qm(&db_, {.horizon = 200, .delta_max_dirty_fraction = 1.0});
  ObjectId a = AddCar({0, 5}, {0, 0});
  ObjectId b = AddCar({30, 5}, {-1, 0});
  std::map<std::vector<ObjectId>, std::vector<Tick>> fires;
  auto id = qm.RegisterTrigger(
      Parse("RETRIEVE o, n FROM CARS o, CARS n WHERE DIST(o, n) <= 5"),
      [&](const std::vector<ObjectId>& binding, Tick at) {
        fires[binding].push_back(at);
      });
  ASSERT_TRUE(id.ok());

  // First poll: only the self-pairs (distance 0 forever) have entered.
  db_.clock().AdvanceTo(5);
  ASSERT_TRUE(qm.Poll().ok());
  EXPECT_EQ(fires.size(), 2u);
  EXPECT_EQ((fires[{a, a}]), (std::vector<Tick>{0}));
  EXPECT_EQ((fires[{b, b}]), (std::vector<Tick>{0}));

  // Update between polls: b jumps closer, shifting the (a, b) interval
  // from [25, 35] to [19, 29]. Served by the delta path.
  db_.clock().AdvanceTo(10);
  ASSERT_TRUE(db_.SetMotion("CARS", b, {14, 5}, {-1, 0}).ok());
  db_.clock().AdvanceTo(20);
  ASSERT_TRUE(qm.Poll().ok());
  ASSERT_EQ((fires.count({a, b})), 1u);
  EXPECT_EQ((fires[{a, b}]), (std::vector<Tick>{19}));
  EXPECT_EQ((fires[{b, a}]), (std::vector<Tick>{19}));
  auto counters = qm.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_GE(counters->delta_evaluations, 1u);

  // Another splice: b parks within range, widening the (a, b) interval to
  // the whole window — its begin (0) is now *earlier* than the recorded
  // fire tick (19). That is still one satisfaction interval the trigger
  // already announced, so no re-fire.
  db_.clock().AdvanceTo(21);
  ASSERT_TRUE(db_.SetMotion("CARS", b, {4, 5}, {0, 0}).ok());
  db_.clock().AdvanceTo(25);
  ASSERT_TRUE(qm.Poll().ok());
  EXPECT_EQ((fires[{a, b}]).size(), 1u);
  EXPECT_EQ((fires[{b, a}]).size(), 1u);
  EXPECT_EQ((fires[{a, a}]).size(), 1u);
  EXPECT_EQ((fires[{b, b}]).size(), 1u);
}

TEST_F(QueryManagerTest, PollGarbageCollectsSpentFiredState) {
  // Car crosses P during [20, 30]; once the clock passes the interval the
  // fired entry is unreachable and must be dropped.
  ObjectId car = AddCar({-20, 5}, {1, 0});
  int fires = 0;
  auto id = qm_.RegisterTrigger(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"),
      [&](const std::vector<ObjectId>&, Tick) { ++fires; });
  ASSERT_TRUE(id.ok());

  db_.clock().AdvanceTo(25);
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(qm_.TriggerFiredEntries(*id).value(), 1u);

  db_.clock().AdvanceTo(40);  // Interval [20, 30] fully in the past.
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(qm_.TriggerFiredEntries(*id).value(), 0u);

  // A deleted object's fired state goes with its answer row.
  ObjectId visitor = AddCar({5, 5}, {0, 0});
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(qm_.TriggerFiredEntries(*id).value(), 1u);
  ASSERT_TRUE(db_.DeleteObject("CARS", visitor).ok());
  ASSERT_TRUE(qm_.Poll().ok());
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(qm_.TriggerFiredEntries(*id).value(), 0u);
  (void)car;
}

TEST_F(QueryManagerTest, ExpiryEvictsOutrunCacheWindows) {
  QueryManager qm(&db_,
                  {.horizon = 200, .enable_interval_cache = true});
  AddCar({5, 5}, {0, 0});
  auto id = qm.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_GT(qm.interval_cache()->stats().entries, 0u);

  // Outrun the window: the re-anchoring refresh must drop entries keyed
  // to the dead window instead of letting them linger forever.
  uint64_t invalidations_before = qm.interval_cache()->stats().invalidations;
  db_.clock().AdvanceTo(500);
  ASSERT_TRUE(qm.ContinuousAnswer(*id).ok());
  EXPECT_GT(qm.interval_cache()->stats().invalidations, invalidations_before);
}

// ---------------------------------------------------------------------------
// Degraded mode: answers under missing location updates.
// ---------------------------------------------------------------------------

class StalenessTest : public ::testing::Test {
 protected:
  StalenessTest() : qm_(&db_, {.horizon = 500, .staleness_horizon = 50}) {
    EXPECT_TRUE(db_.CreateClass("CARS", {{"PRICE", false, ValueType::kDouble}},
                                /*spatial=*/true)
                    .ok());
    EXPECT_TRUE(
        db_.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10})).ok());
  }

  ObjectId AddCar(Point2 pos, Vec2 vel) {
    auto obj = db_.CreateObject("CARS");
    EXPECT_TRUE(obj.ok());
    EXPECT_TRUE(db_.SetMotion("CARS", (*obj)->id(), pos, vel).ok());
    return (*obj)->id();
  }

  FtlQuery Parse(const std::string& s) {
    auto q = ParseQuery(s);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  MostDatabase db_;
  QueryManager qm_;
};

// The ISSUE acceptance scenario: 30% of the fleet stops sending location
// updates. Past the staleness horizon their dead-reckoned tuples drop out
// of the *must* answer but remain in the *may* answer, flagged kStale; a
// fresh update reinstates them as kCertain — all without re-evaluation.
TEST_F(StalenessTest, SilentObjectsDegradeToMayAnswersAndComeBack) {
  // Ten stationary cars inside P; the last three will go silent.
  std::vector<ObjectId> fleet;
  for (int i = 0; i < 10; ++i) {
    fleet.push_back(AddCar({5, 5}, {0, 0}));
  }
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());

  // Within the horizon everything is certain: must == may == 10.
  db_.clock().AdvanceTo(40);
  ASSERT_TRUE(qm_.CurrentAnswer(*id).ok());
  EXPECT_EQ(qm_.CurrentAnswer(*id)->size(), 10u);
  EXPECT_EQ(qm_.PossibleAnswer(*id)->size(), 10u);

  // t=100: seven cars report in (any update refreshes last_update); three
  // stay silent, now 100 ticks past their last update, horizon 50.
  db_.clock().AdvanceTo(100);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(db_.SetMotion("CARS", fleet[i], {5, 5}, {0, 0}).ok());
  }
  auto tuples = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples->size(), 10u);
  size_t certain = 0, stale = 0;
  for (const AnswerTuple& t : *tuples) {
    (t.confidence == Confidence::kCertain ? certain : stale) += 1;
  }
  EXPECT_EQ(certain, 7u);
  EXPECT_EQ(stale, 3u);
  // Must-answer excludes the silent cars; may-answer retains them.
  EXPECT_EQ(qm_.CurrentAnswer(*id)->size(), 7u);
  EXPECT_EQ(qm_.PossibleAnswer(*id)->size(), 10u);

  // The silent cars finally report: immediately certain again.
  for (int i = 7; i < 10; ++i) {
    ASSERT_TRUE(db_.SetMotion("CARS", fleet[i], {5, 5}, {0, 0}).ok());
  }
  EXPECT_EQ(qm_.CurrentAnswer(*id)->size(), 10u);
  EXPECT_EQ(qm_.PossibleAnswer(*id)->size(), 10u);
  auto reinstated = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(reinstated.ok());
  for (const AnswerTuple& t : *reinstated) {
    EXPECT_EQ(t.confidence, Confidence::kCertain);
  }
}

TEST_F(StalenessTest, StalenessDriftNeedsNoReevaluation) {
  AddCar({5, 5}, {0, 0});
  auto id = qm_.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(qm_.EvaluationCount(*id).value(), 1u);

  // Confidence is derived at read time from last_update: the same cached
  // evaluation answers certain at t=30 and stale at t=80.
  db_.clock().AdvanceTo(30);
  EXPECT_EQ(qm_.CurrentAnswer(*id)->size(), 1u);
  db_.clock().AdvanceTo(80);
  EXPECT_EQ(qm_.CurrentAnswer(*id)->size(), 0u);
  EXPECT_EQ(qm_.PossibleAnswer(*id)->size(), 1u);
  EXPECT_EQ(qm_.EvaluationCount(*id).value(), 1u);
}

TEST_F(StalenessTest, DisabledHorizonKeepsEverythingCertain) {
  QueryManager no_staleness(&db_, {.horizon = 500});
  AddCar({5, 5}, {0, 0});
  auto id = no_staleness.RegisterContinuous(
      Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
  ASSERT_TRUE(id.ok());
  db_.clock().AdvanceTo(400);  // Way past any update.
  EXPECT_EQ(no_staleness.CurrentAnswer(*id)->size(), 1u);
  EXPECT_EQ(no_staleness.PossibleAnswer(*id)->size(), 1u);
  auto tuples = no_staleness.ContinuousAnswer(*id);
  ASSERT_TRUE(tuples.ok());
  for (const AnswerTuple& t : *tuples) {
    EXPECT_EQ(t.confidence, Confidence::kCertain);
  }
}

// ---------------------------------------------------------------------------
// Batch tick (TickAll) + the parallel/cached evaluation configuration.
// ---------------------------------------------------------------------------

class ParallelQueryManagerTest : public ::testing::Test {
 protected:
  ParallelQueryManagerTest()
      : qm_(&db_, {.horizon = 200,
                   .thread_count = 4,
                   .enable_interval_cache = true}) {
    EXPECT_TRUE(db_.CreateClass("CARS", {{"PRICE", false, ValueType::kDouble}},
                                /*spatial=*/true)
                    .ok());
    EXPECT_TRUE(
        db_.DefineRegion("P", Polygon::Rectangle({0, 0}, {10, 10})).ok());
  }

  ObjectId AddCar(Point2 pos, Vec2 vel) {
    auto obj = db_.CreateObject("CARS");
    EXPECT_TRUE(obj.ok());
    EXPECT_TRUE(db_.SetMotion("CARS", (*obj)->id(), pos, vel).ok());
    return (*obj)->id();
  }

  FtlQuery Parse(const std::string& s) {
    auto q = ParseQuery(s);
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  MostDatabase db_;
  QueryManager qm_;
};

TEST_F(ParallelQueryManagerTest, ParallelAnswersMatchSerialManager) {
  for (int i = 0; i < 12; ++i) {
    AddCar({static_cast<double>(-5 * i - 5), 5.0}, {1, 0});
  }
  QueryManager serial(&db_, {.horizon = 200});
  for (const char* text :
       {"RETRIEVE o FROM CARS o WHERE INSIDE(o, P)",
        "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 40 INSIDE(o, P)",
        "RETRIEVE o, n FROM CARS o, CARS n WHERE DIST(o, n) <= 8"}) {
    FtlQuery q = Parse(text);
    auto fast = qm_.Evaluate(q);
    auto slow = serial.Evaluate(q);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(slow.ok()) << slow.status();
    EXPECT_EQ(fast->rows, slow->rows) << text;
    // Warm-cache repeat must not change anything.
    auto again = qm_.Evaluate(q);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->rows, slow->rows) << text << " (cached)";
  }
  EXPECT_GT(qm_.interval_cache()->stats().hits, 0u);
}

// thread_count == 0 means "size the pool to the machine" (explicit 1 is
// the serial no-pool path). Answers must be independent of that choice.
TEST_F(ParallelQueryManagerTest, ThreadCountZeroSizesPoolToHardware) {
  for (int i = 0; i < 8; ++i) {
    AddCar({static_cast<double>(-4 * i - 4), 5.0}, {1, 0});
  }
  QueryManager hw(&db_, {.horizon = 200, .thread_count = 0});
  QueryManager serial(&db_, {.horizon = 200, .thread_count = 1});
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE EVENTUALLY INSIDE(o, P)");
  auto a = hw.Evaluate(q);
  auto b = serial.Evaluate(q);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->rows, b->rows);
  // The delegation target: a zero-sized pool spawns hardware_concurrency
  // workers (at least one), never zero.
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.thread_count(),
            std::max(1u, std::thread::hardware_concurrency()));
}

TEST_F(ParallelQueryManagerTest, TickAllRefreshesEveryStaleQuery) {
  ObjectId car = AddCar({-20, 5}, {1, 0});  // In P during [20, 30].
  std::vector<QueryManager::QueryId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = qm_.RegisterContinuous(
        Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // An update dirties all eight; one batch tick refreshes them together.
  ASSERT_TRUE(db_.SetMotion("CARS", car, {-10, 5}, {1, 0}).ok());
  ASSERT_TRUE(qm_.TickAll().ok());
  for (QueryManager::QueryId id : ids) {
    EXPECT_EQ(qm_.EvaluationCount(id).value(), 2u);
    auto answer = qm_.ContinuousAnswer(id);
    ASSERT_TRUE(answer.ok());
    ASSERT_EQ(answer->size(), 1u);
    EXPECT_EQ((*answer)[0].interval, Interval(10, 20));
  }
  // Nothing stale: TickAll is a no-op, not a re-evaluation storm.
  ASSERT_TRUE(qm_.TickAll().ok());
  for (QueryManager::QueryId id : ids) {
    EXPECT_EQ(qm_.EvaluationCount(id).value(), 2u);
  }
}

TEST_F(ParallelQueryManagerTest, CacheInvalidationTracksUpdates) {
  ObjectId car = AddCar({-20, 5}, {1, 0});
  FtlQuery q = Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto id = qm_.RegisterContinuous(q);
  ASSERT_TRUE(id.ok());
  auto before = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 1u);
  EXPECT_EQ((*before)[0].interval, Interval(20, 30));

  // The update must evict the car's cached intervals, so the refreshed
  // answer reflects the new motion rather than a stale cache entry.
  ASSERT_TRUE(db_.SetMotion("CARS", car, {-40, 5}, {2, 0}).ok());
  ASSERT_TRUE(qm_.TickAll().ok());
  auto after = qm_.ContinuousAnswer(*id);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ((*after)[0].interval, Interval(20, 25));
  EXPECT_GT(qm_.interval_cache()->stats().invalidations, 0u);
}

TEST_F(ParallelQueryManagerTest, TotalRefreshCountersNeverTear) {
  // Manager-wide refresh totals are read while TickAll fans refreshes out
  // across the pool. The pair must come from one consistent snapshot —
  // totals can only grow, and a torn read (two independent atomics) could
  // go backwards or count a refresh in neither member. Run under
  // -DMOST_SANITIZE=thread to verify the snapshot is also race-free.
  std::vector<ObjectId> cars;
  for (int i = 0; i < 6; ++i) {
    cars.push_back(AddCar({static_cast<double>(-3 * i - 2), 5.0}, {1, 0}));
  }
  std::vector<QueryManager::QueryId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = qm_.RegisterContinuous(
        Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last_total = 0;
    while (!stop.load()) {
      QueryManager::RefreshCounters c = qm_.TotalRefreshCounters();
      uint64_t total = c.delta_evaluations + c.full_evaluations;
      ASSERT_GE(total, last_total) << "refresh totals went backwards";
      last_total = total;
    }
  });
  for (int round = 0; round < 30; ++round) {
    // Dirty every query (database mutations stay on this thread, per the
    // documented contract), then refresh the batch through the pool.
    ASSERT_TRUE(db_.SetMotion("CARS", cars[round % cars.size()],
                              {static_cast<double>(-2 - round), 5.0}, {1, 0})
                    .ok());
    ASSERT_TRUE(qm_.TickAll().ok());
  }
  stop.store(true);
  reader.join();
  QueryManager::RefreshCounters final = qm_.TotalRefreshCounters();
  EXPECT_GT(final.delta_evaluations + final.full_evaluations, 0u);
}

TEST_F(ParallelQueryManagerTest, ConcurrentRegistrationDuringTicks) {
  // Registration, polling, and batch ticks from several threads must not
  // race (run under -DMOST_SANITIZE=thread to verify); database mutations
  // stay on this thread, per the documented contract.
  for (int i = 0; i < 6; ++i) {
    AddCar({static_cast<double>(-3 * i - 2), 5.0}, {1, 0});
  }
  std::atomic<bool> stop{false};
  std::atomic<int> registered{0};
  std::thread registrar([&] {
    while (!stop.load()) {
      auto id = qm_.RegisterContinuous(
          Parse("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)"));
      ASSERT_TRUE(id.ok());
      ++registered;
      auto answer = qm_.ContinuousAnswer(*id);
      ASSERT_TRUE(answer.ok());
    }
  });
  std::thread ticker([&] {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(qm_.TickAll().ok());
    }
  });
  ticker.join();
  stop.store(true);
  registrar.join();
  EXPECT_GT(registered.load(), 0);
  ASSERT_TRUE(qm_.TickAll().ok());
}

}  // namespace
}  // namespace most
