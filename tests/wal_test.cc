#include "storage/wal.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/durable_database.h"

namespace most {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveFile(const std::string& path) { std::remove(path.c_str()); }

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord records[5];
  records[0].kind = WalRecord::Kind::kCreateTable;
  records[0].table = "MOTELS";
  records[0].schema = Schema({{"name", ValueType::kString},
                              {"price", ValueType::kDouble},
                              {"rooms", ValueType::kInt}});
  records[1].kind = WalRecord::Kind::kInsert;
  records[1].table = "MOTELS";
  records[1].rid = 42;
  records[1].row = {Value("Sleep|Inn, the 100% best:motel\n"), Value(59.25),
                    Value(12)};
  records[2].kind = WalRecord::Kind::kUpdate;
  records[2].table = "MOTELS";
  records[2].rid = 42;
  records[2].row = {Value::Null(), Value(true), Value(-17)};
  records[3].kind = WalRecord::Kind::kDelete;
  records[3].table = "MOTELS";
  records[3].rid = 7;
  records[4].kind = WalRecord::Kind::kCreateIndex;
  records[4].table = "MOTELS";
  records[4].column = "price";

  for (const WalRecord& record : records) {
    auto decoded = DecodeWalRecord(EncodeWalRecord(record));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->kind, record.kind);
    EXPECT_EQ(decoded->table, record.table);
    EXPECT_EQ(decoded->rid, record.rid);
    ASSERT_EQ(decoded->row.size(), record.row.size());
    for (size_t i = 0; i < record.row.size(); ++i) {
      EXPECT_EQ(decoded->row[i], record.row[i]);
      EXPECT_EQ(decoded->row[i].type(), record.row[i].type());
    }
    EXPECT_EQ(decoded->column, record.column);
    ASSERT_EQ(decoded->schema.num_columns(), record.schema.num_columns());
    for (size_t i = 0; i < record.schema.num_columns(); ++i) {
      EXPECT_EQ(decoded->schema.column(i).name,
                record.schema.column(i).name);
      EXPECT_EQ(decoded->schema.column(i).type,
                record.schema.column(i).type);
    }
  }
}

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records(5);
  records[0].kind = WalRecord::Kind::kCreateTable;
  records[0].table = "MOTELS";
  records[0].schema = Schema({{"name", ValueType::kString},
                              {"price", ValueType::kDouble}});
  records[1].kind = WalRecord::Kind::kInsert;
  records[1].table = "MOTELS";
  records[1].rid = 42;
  records[1].row = {Value("Sleep|Inn #2\n"), Value(59.25)};
  records[2].kind = WalRecord::Kind::kUpdate;
  records[2].table = "MOTELS";
  records[2].rid = 42;
  records[2].row = {Value::Null(), Value(true)};
  records[3].kind = WalRecord::Kind::kDelete;
  records[3].table = "MOTELS";
  records[3].rid = 7;
  records[4].kind = WalRecord::Kind::kCreateIndex;
  records[4].table = "MOTELS";
  records[4].column = "price";
  return records;
}

TEST(WalRecordTest, V2RoundTripAndFraming) {
  for (const WalRecord& record : SampleRecords()) {
    std::string v1 = EncodeWalRecord(record, 1);
    std::string v2 = EncodeWalRecord(record, 2);
    EXPECT_NE(v1, v2);
    EXPECT_EQ(v2[0], '#') << "v2 lines are tagged with a version marker";
    EXPECT_NE(v1[0], '#') << "v1 lines start with a decimal length";
    auto from_v1 = DecodeWalRecord(v1);
    auto from_v2 = DecodeWalRecord(v2);
    ASSERT_TRUE(from_v1.ok()) << from_v1.status();
    ASSERT_TRUE(from_v2.ok()) << from_v2.status();
    EXPECT_EQ(from_v1->kind, record.kind);
    EXPECT_EQ(from_v2->kind, record.kind);
    EXPECT_EQ(from_v2->table, record.table);
    EXPECT_EQ(from_v2->rid, record.rid);
  }
}

// Property: flipping any single byte of a CRC-framed record makes
// DecodeWalRecord return Corruption. It must never crash and never
// mis-parse the damaged line as a (different) valid record — the guarantee
// length-only v1 framing cannot give.
TEST(WalRecordTest, V2DetectsEverySingleByteMutation) {
  for (const WalRecord& record : SampleRecords()) {
    std::string line = EncodeWalRecord(record, 2);
    for (size_t pos = 0; pos < line.size(); ++pos) {
      for (int delta : {1, 0x55, 0xFF}) {
        std::string mutated = line;
        mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
        auto decoded = DecodeWalRecord(mutated);
        EXPECT_FALSE(decoded.ok())
            << "byte " << pos << " xor " << delta << " went undetected";
      }
    }
  }
}

// Property: every strict prefix of a valid record (either framing) is
// rejected — a torn tail can never replay as a shorter valid record.
TEST(WalRecordTest, TruncationAlwaysDetectedInBothFramings) {
  for (const WalRecord& record : SampleRecords()) {
    for (int version : {1, 2}) {
      std::string line = EncodeWalRecord(record, version);
      for (size_t len = 0; len < line.size(); ++len) {
        auto decoded = DecodeWalRecord(line.substr(0, len));
        EXPECT_FALSE(decoded.ok())
            << "v" << version << " prefix of length " << len << " decoded";
      }
    }
  }
}

// v1 mutations may legitimately decode (the framing is too weak to notice
// a body edit); the decoder must simply never crash or hang on them.
TEST(WalRecordTest, V1MutationsNeverCrashDecoder) {
  Rng rng(42);
  for (const WalRecord& record : SampleRecords()) {
    std::string line = EncodeWalRecord(record, 1);
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutated = line;
      size_t pos = rng.UniformInt(0, mutated.size() - 1);
      mutated[pos] =
          static_cast<char>(mutated[pos] ^ (1 + rng.UniformInt(0, 254)));
      (void)DecodeWalRecord(mutated);  // Any Status is fine; no UB.
    }
  }
}

TEST(WalRecordTest, RejectsCorruption) {
  EXPECT_FALSE(DecodeWalRecord("").ok());
  EXPECT_FALSE(DecodeWalRecord("garbage").ok());
  EXPECT_FALSE(DecodeWalRecord("5|I|T").ok());      // Length mismatch.
  EXPECT_FALSE(DecodeWalRecord("3|Z|T").ok());      // Unknown kind.
  EXPECT_FALSE(DecodeWalRecord("7|I|T|x|y").ok());  // Bad field count/len.
}

TEST(WalFileTest, WriteReadAndTornTail) {
  std::string path = TempPath("wal_torn.log");
  RemoveFile(path);
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    WalRecord record;
    record.kind = WalRecord::Kind::kDelete;
    record.table = "T";
    record.rid = 1;
    ASSERT_TRUE(writer.Append(record).ok());
    record.rid = 2;
    ASSERT_TRUE(writer.Append(record).ok());
  }
  // Simulate a crash mid-append: add a partial line with no newline.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "57|I|T|99";
  }
  bool torn = false;
  auto records = ReadWal(path, &torn);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_TRUE(torn);
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].rid, 2u);
  RemoveFile(path);
}

TEST(WalFileTest, MissingFileIsEmptyLog) {
  auto records = ReadWal(TempPath("never_created.log"));
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalFileTest, MixedVersionLogReplays) {
  // An old v1 log that gained v2 records after an upgrade replays whole.
  std::string path = TempPath("wal_mixed.log");
  RemoveFile(path);
  WalRecord record;
  record.kind = WalRecord::Kind::kDelete;
  record.table = "T";
  {
    WalWriter writer;
    WalWriter::Options options;
    options.format_version = 1;
    ASSERT_TRUE(writer.Open(path, options).ok());
    record.rid = 1;
    ASSERT_TRUE(writer.Append(record).ok());
  }
  {
    WalWriter writer;  // Default options: v2 framing.
    ASSERT_TRUE(writer.Open(path).ok());
    record.rid = 2;
    ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Sync().ok());  // fdatasync smoke.
  }
  auto records = ReadWal(path);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].rid, 1u);
  EXPECT_EQ((*records)[1].rid, 2u);
  RemoveFile(path);
}

TEST(WalFileTest, RecoverWalSkipsCorruptMiddleRecords) {
  std::string path = TempPath("wal_salvage.log");
  RemoveFile(path);
  WalRecord record;
  record.kind = WalRecord::Kind::kDelete;
  record.table = "T";
  std::ofstream out(path, std::ios::binary);
  for (RowId rid = 0; rid < 5; ++rid) {
    record.rid = rid;
    if (rid == 2) {
      out << "##corrupt-line##\n";  // Unreadable middle record.
    } else {
      out << EncodeWalRecord(record) << "\n";
    }
  }
  out << "57|I|T|99";  // Torn tail.
  out.close();

  // Strict replay refuses the mid-log corruption...
  EXPECT_FALSE(ReadWal(path).ok());

  // ...salvage recovery keeps everything after it.
  RecoveryReport report;
  auto records = RecoverWal(path, &report);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[2].rid, 3u);  // Record after the corrupt line.
  EXPECT_EQ(report.applied, 4u);
  EXPECT_EQ(report.dropped, 2u);   // Corrupt middle + torn tail.
  EXPECT_EQ(report.salvaged, 2u);  // Records 3 and 4 post-corruption.
  EXPECT_TRUE(report.tail_truncated);
  EXPECT_FALSE(report.first_error.empty());
  RemoveFile(path);
}

class DurableDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("durable_test.log");
    RemoveFile(path_);
  }
  void TearDown() override { RemoveFile(path_); }

  std::string path_;
};

TEST_F(DurableDatabaseTest, SurvivesReopen) {
  RowId kept = kInvalidRowId;
  {
    DurableDatabase db;
    ASSERT_TRUE(db.Open(path_).ok());
    ASSERT_TRUE(db.CreateTable("CARS", Schema({{"plate", ValueType::kString},
                                               {"x", ValueType::kDouble}}))
                    .ok());
    auto a = db.Insert("CARS", {Value("AAA111"), Value(1.5)});
    auto b = db.Insert("CARS", {Value("BBB222"), Value(2.5)});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    kept = *a;
    ASSERT_TRUE(db.Update("CARS", *a, {Value("AAA111"), Value(99.0)}).ok());
    ASSERT_TRUE(db.Delete("CARS", *b).ok());
    ASSERT_TRUE(db.CreateIndex("CARS", "x").ok());
  }
  // "Crash" and recover.
  DurableDatabase db;
  size_t recovered = 0;
  ASSERT_TRUE(db.Open(path_, &recovered).ok());
  EXPECT_EQ(recovered, 6u);
  auto table = db.GetTable("CARS");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
  const Row* row = (*table)->Get(kept);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1], Value(99.0));
  EXPECT_NE((*table)->GetIndex("x"), nullptr);

  // The recovered database keeps working and assigns fresh ids.
  auto c = db.Insert("CARS", {Value("CCC333"), Value(3.0)});
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, kept);
}

TEST_F(DurableDatabaseTest, CheckpointCompactsAndPreservesState) {
  DurableDatabase db;
  ASSERT_TRUE(db.Open(path_).ok());
  ASSERT_TRUE(
      db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
  RowId survivor = kInvalidRowId;
  for (int i = 0; i < 50; ++i) {
    auto rid = db.Insert("T", {Value(i)});
    ASSERT_TRUE(rid.ok());
    if (i == 49) {
      survivor = *rid;
    } else {
      ASSERT_TRUE(db.Delete("T", *rid).ok());
    }
  }
  ASSERT_TRUE(db.CreateIndex("T", "v").ok());
  ASSERT_TRUE(db.Checkpoint().ok());

  // Only the survivor remains after replaying the compacted log.
  DurableDatabase reopened;
  size_t recovered = 0;
  ASSERT_TRUE(reopened.Open(path_, &recovered).ok());
  EXPECT_EQ(recovered, 3u);  // Create table + one insert + one index.
  auto table = reopened.GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
  EXPECT_NE((*table)->Get(survivor), nullptr);
  EXPECT_NE((*table)->GetIndex("v"), nullptr);

  // Checkpoint-then-write-then-recover still works.
  ASSERT_TRUE(reopened.Insert("T", {Value(1000)}).ok());
  DurableDatabase again;
  ASSERT_TRUE(again.Open(path_).ok());
  EXPECT_EQ((*again.GetTable("T"))->size(), 2u);
}

TEST_F(DurableDatabaseTest, RandomizedCrashRecoveryMatchesOracle) {
  Rng rng(1997);
  std::map<RowId, int64_t> oracle;
  {
    DurableDatabase db;
    ASSERT_TRUE(db.Open(path_).ok());
    ASSERT_TRUE(
        db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
    for (int step = 0; step < 500; ++step) {
      double action = rng.UniformDouble(0, 1);
      if (action < 0.5 || oracle.empty()) {
        int64_t v = rng.UniformInt(0, 1000);
        auto rid = db.Insert("T", {Value(v)});
        ASSERT_TRUE(rid.ok());
        oracle[*rid] = v;
      } else if (action < 0.8) {
        auto it = oracle.begin();
        std::advance(it, rng.UniformInt(0, oracle.size() - 1));
        int64_t v = rng.UniformInt(0, 1000);
        ASSERT_TRUE(db.Update("T", it->first, {Value(v)}).ok());
        it->second = v;
      } else {
        auto it = oracle.begin();
        std::advance(it, rng.UniformInt(0, oracle.size() - 1));
        ASSERT_TRUE(db.Delete("T", it->first).ok());
        oracle.erase(it);
      }
      if (step == 250) {
        ASSERT_TRUE(db.Checkpoint().ok());
      }
    }
  }
  DurableDatabase recovered;
  ASSERT_TRUE(recovered.Open(path_).ok());
  auto table = recovered.GetTable("T");
  ASSERT_TRUE(table.ok());
  std::map<RowId, int64_t> state;
  (*table)->Scan([&](RowId rid, const Row& row) {
    state[rid] = row[0].int_value();
  });
  EXPECT_EQ(state, oracle);
}

void CorruptMiddleLine(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  size_t second_line = contents.find('\n') + 1;
  contents.replace(second_line, 1, "@");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TEST_F(DurableDatabaseTest, StrictOpenNeverLeavesHalfReplayedState) {
  {
    DurableDatabase db;
    ASSERT_TRUE(db.Open(path_).ok());
    ASSERT_TRUE(db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
    ASSERT_TRUE(db.Insert("T", {Value(1)}).ok());
    ASSERT_TRUE(db.Insert("T", {Value(2)}).ok());
  }
  CorruptMiddleLine(path_);

  DurableDatabase strict;
  EXPECT_FALSE(strict.Open(path_).ok());
  // The failed replay must not leave the create-table record applied.
  EXPECT_FALSE(strict.is_open());
  EXPECT_FALSE(strict.GetTable("T").ok());
}

TEST_F(DurableDatabaseTest, SalvageOpenRecoversAroundCorruption) {
  {
    DurableDatabase db;
    ASSERT_TRUE(db.Open(path_).ok());
    ASSERT_TRUE(db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
    ASSERT_TRUE(db.Insert("T", {Value(1)}).ok());
    ASSERT_TRUE(db.Insert("T", {Value(2)}).ok());
  }
  CorruptMiddleLine(path_);  // Clobbers the first insert's record.

  DurableDatabase::Options options;
  options.salvage = true;
  DurableDatabase db(options);
  ASSERT_TRUE(db.Open(path_).ok());
  const RecoveryReport& report = db.recovery_report();
  EXPECT_EQ(report.applied, 2u);  // Create-table + second insert.
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.salvaged, 1u);
  auto table = db.GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
  // Salvaged database accepts new commits.
  EXPECT_TRUE(db.Insert("T", {Value(3)}).ok());
}

TEST_F(DurableDatabaseTest, SyncDurabilityCommitsAndRecovers) {
  DurableDatabase::Options options;
  options.durability = DurableDatabase::Options::Durability::kSync;
  RowId rid = kInvalidRowId;
  {
    DurableDatabase db(options);
    ASSERT_TRUE(db.Open(path_).ok());
    ASSERT_TRUE(db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
    auto inserted = db.Insert("T", {Value(7)});
    ASSERT_TRUE(inserted.ok());
    rid = *inserted;
    ASSERT_TRUE(db.Checkpoint().ok());  // Syncs the snapshot pre-rename.
  }
  DurableDatabase db(options);
  ASSERT_TRUE(db.Open(path_).ok());
  auto table = db.GetTable("T");
  ASSERT_TRUE(table.ok());
  ASSERT_NE((*table)->Get(rid), nullptr);
  EXPECT_EQ((*(*table)->Get(rid))[0], Value(7));
}

}  // namespace
}  // namespace most
