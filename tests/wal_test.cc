#include "storage/wal.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/durable_database.h"

namespace most {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveFile(const std::string& path) { std::remove(path.c_str()); }

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord records[5];
  records[0].kind = WalRecord::Kind::kCreateTable;
  records[0].table = "MOTELS";
  records[0].schema = Schema({{"name", ValueType::kString},
                              {"price", ValueType::kDouble},
                              {"rooms", ValueType::kInt}});
  records[1].kind = WalRecord::Kind::kInsert;
  records[1].table = "MOTELS";
  records[1].rid = 42;
  records[1].row = {Value("Sleep|Inn, the 100% best:motel\n"), Value(59.25),
                    Value(12)};
  records[2].kind = WalRecord::Kind::kUpdate;
  records[2].table = "MOTELS";
  records[2].rid = 42;
  records[2].row = {Value::Null(), Value(true), Value(-17)};
  records[3].kind = WalRecord::Kind::kDelete;
  records[3].table = "MOTELS";
  records[3].rid = 7;
  records[4].kind = WalRecord::Kind::kCreateIndex;
  records[4].table = "MOTELS";
  records[4].column = "price";

  for (const WalRecord& record : records) {
    auto decoded = DecodeWalRecord(EncodeWalRecord(record));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->kind, record.kind);
    EXPECT_EQ(decoded->table, record.table);
    EXPECT_EQ(decoded->rid, record.rid);
    ASSERT_EQ(decoded->row.size(), record.row.size());
    for (size_t i = 0; i < record.row.size(); ++i) {
      EXPECT_EQ(decoded->row[i], record.row[i]);
      EXPECT_EQ(decoded->row[i].type(), record.row[i].type());
    }
    EXPECT_EQ(decoded->column, record.column);
    ASSERT_EQ(decoded->schema.num_columns(), record.schema.num_columns());
    for (size_t i = 0; i < record.schema.num_columns(); ++i) {
      EXPECT_EQ(decoded->schema.column(i).name,
                record.schema.column(i).name);
      EXPECT_EQ(decoded->schema.column(i).type,
                record.schema.column(i).type);
    }
  }
}

TEST(WalRecordTest, RejectsCorruption) {
  EXPECT_FALSE(DecodeWalRecord("").ok());
  EXPECT_FALSE(DecodeWalRecord("garbage").ok());
  EXPECT_FALSE(DecodeWalRecord("5|I|T").ok());      // Length mismatch.
  EXPECT_FALSE(DecodeWalRecord("3|Z|T").ok());      // Unknown kind.
  EXPECT_FALSE(DecodeWalRecord("7|I|T|x|y").ok());  // Bad field count/len.
}

TEST(WalFileTest, WriteReadAndTornTail) {
  std::string path = TempPath("wal_torn.log");
  RemoveFile(path);
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    WalRecord record;
    record.kind = WalRecord::Kind::kDelete;
    record.table = "T";
    record.rid = 1;
    ASSERT_TRUE(writer.Append(record).ok());
    record.rid = 2;
    ASSERT_TRUE(writer.Append(record).ok());
  }
  // Simulate a crash mid-append: add a partial line with no newline.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "57|I|T|99";
  }
  bool torn = false;
  auto records = ReadWal(path, &torn);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_TRUE(torn);
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].rid, 2u);
  RemoveFile(path);
}

TEST(WalFileTest, MissingFileIsEmptyLog) {
  auto records = ReadWal(TempPath("never_created.log"));
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

class DurableDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("durable_test.log");
    RemoveFile(path_);
  }
  void TearDown() override { RemoveFile(path_); }

  std::string path_;
};

TEST_F(DurableDatabaseTest, SurvivesReopen) {
  RowId kept = kInvalidRowId;
  {
    DurableDatabase db;
    ASSERT_TRUE(db.Open(path_).ok());
    ASSERT_TRUE(db.CreateTable("CARS", Schema({{"plate", ValueType::kString},
                                               {"x", ValueType::kDouble}}))
                    .ok());
    auto a = db.Insert("CARS", {Value("AAA111"), Value(1.5)});
    auto b = db.Insert("CARS", {Value("BBB222"), Value(2.5)});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    kept = *a;
    ASSERT_TRUE(db.Update("CARS", *a, {Value("AAA111"), Value(99.0)}).ok());
    ASSERT_TRUE(db.Delete("CARS", *b).ok());
    ASSERT_TRUE(db.CreateIndex("CARS", "x").ok());
  }
  // "Crash" and recover.
  DurableDatabase db;
  size_t recovered = 0;
  ASSERT_TRUE(db.Open(path_, &recovered).ok());
  EXPECT_EQ(recovered, 6u);
  auto table = db.GetTable("CARS");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
  const Row* row = (*table)->Get(kept);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1], Value(99.0));
  EXPECT_NE((*table)->GetIndex("x"), nullptr);

  // The recovered database keeps working and assigns fresh ids.
  auto c = db.Insert("CARS", {Value("CCC333"), Value(3.0)});
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, kept);
}

TEST_F(DurableDatabaseTest, CheckpointCompactsAndPreservesState) {
  DurableDatabase db;
  ASSERT_TRUE(db.Open(path_).ok());
  ASSERT_TRUE(
      db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
  RowId survivor = kInvalidRowId;
  for (int i = 0; i < 50; ++i) {
    auto rid = db.Insert("T", {Value(i)});
    ASSERT_TRUE(rid.ok());
    if (i == 49) {
      survivor = *rid;
    } else {
      ASSERT_TRUE(db.Delete("T", *rid).ok());
    }
  }
  ASSERT_TRUE(db.CreateIndex("T", "v").ok());
  ASSERT_TRUE(db.Checkpoint().ok());

  // Only the survivor remains after replaying the compacted log.
  DurableDatabase reopened;
  size_t recovered = 0;
  ASSERT_TRUE(reopened.Open(path_, &recovered).ok());
  EXPECT_EQ(recovered, 3u);  // Create table + one insert + one index.
  auto table = reopened.GetTable("T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 1u);
  EXPECT_NE((*table)->Get(survivor), nullptr);
  EXPECT_NE((*table)->GetIndex("v"), nullptr);

  // Checkpoint-then-write-then-recover still works.
  ASSERT_TRUE(reopened.Insert("T", {Value(1000)}).ok());
  DurableDatabase again;
  ASSERT_TRUE(again.Open(path_).ok());
  EXPECT_EQ((*again.GetTable("T"))->size(), 2u);
}

TEST_F(DurableDatabaseTest, RandomizedCrashRecoveryMatchesOracle) {
  Rng rng(1997);
  std::map<RowId, int64_t> oracle;
  {
    DurableDatabase db;
    ASSERT_TRUE(db.Open(path_).ok());
    ASSERT_TRUE(
        db.CreateTable("T", Schema({{"v", ValueType::kInt}})).ok());
    for (int step = 0; step < 500; ++step) {
      double action = rng.UniformDouble(0, 1);
      if (action < 0.5 || oracle.empty()) {
        int64_t v = rng.UniformInt(0, 1000);
        auto rid = db.Insert("T", {Value(v)});
        ASSERT_TRUE(rid.ok());
        oracle[*rid] = v;
      } else if (action < 0.8) {
        auto it = oracle.begin();
        std::advance(it, rng.UniformInt(0, oracle.size() - 1));
        int64_t v = rng.UniformInt(0, 1000);
        ASSERT_TRUE(db.Update("T", it->first, {Value(v)}).ok());
        it->second = v;
      } else {
        auto it = oracle.begin();
        std::advance(it, rng.UniformInt(0, oracle.size() - 1));
        ASSERT_TRUE(db.Delete("T", it->first).ok());
        oracle.erase(it);
      }
      if (step == 250) {
        ASSERT_TRUE(db.Checkpoint().ok());
      }
    }
  }
  DurableDatabase recovered;
  ASSERT_TRUE(recovered.Open(path_).ok());
  auto table = recovered.GetTable("T");
  ASSERT_TRUE(table.ok());
  std::map<RowId, int64_t> state;
  (*table)->Scan([&](RowId rid, const Row& row) {
    state[rid] = row[0].int_value();
  });
  EXPECT_EQ(state, oracle);
}

}  // namespace
}  // namespace most
