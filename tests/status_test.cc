#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace most {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no table MOTELS");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no table MOTELS");
  EXPECT_EQ(s.ToString(), "NotFound: no table MOTELS");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Disconnected("x").code(), StatusCode::kDisconnected);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  MOST_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 10;
  EXPECT_EQ(r.value_or(-7), 10);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  MOST_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());
  EXPECT_FALSE(QuarterViaMacro(3).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace most
