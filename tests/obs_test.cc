// Unit tests for the observability layer (src/obs): metric primitives,
// registry aggregation and attach/detach lifecycle, exporter goldens, the
// trace sink ring, and the slow-query log.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace most::obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), uint64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({0.1, 1.0});
  h.Observe(0.1);    // Equal to a bound: belongs to that bucket (le).
  h.Observe(0.05);   // Below the first bound.
  h.Observe(0.1001); // Just above: next bucket.
  h.Observe(1.0);
  h.Observe(2.0);    // +Inf bucket.
  Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);  // 0.05, 0.1
  EXPECT_EQ(s.counts[1], 2u);  // 0.1001, 1.0
  EXPECT_EQ(s.counts[2], 1u);  // 2.0
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.1 + 0.05 + 0.1001 + 1.0 + 2.0);
}

TEST(HistogramTest, ConcurrentObservesAreExact) {
  Histogram h(ExponentialBuckets(1.0, 2.0, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(t % 4));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, uint64_t{kThreads} * kPerThread);
}

TEST(HistogramTest, QuantileInterpolatesAndCapsAtLastBound) {
  Histogram h({10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.Observe(5.0);
  Histogram::Snapshot s = h.snapshot();
  // All mass in [0, 10]: the median interpolates inside that bucket.
  double p50 = s.Quantile(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  // +Inf landings report the largest finite bound, not infinity.
  Histogram h2({10.0});
  h2.Observe(1e9);
  EXPECT_DOUBLE_EQ(h2.snapshot().Quantile(0.99), 10.0);
}

TEST(ExponentialBucketsTest, GeometricSeries) {
  std::vector<double> b = ExponentialBuckets(1e-5, 4.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 1e-5);
  EXPECT_DOUBLE_EQ(b[1], 4e-5);
  EXPECT_DOUBLE_EQ(b[2], 16e-5);
}

TEST(RegistryTest, GetOrCreateReturnsSameSeries) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("most_x_total", "x", {{"k", "v"}});
  Counter* b = r.GetCounter("most_x_total", "x", {{"k", "v"}});
  Counter* c = r.GetCounter("most_x_total", "x", {{"k", "w"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RegistryTest, AttachedSeriesSumAndDetachFoldsIntoRetired) {
  MetricsRegistry r;
  Counter c1, c2;
  uint64_t id1 = r.AttachCounter("most_inst_total", "per-instance", {}, &c1);
  uint64_t id2 = r.AttachCounter("most_inst_total", "per-instance", {}, &c2);
  c1.Inc(5);
  c2.Inc(2);

  auto value_of = [&]() -> double {
    for (const FamilySnapshot& fam : r.Collect()) {
      if (fam.name == "most_inst_total") return fam.series.at(0).value;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_of(), 7.0);

  // Detach one instance: its final value is folded into the retired
  // accumulator, so the engine-wide total stays monotone.
  r.DetachMetric(id1);
  EXPECT_DOUBLE_EQ(value_of(), 7.0);
  c2.Inc(1);
  EXPECT_DOUBLE_EQ(value_of(), 8.0);
  r.DetachMetric(id2);
  EXPECT_DOUBLE_EQ(value_of(), 8.0);
}

TEST(RegistryTest, DetachedGaugeDisappears) {
  MetricsRegistry r;
  Gauge g;
  uint64_t id = r.AttachGauge("most_depth", "depth", {}, &g);
  g.Set(9);
  ASSERT_EQ(r.Collect().size(), 1u);
  r.DetachMetric(id);
  EXPECT_TRUE(r.Collect().empty());
}

TEST(RegistryTest, DetachedHistogramKeepsItsMass) {
  MetricsRegistry r;
  Histogram h({1.0, 10.0});
  uint64_t id = r.AttachHistogram("most_lat", "lat", {}, &h);
  h.Observe(0.5);
  h.Observe(5.0);
  r.DetachMetric(id);
  std::vector<FamilySnapshot> fams = r.Collect();
  ASSERT_EQ(fams.size(), 1u);
  ASSERT_TRUE(fams[0].series.at(0).hist.has_value());
  EXPECT_EQ(fams[0].series.at(0).hist->count, 2u);
}

TEST(RegistryTest, EnabledFlagIsAKillSwitch) {
  MetricsRegistry r;
  EXPECT_TRUE(r.enabled());
  r.set_enabled(false);
  EXPECT_FALSE(r.enabled());
  r.set_enabled(true);
  EXPECT_TRUE(r.enabled());
}

TEST(RegistryTest, ResetValuesZeroesOwnedAndDropsRetired) {
  MetricsRegistry r;
  r.GetCounter("most_a_total", "a")->Inc(3);
  Counter c;
  uint64_t id = r.AttachCounter("most_b_total", "b", {}, &c);
  c.Inc(4);
  r.DetachMetric(id);
  r.ResetValues();
  for (const FamilySnapshot& fam : r.Collect()) {
    for (const SeriesSnapshot& s : fam.series) {
      EXPECT_DOUBLE_EQ(s.value, 0.0) << fam.name;
    }
  }
}

TEST(RegistryTest, CollectorContributesComputedFamilies) {
  MetricsRegistry r;
  uint64_t id = r.AddCollector([](std::vector<FamilySnapshot>* out) {
    FamilySnapshot fam;
    fam.name = "most_computed_total";
    fam.type = MetricType::kCounter;
    SeriesSnapshot s;
    s.value = 42.0;
    fam.series.push_back(std::move(s));
    out->push_back(std::move(fam));
  });
  std::vector<FamilySnapshot> fams = r.Collect();
  ASSERT_EQ(fams.size(), 1u);
  EXPECT_EQ(fams[0].name, "most_computed_total");
  r.RemoveCollector(id);
  EXPECT_TRUE(r.Collect().empty());
}

TEST(RegistryTest, FailpointFiringsReachTheGlobalRegistry) {
  FailpointRegistry& fps = FailpointRegistry::Instance();
  ASSERT_TRUE(fps.Arm("obs/test_probe", "noop").ok());
  (void)fps.Check("obs/test_probe");
  fps.Disarm("obs/test_probe");

  bool found = false;
  for (const FamilySnapshot& fam : MetricsRegistry::Global().Collect()) {
    if (fam.name != "most_failpoint_fired_total") continue;
    for (const SeriesSnapshot& s : fam.series) {
      auto it = s.labels.find("site");
      if (it != s.labels.end() && it->second == "obs/test_probe") {
        found = true;
        EXPECT_GE(s.value, 1.0);
      }
    }
  }
  EXPECT_TRUE(found) << "fired failpoint missing from metrics collection";
}

// Exporter goldens: a small fixed registry must serialize byte-for-byte
// identically, so downstream scrapers and the BENCH_*.json consumers can
// depend on the exact shape.
class ExporterGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.GetCounter("most_test_events_total", "Events seen",
                         {{"kind", "a"}})
        ->Inc(3);
    registry_.GetCounter("most_test_events_total", "Events seen",
                         {{"kind", "b"}})
        ->Inc(1);
    registry_.GetGauge("most_test_depth", "Queue depth")->Set(7);
    Histogram* h = registry_.GetHistogram("most_test_latency_seconds",
                                          "Latency", {0.1, 1.0});
    h->Observe(0.05);
    h->Observe(0.5);
    h->Observe(5.0);
  }

  MetricsRegistry registry_;
};

TEST_F(ExporterGoldenTest, PrometheusText) {
  const char* expected =
      "# HELP most_test_depth Queue depth\n"
      "# TYPE most_test_depth gauge\n"
      "most_test_depth 7\n"
      "# HELP most_test_events_total Events seen\n"
      "# TYPE most_test_events_total counter\n"
      "most_test_events_total{kind=\"a\"} 3\n"
      "most_test_events_total{kind=\"b\"} 1\n"
      "# HELP most_test_latency_seconds Latency\n"
      "# TYPE most_test_latency_seconds histogram\n"
      "most_test_latency_seconds_bucket{le=\"0.1\"} 1\n"
      "most_test_latency_seconds_bucket{le=\"1\"} 2\n"
      "most_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "most_test_latency_seconds_sum 5.55\n"
      "most_test_latency_seconds_count 3\n";
  EXPECT_EQ(PrometheusText(registry_), expected);
}

TEST_F(ExporterGoldenTest, JsonSnapshot) {
  const char* expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"most_test_depth\", \"type\": \"gauge\", \"series\": "
      "[\n"
      "      {\"labels\": {}, \"value\": 7}\n"
      "    ]},\n"
      "    {\"name\": \"most_test_events_total\", \"type\": \"counter\", "
      "\"series\": [\n"
      "      {\"labels\": {\"kind\": \"a\"}, \"value\": 3},\n"
      "      {\"labels\": {\"kind\": \"b\"}, \"value\": 1}\n"
      "    ]},\n"
      "    {\"name\": \"most_test_latency_seconds\", \"type\": "
      "\"histogram\", \"series\": [\n"
      "      {\"labels\": {}, \"count\": 3, \"sum\": 5.55, \"p50\": 1, "
      "\"p95\": 1, \"p99\": 1}\n"
      "    ]}\n"
      "  ]\n"
      "}";
  EXPECT_EQ(JsonSnapshot(registry_), expected);
}

TEST_F(ExporterGoldenTest, PrometheusEscapesLabelValues) {
  registry_.GetCounter("most_test_events_total", "Events seen",
                       {{"kind", "a\"b\\c\nd"}})
      ->Inc();
  std::string text = PrometheusText(registry_);
  EXPECT_NE(text.find("kind=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(TraceSinkTest, RecordsSpansAndCapsTheRing) {
  TraceSink sink(/*capacity=*/4);
  // Disabled by default: spans cost nothing and record nothing.
  { TraceSpan span("obs/test", &sink); }
  EXPECT_EQ(sink.total_recorded(), 0u);

  sink.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    TraceSpan span("obs/test", &sink);
  }
  EXPECT_EQ(sink.total_recorded(), 6u);
  // 6 recorded into a 4-slot ring: the 2 overwritten spans are *dropped*,
  // distinct from total_recorded (which counts every Record call).
  EXPECT_EQ(sink.dropped(), 2u);
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);  // Ring capacity.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns)
        << "events must be oldest-first";
  }
  sink.Clear();
  EXPECT_TRUE(sink.Events().empty());
  // Clear drops the buffer, not the history counters.
  EXPECT_EQ(sink.total_recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log(/*capacity=*/2);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.MaybeRecord({1, "q", "full", 1000000, 1}));

  log.set_threshold_ns(1000);
  EXPECT_FALSE(log.MaybeRecord({1, "fast", "delta", 999, 1}));
  EXPECT_TRUE(log.MaybeRecord({2, "slow", "full", 1000, 2}));
  EXPECT_TRUE(log.MaybeRecord({3, "slower", "full", 5000, 3}));
  EXPECT_TRUE(log.MaybeRecord({4, "slowest", "delta", 9000, 4}));
  EXPECT_EQ(log.total_recorded(), 3u);
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);  // Ring capacity; oldest dropped.
  EXPECT_EQ(entries[0].query_id, 3u);
  EXPECT_EQ(entries[1].query_id, 4u);
}

TEST(DumpMetricsTest, MentionsRegistryAndTraceState) {
  std::ostringstream os;
  DumpMetrics(os);
  std::string out = os.str();
  EXPECT_NE(out.find("MOST engine metrics snapshot"), std::string::npos);
  EXPECT_NE(out.find("\"metrics\""), std::string::npos);
  EXPECT_NE(out.find("trace sink"), std::string::npos);
}

}  // namespace
}  // namespace most::obs
