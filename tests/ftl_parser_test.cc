#include "ftl/parser.h"

#include <gtest/gtest.h>

#include "ftl/lexer.h"

namespace most {
namespace {

TEST(LexerTest, TokenizesOperators) {
  auto tokens = Tokenize("<= >= < > = != := <- ( ) [ ] , . + - * /");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kLe, TokenKind::kGe, TokenKind::kLt, TokenKind::kGt,
                TokenKind::kEq, TokenKind::kNe, TokenKind::kAssignOp,
                TokenKind::kAssignOp, TokenKind::kLParen, TokenKind::kRParen,
                TokenKind::kLBracket, TokenKind::kRBracket, TokenKind::kComma,
                TokenKind::kDot, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kSlash, TokenKind::kEnd}));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("3.25 100 'hello' \"world\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 3.25);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 100);
  EXPECT_EQ((*tokens)[2].text, "hello");
  EXPECT_EQ((*tokens)[3].text, "world");
}

TEST(LexerTest, DottedIdentifiersSplitOnDots) {
  auto tokens = Tokenize("o.X.POSITION.value");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 8u);  // o . X . POSITION . value END
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a : b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("retrieve UnTiL");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("RETRIEVE"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("UNTIL"));
  EXPECT_FALSE((*tokens)[1].IsKeyword("UNTILX"));
}

TEST(ParserTest, PaperQueryQ) {
  // "Retrieve the pairs o, n such that the distance stays within 5 until
  // they both enter polygon P" (Section 3.2).
  auto q = ParseQuery(
      "RETRIEVE o, n FROM MOVING o, MOVING n "
      "WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->retrieve, (std::vector<std::string>{"o", "n"}));
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].class_name, "MOVING");
  EXPECT_EQ(q->from[1].var, "n");
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->kind(), FtlFormula::Kind::kUntil);
  EXPECT_EQ(q->where->children()[0]->kind(), FtlFormula::Kind::kCompare);
  EXPECT_EQ(q->where->children()[1]->kind(), FtlFormula::Kind::kAnd);
  EXPECT_TRUE(q->where->IsConjunctive());
}

TEST(ParserTest, PaperQueryI) {
  // Objects entering P within 3 units with PRICE <= 100 (Section 3.4 I).
  auto q = ParseQuery(
      "RETRIEVE o FROM OBJECTS o "
      "WHERE o.PRICE <= 100 AND EVENTUALLY WITHIN 3 INSIDE(o, P)");
  ASSERT_TRUE(q.ok()) << q.status();
  const FormulaPtr& w = q->where;
  ASSERT_EQ(w->kind(), FtlFormula::Kind::kAnd);
  EXPECT_EQ(w->children()[1]->kind(), FtlFormula::Kind::kEventuallyWithin);
  EXPECT_EQ(w->children()[1]->bound(), 3);
}

TEST(ParserTest, PaperQueryII) {
  auto q = ParseQuery(
      "RETRIEVE o FROM OBJECTS o "
      "WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 "
      "INSIDE(o, P))");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->where->kind(), FtlFormula::Kind::kEventuallyWithin);
  const FormulaPtr& inner = q->where->children()[0];
  ASSERT_EQ(inner->kind(), FtlFormula::Kind::kAnd);
  EXPECT_EQ(inner->children()[1]->kind(), FtlFormula::Kind::kAlwaysFor);
  EXPECT_EQ(inner->children()[1]->bound(), 2);
}

TEST(ParserTest, PaperQueryIII) {
  auto q = ParseQuery(
      "RETRIEVE o FROM OBJECTS o "
      "WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P) "
      "AND EVENTUALLY AFTER 5 INSIDE(o, Q))");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where->kind(), FtlFormula::Kind::kEventuallyWithin);
}

TEST(ParserTest, AssignmentQuantifier) {
  // Paper Section 3.3: [x <- q] Nexttime q != x.
  auto f = ParseFormula("[x := o.HEIGHT] NEXTTIME o.HEIGHT != x");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->kind(), FtlFormula::Kind::kAssign);
  EXPECT_EQ((*f)->var(), "x");
  EXPECT_EQ((*f)->children()[0]->kind(), FtlFormula::Kind::kNexttime);
  // Arrow spelling works too.
  EXPECT_TRUE(ParseFormula("[x <- o.HEIGHT] NEXTTIME o.HEIGHT != x").ok());
}

TEST(ParserTest, AttrPathsAndSubAttributes) {
  auto f = ParseFormula("o.X.POSITION.value = 5 AND o.X.POSITION.updatetime "
                        "<= time AND SPEED(o.X.POSITION) = 5");
  ASSERT_TRUE(f.ok()) << f.status();
  // Left-assoc AND: ((a AND b) AND c).
  const FormulaPtr& c = (*f)->children()[1];
  EXPECT_EQ(c->lhs_term()->kind(), FtlTerm::Kind::kAttrRef);
  EXPECT_EQ(c->lhs_term()->attr(), "X.POSITION");
  EXPECT_EQ(c->lhs_term()->sub(), FtlTerm::AttrSub::kSpeed);
  const FormulaPtr& a = (*f)->children()[0]->children()[0];
  EXPECT_EQ(a->lhs_term()->attr(), "X.POSITION");
  EXPECT_EQ(a->lhs_term()->sub(), FtlTerm::AttrSub::kValue);
  const FormulaPtr& b = (*f)->children()[0]->children()[1];
  EXPECT_EQ(b->lhs_term()->sub(), FtlTerm::AttrSub::kUpdatetime);
  EXPECT_EQ(b->rhs_term()->kind(), FtlTerm::Kind::kTime);
}

TEST(ParserTest, WithinSphere) {
  auto f = ParseFormula("WITHIN_SPHERE(2.5, a, b, c)");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->kind(), FtlFormula::Kind::kWithinSphere);
  EXPECT_DOUBLE_EQ((*f)->radius(), 2.5);
  EXPECT_EQ((*f)->sphere_vars(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto f = ParseFormula("o.A + 2 * 3 <= 10");
  ASSERT_TRUE(f.ok()) << f.status();
  const TermPtr& lhs = (*f)->lhs_term();
  ASSERT_EQ(lhs->kind(), FtlTerm::Kind::kArith);
  EXPECT_EQ(lhs->arith_op(), FtlTerm::ArithOp::kAdd);
  EXPECT_EQ(lhs->children()[1]->arith_op(), FtlTerm::ArithOp::kMul);
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  auto f = ParseFormula("o.A >= -5");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_DOUBLE_EQ((*f)->rhs_term()->literal().double_value(), -5.0);
}

TEST(ParserTest, UntilIsRightAssociative) {
  auto f = ParseFormula("TRUE UNTIL FALSE UNTIL TRUE");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->kind(), FtlFormula::Kind::kUntil);
  EXPECT_EQ((*f)->children()[1]->kind(), FtlFormula::Kind::kUntil);
}

TEST(ParserTest, UntilWithinBound) {
  auto f = ParseFormula("INSIDE(o, P) UNTIL WITHIN 7 INSIDE(o, Q)");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->kind(), FtlFormula::Kind::kUntilWithin);
  EXPECT_EQ((*f)->bound(), 7);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("RETRIEVE FROM A o WHERE TRUE").ok());
  EXPECT_FALSE(ParseQuery("RETRIEVE o WHERE TRUE").ok());
  EXPECT_FALSE(ParseQuery("RETRIEVE o FROM A o").ok());
  EXPECT_FALSE(ParseFormula("EVENTUALLY WITHIN -3 TRUE").ok());
  EXPECT_FALSE(ParseFormula("EVENTUALLY WITHIN 1.5 TRUE").ok());
  EXPECT_FALSE(ParseFormula("INSIDE(o P)").ok());
  EXPECT_FALSE(ParseFormula("o.A <=").ok());
  EXPECT_FALSE(ParseFormula("o.A <= 5 extra").ok());
  EXPECT_FALSE(ParseFormula("[x := 5 NEXTTIME TRUE").ok());
  EXPECT_FALSE(ParseFormula("WITHIN_SPHERE(5)").ok());
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* sources[] = {
      "RETRIEVE o, n FROM MOVING o, MOVING n "
      "WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))",
      "RETRIEVE o FROM A o WHERE EVENTUALLY WITHIN 3 INSIDE(o, P)",
      "RETRIEVE o FROM A o WHERE [x := SPEED(o.X.POSITION)] EVENTUALLY "
      "SPEED(o.X.POSITION) >= x * 2",
  };
  for (const char* src : sources) {
    auto q1 = ParseQuery(src);
    ASSERT_TRUE(q1.ok()) << q1.status() << " for " << src;
    // Parse the printed form; the second print must be identical.
    auto q2 = ParseQuery(q1->ToString());
    ASSERT_TRUE(q2.ok()) << q2.status() << " for printed form "
                         << q1->ToString();
    EXPECT_EQ(q1->ToString(), q2->ToString());
  }
}

}  // namespace
}  // namespace most
