#include "common/interval.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace most {
namespace {

IntervalSet Make(std::initializer_list<Interval> ivs) {
  return IntervalSet::FromIntervals(std::vector<Interval>(ivs));
}

TEST(IntervalTest, BasicPredicates) {
  Interval iv(3, 7);
  EXPECT_TRUE(iv.valid());
  EXPECT_EQ(iv.length(), 5);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(8));
  EXPECT_FALSE(Interval(5, 4).valid());
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(5, 9)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(6, 9)));
  EXPECT_TRUE(Interval(1, 5).OverlapsOrAdjacent(Interval(6, 9)));
  EXPECT_FALSE(Interval(1, 5).OverlapsOrAdjacent(Interval(7, 9)));
}

TEST(IntervalTest, CompatibleWithMatchesAppendixDefinition) {
  // [l,u] compatible with [m,n] iff m <= u+1 and n >= u.
  EXPECT_TRUE(Interval(1, 5).CompatibleWith(Interval(6, 9)));
  EXPECT_TRUE(Interval(1, 5).CompatibleWith(Interval(3, 5)));
  EXPECT_FALSE(Interval(1, 5).CompatibleWith(Interval(7, 9)));   // Gap.
  EXPECT_FALSE(Interval(1, 5).CompatibleWith(Interval(2, 4)));   // n < u.
}

TEST(IntervalSetTest, NormalizationMergesConsecutive) {
  // The appendix requires stored intervals to be non-consecutive: [1,3] and
  // [4,6] must coalesce.
  IntervalSet s = Make({{4, 6}, {1, 3}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(1, 6));
}

TEST(IntervalSetTest, NormalizationKeepsGaps) {
  IntervalSet s = Make({{1, 3}, {5, 6}});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], Interval(1, 3));
  EXPECT_EQ(s.intervals()[1], Interval(5, 6));
}

TEST(IntervalSetTest, NormalizationDropsInvalid) {
  IntervalSet s = Make({{5, 2}, {1, 1}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], Interval(1, 1));
}

TEST(IntervalSetTest, ContainsBinarySearch) {
  IntervalSet s = Make({{1, 3}, {10, 20}, {30, 30}});
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE(s.Contains(15));
  EXPECT_TRUE(s.Contains(30));
  EXPECT_FALSE(s.Contains(31));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(IntervalSet().Contains(0));
}

TEST(IntervalSetTest, FirstAtOrAfter) {
  IntervalSet s = Make({{5, 8}, {12, 14}});
  Tick t = 0;
  ASSERT_TRUE(s.FirstAtOrAfter(0, &t));
  EXPECT_EQ(t, 5);
  ASSERT_TRUE(s.FirstAtOrAfter(6, &t));
  EXPECT_EQ(t, 6);
  ASSERT_TRUE(s.FirstAtOrAfter(9, &t));
  EXPECT_EQ(t, 12);
  EXPECT_FALSE(s.FirstAtOrAfter(15, &t));
}

TEST(IntervalSetTest, UnionIntersectDifference) {
  IntervalSet a = Make({{1, 5}, {10, 15}});
  IntervalSet b = Make({{4, 11}, {20, 25}});
  EXPECT_EQ(a.Union(b), Make({{1, 15}, {20, 25}}));
  EXPECT_EQ(a.Intersect(b), Make({{4, 5}, {10, 11}}));
  EXPECT_EQ(a.Difference(b), Make({{1, 3}, {12, 15}}));
  EXPECT_EQ(b.Difference(a), Make({{6, 9}, {20, 25}}));
}

TEST(IntervalSetTest, ComplementWithinUniverse) {
  IntervalSet a = Make({{3, 5}, {8, 8}});
  EXPECT_EQ(a.Complement(Interval(0, 10)), Make({{0, 2}, {6, 7}, {9, 10}}));
  EXPECT_EQ(a.Complement(Interval(4, 4)), IntervalSet());
  EXPECT_EQ(IntervalSet().Complement(Interval(1, 3)), Make({{1, 3}}));
}

TEST(IntervalSetTest, ShiftAndClamp) {
  IntervalSet a = Make({{3, 5}, {8, 9}});
  EXPECT_EQ(a.Shift(2), Make({{5, 7}, {10, 11}}));
  EXPECT_EQ(a.Shift(-3), Make({{0, 2}, {5, 6}}));
  EXPECT_EQ(a.Clamp(Interval(4, 8)), Make({{4, 5}, {8, 8}}));
}

TEST(IntervalSetTest, ShiftSaturatesAtInfinity) {
  IntervalSet a = Make({{5, kTickMax}});
  IntervalSet shifted = a.Shift(10);
  ASSERT_EQ(shifted.size(), 1u);
  EXPECT_EQ(shifted.intervals()[0], Interval(15, kTickMax));
}

TEST(IntervalSetTest, DilateLeftImplementsEventuallyWithin) {
  // Eventually_within_3 f: f holds on [10,12] -> satisfied on [7,12].
  IntervalSet f = Make({{10, 12}});
  EXPECT_EQ(f.DilateLeft(3), Make({{7, 12}}));
  // Two intervals that become connected after dilation merge.
  IntervalSet g = Make({{5, 6}, {9, 10}});
  EXPECT_EQ(g.DilateLeft(2), Make({{3, 10}}));
}

TEST(IntervalSetTest, ErodeRightImplementsAlwaysFor) {
  // Always_for_2 f: f holds on [4,9] -> satisfied on [4,7].
  IntervalSet f = Make({{4, 9}});
  EXPECT_EQ(f.ErodeRight(2), Make({{4, 7}}));
  // Interval shorter than the duration disappears.
  EXPECT_EQ(Make({{4, 5}}).ErodeRight(2), IntervalSet());
}

TEST(IntervalSetTest, Cardinality) {
  EXPECT_EQ(Make({{1, 3}, {5, 5}}).Cardinality(), 4);
  EXPECT_EQ(IntervalSet().Cardinality(), 0);
}

TEST(UntilTest, G2AloneSatisfies) {
  // No g1 anywhere: g1 Until g2 degenerates to g2.
  IntervalSet g2 = Make({{5, 8}});
  EXPECT_EQ(g2.UntilWith(IntervalSet()), g2);
}

TEST(UntilTest, ExtendsLeftThroughG1) {
  IntervalSet g1 = Make({{1, 10}});
  IntervalSet g2 = Make({{8, 9}});
  // From any t in [1,9]: g1 holds until g2 begins.
  EXPECT_EQ(g2.UntilWith(g1), Make({{1, 9}}));
}

TEST(UntilTest, G1AdjacentButNotOverlapping) {
  // g1 on [1,4], g2 on [5,6]: g1 covers [t,4] and g2 starts at 5.
  IntervalSet g1 = Make({{1, 4}});
  IntervalSet g2 = Make({{5, 6}});
  EXPECT_EQ(g2.UntilWith(g1), Make({{1, 6}}));
}

TEST(UntilTest, GapBlocksExtension) {
  // g1 ends at 3, g2 starts at 5: tick 4 satisfies neither, so no
  // extension through the gap.
  IntervalSet g1 = Make({{1, 3}});
  IntervalSet g2 = Make({{5, 6}});
  EXPECT_EQ(g2.UntilWith(g1), Make({{5, 6}}));
}

TEST(UntilTest, ChainAcrossAlternatingIntervals) {
  // The appendix's chain: g1=[1,4], g2=[5,6], g1=[7,9], g2=[10,12] chains
  // into one maximal satisfaction interval [1,6] U [7,12]?
  // From t=6: g2 holds at 6. From t=7..9, g1 holds until g2 at 10.
  // From t in [1,6] via first pair. Tick boundary: from t=5, in g2.
  IntervalSet g1 = Make({{1, 4}, {7, 9}});
  IntervalSet g2 = Make({{5, 6}, {10, 12}});
  EXPECT_EQ(g2.UntilWith(g1), Make({{1, 12}}));
}

TEST(UntilTest, EmptyOperands) {
  EXPECT_EQ(IntervalSet().UntilWith(Make({{1, 5}})), IntervalSet());
  EXPECT_EQ(IntervalSet().UntilWith(IntervalSet()), IntervalSet());
}

// ---------------------------------------------------------------------------
// Property tests against a brute-force bitset oracle over a small universe.
// ---------------------------------------------------------------------------

constexpr Tick kUniverseLo = 0;
constexpr Tick kUniverseHi = 63;

std::set<Tick> ToSet(const IntervalSet& s) {
  std::set<Tick> out;
  for (const Interval& iv : s.intervals()) {
    for (Tick t = std::max(iv.begin, kUniverseLo);
         t <= std::min(iv.end, kUniverseHi); ++t) {
      out.insert(t);
    }
  }
  return out;
}

IntervalSet RandomSet(Rng* rng) {
  std::vector<Interval> ivs;
  int n = static_cast<int>(rng->UniformInt(0, 5));
  for (int i = 0; i < n; ++i) {
    Tick b = rng->UniformInt(kUniverseLo, kUniverseHi);
    Tick e = std::min<Tick>(kUniverseHi, b + rng->UniformInt(0, 15));
    ivs.push_back(Interval(b, e));
  }
  return IntervalSet::FromIntervals(std::move(ivs));
}

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, SetOperationsMatchOracle) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    IntervalSet a = RandomSet(&rng);
    IntervalSet b = RandomSet(&rng);
    std::set<Tick> sa = ToSet(a), sb = ToSet(b);

    std::set<Tick> expect_union = sa;
    expect_union.insert(sb.begin(), sb.end());
    EXPECT_EQ(ToSet(a.Union(b)), expect_union);

    std::set<Tick> expect_inter;
    for (Tick t : sa) {
      if (sb.count(t)) expect_inter.insert(t);
    }
    EXPECT_EQ(ToSet(a.Intersect(b)), expect_inter);

    std::set<Tick> expect_diff;
    for (Tick t : sa) {
      if (!sb.count(t)) expect_diff.insert(t);
    }
    EXPECT_EQ(ToSet(a.Difference(b)), expect_diff);

    std::set<Tick> expect_comp;
    for (Tick t = kUniverseLo; t <= kUniverseHi; ++t) {
      if (!sa.count(t)) expect_comp.insert(t);
    }
    EXPECT_EQ(ToSet(a.Complement(Interval(kUniverseLo, kUniverseHi))),
              expect_comp);
  }
}

TEST_P(IntervalSetPropertyTest, NormalFormInvariant) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    IntervalSet a = RandomSet(&rng);
    const auto& ivs = a.intervals();
    for (size_t i = 0; i < ivs.size(); ++i) {
      EXPECT_TRUE(ivs[i].valid());
      if (i > 0) {
        // Strict gap: non-overlapping AND non-consecutive.
        EXPECT_GT(ivs[i].begin, ivs[i - 1].end + 1);
      }
    }
  }
}

TEST_P(IntervalSetPropertyTest, UntilMatchesSemanticOracle) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    IntervalSet g1 = RandomSet(&rng);
    IntervalSet g2 = RandomSet(&rng);
    IntervalSet result = g2.UntilWith(g1);

    // Oracle: t |= g1 U g2 iff exists t' >= t with g2(t') and g1 on [t,t').
    // Scan the bounded universe extended past the largest endpoint.
    Tick hi = kUniverseHi + 20;
    for (Tick t = kUniverseLo; t <= kUniverseHi; ++t) {
      bool expected = false;
      bool g1_held = true;
      for (Tick tp = t; tp <= hi && g1_held; ++tp) {
        if (g2.Contains(tp)) {
          expected = true;
          break;
        }
        g1_held = g1.Contains(tp);
      }
      EXPECT_EQ(result.Contains(t), expected)
          << "t=" << t << " g1=" << g1.ToString() << " g2=" << g2.ToString();
    }
  }
}

TEST_P(IntervalSetPropertyTest, DilateErodeMatchOracle) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    IntervalSet f = RandomSet(&rng);
    Tick c = rng.UniformInt(0, 10);
    IntervalSet dilated = f.DilateLeft(c);
    IntervalSet eroded = f.ErodeRight(c);
    for (Tick t = kUniverseLo; t <= kUniverseHi; ++t) {
      bool expect_eventually = false;
      bool expect_always = true;
      for (Tick tp = t; tp <= t + c; ++tp) {
        if (f.Contains(tp)) expect_eventually = true;
        if (!f.Contains(tp)) expect_always = false;
      }
      EXPECT_EQ(dilated.Contains(t), expect_eventually) << "t=" << t;
      EXPECT_EQ(eroded.Contains(t), expect_always) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1997));

}  // namespace
}  // namespace most
