#include "storage/btree.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace most {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Lookup(Value(5)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  tree.Insert(Value(5), 100);
  tree.Insert(Value(3), 101);
  tree.Insert(Value(5), 102);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Lookup(Value(5)), (std::vector<RowId>{100, 102}));
  EXPECT_EQ(tree.Lookup(Value(3)), (std::vector<RowId>{101}));
  EXPECT_TRUE(tree.Lookup(Value(4)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, EraseSpecificDuplicate) {
  BPlusTree tree;
  tree.Insert(Value(5), 100);
  tree.Insert(Value(5), 102);
  EXPECT_TRUE(tree.Erase(Value(5), 100));
  EXPECT_EQ(tree.Lookup(Value(5)), (std::vector<RowId>{102}));
  EXPECT_FALSE(tree.Erase(Value(5), 100));  // Already gone.
  EXPECT_FALSE(tree.Erase(Value(9), 1));    // Never existed.
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree(/*fanout=*/4);
  for (int i = 0; i < 100; ++i) tree.Insert(Value(i), static_cast<RowId>(i));
  EXPECT_GT(tree.height(), 2);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tree.Lookup(Value(i)), (std::vector<RowId>{static_cast<RowId>(i)}));
  }
}

TEST(BPlusTreeTest, RangeScanInclusiveExclusive) {
  BPlusTree tree(/*fanout=*/4);
  for (int i = 0; i < 20; ++i) tree.Insert(Value(i), static_cast<RowId>(i));
  auto collect = [&](std::optional<Value> lo, bool li, std::optional<Value> hi,
                     bool hi_inc) {
    std::vector<int64_t> keys;
    tree.ScanRange(lo, li, hi, hi_inc, [&](const Value& k, RowId) {
      keys.push_back(k.int_value());
    });
    return keys;
  };
  EXPECT_EQ(collect(Value(5), true, Value(8), true),
            (std::vector<int64_t>{5, 6, 7, 8}));
  EXPECT_EQ(collect(Value(5), false, Value(8), false),
            (std::vector<int64_t>{6, 7}));
  EXPECT_EQ(collect(std::nullopt, true, Value(2), true),
            (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(collect(Value(17), true, std::nullopt, true),
            (std::vector<int64_t>{17, 18, 19}));
  EXPECT_EQ(collect(Value(100), true, std::nullopt, true),
            (std::vector<int64_t>{}));
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree tree(/*fanout=*/4);
  for (const char* s : {"delta", "alpha", "echo", "bravo", "charlie"}) {
    tree.Insert(Value(s), 1);
  }
  std::vector<std::string> keys;
  tree.ScanRange(std::nullopt, true, std::nullopt, true,
                 [&](const Value& k, RowId) {
                   keys.push_back(k.string_value());
                 });
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha", "bravo", "charlie",
                                            "delta", "echo"}));
}

TEST(BPlusTreeTest, EraseEverythingShrinksToEmptyRoot) {
  BPlusTree tree(/*fanout=*/4);
  for (int i = 0; i < 64; ++i) tree.Insert(Value(i), static_cast<RowId>(i));
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(tree.Erase(Value(i), static_cast<RowId>(i))) << i;
    EXPECT_TRUE(tree.CheckInvariants().ok()) << "after erasing " << i;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1);
}

// Property test: randomized insert/erase interleavings vs. std::multimap,
// across fanouts (deep trees with fanout 4 exercise splits/merges heavily).
struct BtreeParam {
  uint64_t seed;
  size_t fanout;
};

class BPlusTreePropertyTest
    : public ::testing::TestWithParam<BtreeParam> {};

TEST_P(BPlusTreePropertyTest, MatchesMultimapOracle) {
  Rng rng(GetParam().seed);
  BPlusTree tree(GetParam().fanout);
  std::multimap<int64_t, RowId> oracle;
  RowId next_rid = 0;

  for (int step = 0; step < 3000; ++step) {
    double action = rng.UniformDouble(0, 1);
    if (action < 0.6 || oracle.empty()) {
      int64_t key = rng.UniformInt(0, 200);
      RowId rid = next_rid++;
      tree.Insert(Value(key), rid);
      oracle.emplace(key, rid);
    } else {
      // Erase a random existing entry.
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oracle.size()) - 1));
      auto it = oracle.begin();
      std::advance(it, pick);
      EXPECT_TRUE(tree.Erase(Value(it->first), it->second));
      oracle.erase(it);
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), oracle.size());

  // Full scan must equal the oracle's sorted contents.
  std::vector<std::pair<int64_t, RowId>> got;
  tree.ScanRange(std::nullopt, true, std::nullopt, true,
                 [&](const Value& k, RowId rid) {
                   got.emplace_back(k.int_value(), rid);
                 });
  std::vector<std::pair<int64_t, RowId>> expected(oracle.begin(), oracle.end());
  // The tree orders duplicates by rid; multimap preserves insertion order.
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);

  // Random range scans.
  for (int q = 0; q < 50; ++q) {
    int64_t lo = rng.UniformInt(0, 200);
    int64_t hi = std::min<int64_t>(200, lo + rng.UniformInt(0, 50));
    std::vector<std::pair<int64_t, RowId>> scan;
    tree.ScanRange(Value(lo), true, Value(hi), true,
                   [&](const Value& k, RowId rid) {
                     scan.emplace_back(k.int_value(), rid);
                   });
    std::vector<std::pair<int64_t, RowId>> want;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && it->first <= hi; ++it) {
      want.emplace_back(it->first, it->second);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(scan, want) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFanouts, BPlusTreePropertyTest,
    ::testing::Values(BtreeParam{1, 4}, BtreeParam{2, 4}, BtreeParam{3, 5},
                      BtreeParam{4, 8}, BtreeParam{5, 64},
                      BtreeParam{1997, 4}));

}  // namespace
}  // namespace most
