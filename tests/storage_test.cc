#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/expression.h"
#include "storage/table.h"

namespace most {
namespace {

Schema MotelsSchema() {
  return Schema({{"name", ValueType::kString},
                 {"x", ValueType::kDouble},
                 {"y", ValueType::kDouble},
                 {"price", ValueType::kDouble},
                 {"rooms", ValueType::kInt}});
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : table_("MOTELS", MotelsSchema()) {}

  RowId Add(const char* name, double x, double y, double price,
            int64_t rooms) {
    auto rid = table_.Insert(
        {Value(name), Value(x), Value(y), Value(price), Value(rooms)});
    EXPECT_TRUE(rid.ok());
    return rid.value();
  }

  Table table_;
};

TEST_F(TableTest, InsertGetDelete) {
  RowId a = Add("SleepInn", 1, 2, 59.0, 40);
  RowId b = Add("RestWell", 5, 5, 89.0, 12);
  EXPECT_EQ(table_.size(), 2u);
  ASSERT_NE(table_.Get(a), nullptr);
  EXPECT_EQ((*table_.Get(a))[0], Value("SleepInn"));
  EXPECT_TRUE(table_.Delete(a).ok());
  EXPECT_EQ(table_.Get(a), nullptr);
  EXPECT_FALSE(table_.Delete(a).ok());
  EXPECT_NE(table_.Get(b), nullptr);
}

TEST_F(TableTest, InsertValidatesSchema) {
  EXPECT_FALSE(table_.Insert({Value(1)}).ok());
  EXPECT_FALSE(table_.Insert({Value(1), Value(1.0), Value(1.0), Value(1.0),
                              Value(1)})
                   .ok());
}

TEST_F(TableTest, UpdateAndUpdateColumn) {
  RowId a = Add("SleepInn", 1, 2, 59.0, 40);
  EXPECT_TRUE(table_.UpdateColumn(a, 3, Value(75.0)).ok());
  EXPECT_EQ((*table_.Get(a))[3], Value(75.0));
  EXPECT_FALSE(table_.UpdateColumn(a, 9, Value(1)).ok());
  EXPECT_FALSE(table_.UpdateColumn(a, 0, Value(1.5)).ok());  // Type error.
  EXPECT_TRUE(
      table_.Update(a, {Value("NewName"), Value(0.0), Value(0.0), Value(10.0),
                        Value(int64_t{1})})
          .ok());
  EXPECT_EQ((*table_.Get(a))[0], Value("NewName"));
}

TEST_F(TableTest, ScanVisitsInsertionOrder) {
  Add("A", 0, 0, 1, 1);
  Add("B", 0, 0, 2, 1);
  Add("C", 0, 0, 3, 1);
  std::vector<std::string> names;
  table_.Scan([&](RowId, const Row& row) {
    names.push_back(row[0].string_value());
  });
  EXPECT_EQ(names, (std::vector<std::string>{"A", "B", "C"}));
}

TEST_F(TableTest, SecondaryIndexMaintainedAcrossMutations) {
  RowId a = Add("A", 0, 0, 50, 1);
  ASSERT_TRUE(table_.CreateIndex("price").ok());
  EXPECT_FALSE(table_.CreateIndex("price").ok());  // Duplicate.
  EXPECT_FALSE(table_.CreateIndex("nope").ok());
  RowId b = Add("B", 0, 0, 75, 1);

  const BPlusTree* idx = table_.GetIndex("price");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup(Value(50.0)), (std::vector<RowId>{a}));
  EXPECT_EQ(idx->Lookup(Value(75.0)), (std::vector<RowId>{b}));

  ASSERT_TRUE(table_.UpdateColumn(a, 3, Value(60.0)).ok());
  EXPECT_TRUE(idx->Lookup(Value(50.0)).empty());
  EXPECT_EQ(idx->Lookup(Value(60.0)), (std::vector<RowId>{a}));

  ASSERT_TRUE(table_.Delete(b).ok());
  EXPECT_TRUE(idx->Lookup(Value(75.0)).empty());
}

TEST(ExpressionTest, LiteralAndColumn) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  Row row{Value(3), Value(4.5)};
  EXPECT_EQ(Expr::Literal(Value(7))->Eval(s, row).value(), Value(7));
  EXPECT_EQ(Expr::Column("b")->Eval(s, row).value(), Value(4.5));
  EXPECT_FALSE(Expr::Column("missing")->Eval(s, row).ok());
}

TEST(ExpressionTest, ComparisonsAndConnectives) {
  Schema s({{"a", ValueType::kInt}});
  Row row{Value(3)};
  auto col = Expr::Column("a");
  auto lit5 = Expr::Literal(Value(5));
  EXPECT_EQ(Expr::Compare(Expr::CmpOp::kLt, col, lit5)->Eval(s, row).value(),
            Value(true));
  EXPECT_EQ(Expr::Compare(Expr::CmpOp::kGe, col, lit5)->Eval(s, row).value(),
            Value(false));
  auto t = Expr::True();
  auto f = Expr::False();
  EXPECT_EQ(Expr::And(t, f)->Eval(s, row).value(), Value(false));
  EXPECT_EQ(Expr::Or(t, f)->Eval(s, row).value(), Value(true));
  EXPECT_EQ(Expr::Not(f)->Eval(s, row).value(), Value(true));
  // Type error: AND over non-boolean.
  EXPECT_FALSE(Expr::And(col, t)->Eval(s, row).ok());
}

TEST(ExpressionTest, ShortCircuitSkipsBadRightOperand) {
  Schema s({{"a", ValueType::kInt}});
  Row row{Value(3)};
  auto bad = Expr::Column("missing");
  EXPECT_EQ(Expr::And(Expr::False(), bad)->Eval(s, row).value(), Value(false));
  EXPECT_EQ(Expr::Or(Expr::True(), bad)->Eval(s, row).value(), Value(true));
}

TEST(ExpressionTest, Arithmetic) {
  Schema s({{"a", ValueType::kInt}});
  Row row{Value(10)};
  auto col = Expr::Column("a");
  auto two = Expr::Literal(Value(2));
  EXPECT_EQ(Expr::Arith(Expr::ArithOp::kAdd, col, two)->Eval(s, row).value(),
            Value(12.0));
  EXPECT_EQ(Expr::Arith(Expr::ArithOp::kMul, col, two)->Eval(s, row).value(),
            Value(20.0));
  EXPECT_EQ(Expr::Arith(Expr::ArithOp::kDiv, col, two)->Eval(s, row).value(),
            Value(5.0));
  EXPECT_FALSE(Expr::Arith(Expr::ArithOp::kDiv, col, Expr::Literal(Value(0)))
                   ->Eval(s, row)
                   .ok());
}

TEST(ExpressionTest, CollectColumnsAndEquals) {
  auto e = Expr::And(
      Expr::Compare(Expr::CmpOp::kGt, Expr::Column("x"),
                    Expr::Literal(Value(1))),
      Expr::Compare(Expr::CmpOp::kLt, Expr::Column("y"),
                    Expr::Column("x")));
  std::set<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"x", "y"}));

  auto same = Expr::And(
      Expr::Compare(Expr::CmpOp::kGt, Expr::Column("x"),
                    Expr::Literal(Value(1))),
      Expr::Compare(Expr::CmpOp::kLt, Expr::Column("y"),
                    Expr::Column("x")));
  EXPECT_TRUE(e->Equals(*same));
  EXPECT_FALSE(e->Equals(*Expr::True()));
}

TEST(ExpressionTest, SplitConjunctsFlattensAndTree) {
  auto a = Expr::Compare(Expr::CmpOp::kGt, Expr::Column("x"),
                         Expr::Literal(Value(1)));
  auto b = Expr::Compare(Expr::CmpOp::kLt, Expr::Column("y"),
                         Expr::Literal(Value(2)));
  auto c = Expr::Compare(Expr::CmpOp::kEq, Expr::Column("z"),
                         Expr::Literal(Value(3)));
  std::vector<ExprPtr> out;
  SplitConjuncts(Expr::And(Expr::And(a, b), c), &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0]->Equals(*a));
  EXPECT_TRUE(out[1]->Equals(*b));
  EXPECT_TRUE(out[2]->Equals(*c));
}

TEST(ExpressionTest, SimplifyExprFoldsBooleanConstants) {
  auto p = Expr::Compare(Expr::CmpOp::kGt, Expr::Column("x"),
                         Expr::Literal(Value(1)));
  // p AND FALSE -> FALSE.
  EXPECT_TRUE(IsBoolLiteral(SimplifyExpr(Expr::And(p, Expr::False())), false));
  // p AND TRUE -> p.
  EXPECT_TRUE(SimplifyExpr(Expr::And(p, Expr::True()))->Equals(*p));
  // p OR TRUE -> TRUE.
  EXPECT_TRUE(IsBoolLiteral(SimplifyExpr(Expr::Or(Expr::True(), p)), true));
  // p OR FALSE -> p.
  EXPECT_TRUE(SimplifyExpr(Expr::Or(p, Expr::False()))->Equals(*p));
  // NOT TRUE -> FALSE; NOT FALSE -> TRUE.
  EXPECT_TRUE(IsBoolLiteral(SimplifyExpr(Expr::Not(Expr::True())), false));
  EXPECT_TRUE(IsBoolLiteral(SimplifyExpr(Expr::Not(Expr::False())), true));
  // Nested folding: (p AND TRUE) OR (FALSE AND p) -> p.
  auto nested = Expr::Or(Expr::And(p, Expr::True()),
                         Expr::And(Expr::False(), p));
  EXPECT_TRUE(SimplifyExpr(nested)->Equals(*p));
  // Non-boolean structure is untouched.
  EXPECT_TRUE(SimplifyExpr(p)->Equals(*p));
  EXPECT_EQ(SimplifyExpr(nullptr), nullptr);
}

TEST(ExpressionTest, SubstituteAtomReplacesStructurally) {
  auto p = Expr::Compare(Expr::CmpOp::kGt, Expr::Column("x"),
                         Expr::Literal(Value(1)));
  auto q = Expr::Compare(Expr::CmpOp::kLt, Expr::Column("y"),
                         Expr::Literal(Value(2)));
  auto f = Expr::Or(Expr::And(p, q), Expr::Not(p));
  auto rewritten = SubstituteAtom(f, p, Expr::True());
  Schema s({{"x", ValueType::kInt}, {"y", ValueType::kInt}});
  // With p := true: f == (true AND q) OR false == q.
  Row row_q_true{Value(0), Value(0)};   // q: 0 < 2 true.
  Row row_q_false{Value(0), Value(5)};  // q: 5 < 2 false.
  EXPECT_EQ(rewritten->Eval(s, row_q_true).value(), Value(true));
  EXPECT_EQ(rewritten->Eval(s, row_q_false).value(), Value(false));
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = db_.CreateTable("MOTELS", MotelsSchema());
    ASSERT_TRUE(t.ok());
    table_ = t.value();
    auto add = [&](const char* name, double x, double y, double price,
                   int64_t rooms) {
      ASSERT_TRUE(table_
                      ->Insert({Value(name), Value(x), Value(y), Value(price),
                                Value(rooms)})
                      .ok());
    };
    add("A", 0, 0, 40, 10);
    add("B", 1, 1, 60, 20);
    add("C", 2, 2, 80, 30);
    add("D", 3, 3, 100, 40);
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(DatabaseTest, CatalogOperations) {
  EXPECT_TRUE(db_.HasTable("MOTELS"));
  EXPECT_FALSE(db_.HasTable("CARS"));
  EXPECT_FALSE(db_.CreateTable("MOTELS", MotelsSchema()).ok());
  EXPECT_FALSE(db_.GetTable("CARS").ok());
  EXPECT_EQ(db_.TableNames(), (std::vector<std::string>{"MOTELS"}));
}

TEST_F(DatabaseTest, SelectAll) {
  SelectQuery q{.table = "MOTELS", .where = nullptr, .project = {}};
  auto rs = db_.ExecuteSelect(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);
  EXPECT_EQ(rs->schema.num_columns(), 5u);
}

TEST_F(DatabaseTest, SelectWithFilterAndProjection) {
  SelectQuery q{
      .table = "MOTELS",
      .where = Expr::Compare(Expr::CmpOp::kLe, Expr::Column("price"),
                             Expr::Literal(Value(60.0))),
      .project = {"name", "price"}};
  auto rs = db_.ExecuteSelect(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0], Value("A"));
  EXPECT_EQ(rs->rows[1][0], Value("B"));
  EXPECT_EQ(rs->schema.num_columns(), 2u);
}

TEST_F(DatabaseTest, SelectUsesIndexWhenAvailable) {
  ASSERT_TRUE(table_->CreateIndex("price").ok());
  SelectQuery q{
      .table = "MOTELS",
      .where = Expr::Compare(Expr::CmpOp::kGt, Expr::Column("price"),
                             Expr::Literal(Value(70.0))),
      .project = {"name"}};
  QueryStats stats;
  auto rs = db_.ExecuteSelect(q, &stats);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
  EXPECT_TRUE(stats.used_index);
  EXPECT_EQ(stats.rows_examined, 2u);  // Index pruned to matching rows only.

  // Same query without index examines every row.
  QueryStats scan_stats;
  SelectQuery q2 = q;
  q2.where = Expr::Compare(Expr::CmpOp::kGt, Expr::Column("rooms"),
                           Expr::Literal(Value(25)));
  auto rs2 = db_.ExecuteSelect(q2, &scan_stats);
  ASSERT_TRUE(rs2.ok());
  EXPECT_FALSE(scan_stats.used_index);
  EXPECT_EQ(scan_stats.rows_examined, 4u);
}

TEST_F(DatabaseTest, IndexAndScanAgree) {
  ASSERT_TRUE(table_->CreateIndex("price").ok());
  // Mirrored literal-on-left comparison also matches the planner rule.
  SelectQuery q{
      .table = "MOTELS",
      .where = Expr::Compare(Expr::CmpOp::kGe, Expr::Literal(Value(80.0)),
                             Expr::Column("price")),
      .project = {"name"}};
  QueryStats stats;
  auto rs = db_.ExecuteSelect(q, &stats);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(stats.used_index);
  ASSERT_EQ(rs->rows.size(), 3u);  // price <= 80: A, B, C.
}

TEST_F(DatabaseTest, WhereTypeErrorSurfaces) {
  SelectQuery q{.table = "MOTELS",
                .where = Expr::Column("name"),  // Not boolean.
                .project = {}};
  EXPECT_FALSE(db_.ExecuteSelect(q).ok());
}

}  // namespace
}  // namespace most
