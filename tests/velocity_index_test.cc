#include "index/velocity_index.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace most {
namespace {

DynamicAttribute Linear(double v0, Tick at, double slope) {
  return DynamicAttribute(v0, at, TimeFunction::Linear(slope));
}

TEST(VelocityIndexTest, ExactRangeQuery) {
  VelocityBucketIndex index(0);
  index.Upsert(1, Linear(0, 0, 1.0));     // v(t) = t.
  index.Upsert(2, Linear(100, 0, -1.0));  // v(t) = 100 - t.
  index.Upsert(3, Linear(50, 0, 0.0));    // Constant 50.
  // At t=50 all three are at 50.
  EXPECT_EQ(index.QueryExact(49, 51, 50),
            (std::vector<ObjectId>{1, 2, 3}));
  // At t=0 only object 3 is near 50.
  EXPECT_EQ(index.QueryExact(49, 51, 0), (std::vector<ObjectId>{3}));
}

TEST(VelocityIndexTest, CandidatesAreSuperset) {
  VelocityBucketIndex index(0, {.bucket_width = 1.0, .horizon = 256});
  Rng rng(9);
  for (ObjectId id = 0; id < 100; ++id) {
    index.Upsert(id, Linear(rng.UniformDouble(-50, 50), 0,
                            rng.UniformDouble(-2, 2)));
  }
  auto exact = index.QueryExact(0, 10, 100);
  auto candidates = index.QueryCandidates(0, 10, 100);
  std::set<ObjectId> cand_set(candidates.begin(), candidates.end());
  for (ObjectId id : exact) {
    EXPECT_TRUE(cand_set.count(id)) << id;
  }
}

TEST(VelocityIndexTest, UpsertReplacesAndRemoveErases) {
  VelocityBucketIndex index(0);
  index.Upsert(1, Linear(10, 0, 0.0));
  EXPECT_EQ(index.QueryExact(9, 11, 5), (std::vector<ObjectId>{1}));
  index.Upsert(1, Linear(500, 0, 0.0));
  EXPECT_TRUE(index.QueryExact(9, 11, 5).empty());
  EXPECT_EQ(index.QueryExact(499, 501, 5), (std::vector<ObjectId>{1}));
  index.Remove(1);
  EXPECT_TRUE(index.QueryExact(499, 501, 5).empty());
  EXPECT_EQ(index.num_objects(), 0u);
  index.Remove(99);  // No-op.
}

TEST(VelocityIndexTest, RebuildReanchorsReferenceTime) {
  VelocityBucketIndex index(0, {.bucket_width = 0.5, .horizon = 64});
  index.Upsert(1, Linear(0, 0, 2.0));
  EXPECT_FALSE(index.NeedsRebuild(63));
  EXPECT_TRUE(index.NeedsRebuild(64));
  index.Rebuild(64);
  EXPECT_EQ(index.reference_time(), 64);
  // v(100) = 200.
  EXPECT_EQ(index.QueryExact(199, 201, 100), (std::vector<ObjectId>{1}));
}

TEST(VelocityIndexTest, ExpansionGrowsWithTimeDistance) {
  // The structural tradeoff: probing far from t_ref touches more entries.
  VelocityBucketIndex index(0, {.bucket_width = 1.0, .horizon = 4096});
  Rng rng(13);
  for (ObjectId id = 0; id < 2000; ++id) {
    index.Upsert(id, Linear(rng.UniformDouble(-1000, 1000), 0,
                            rng.UniformDouble(-2, 2)));
  }
  (void)index.QueryExact(0, 10, 1);
  size_t near = index.last_entries_probed();
  (void)index.QueryExact(0, 10, 1000);
  size_t far = index.last_entries_probed();
  EXPECT_GT(far, near * 5);
}

class VelocityIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(VelocityIndexPropertyTest, MatchesFullScanUnderChurn) {
  Rng rng(GetParam());
  VelocityBucketIndex index(0, {.bucket_width = 0.5, .horizon = 512});
  std::unordered_map<ObjectId, DynamicAttribute> truth;
  for (ObjectId id = 0; id < 150; ++id) {
    DynamicAttribute a = Linear(rng.UniformDouble(-100, 100), 0,
                                rng.UniformDouble(-2, 2));
    truth.emplace(id, a);
    index.Upsert(id, a);
  }
  for (int round = 0; round < 30; ++round) {
    // Churn: update or remove.
    ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, 149));
    if (rng.Bernoulli(0.8)) {
      Tick at = rng.UniformInt(0, 100);
      DynamicAttribute a = Linear(rng.UniformDouble(-100, 100), at,
                                  rng.UniformDouble(-2, 2));
      truth.insert_or_assign(id, a);
      index.Upsert(id, a);
    } else {
      truth.erase(id);
      index.Remove(id);
    }
    double lo = rng.UniformDouble(-150, 120);
    double hi = lo + rng.UniformDouble(0, 40);
    Tick t = rng.UniformInt(0, 511);
    std::set<ObjectId> got;
    for (ObjectId oid : index.QueryExact(lo, hi, t)) got.insert(oid);
    std::set<ObjectId> want;
    for (const auto& [oid, attr] : truth) {
      double v = attr.ValueAt(t);
      if (lo <= v && v <= hi) want.insert(oid);
    }
    ASSERT_EQ(got, want) << "round " << round << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VelocityIndexPropertyTest,
                         ::testing::Values(1, 2, 3, 1997));

}  // namespace
}  // namespace most
