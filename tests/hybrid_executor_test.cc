#include "ftl/hybrid_executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/parser.h"

namespace most {
namespace {

class HybridExecutorTest : public ::testing::Test {
 protected:
  HybridExecutorTest()
      : most_(&db_, &clock_),
        regions_({{"P", Polygon::Rectangle({0, 0}, {200, 200})}}),
        hybrid_(&most_, &clock_, regions_) {
    EXPECT_TRUE(most_
                    .CreateTable("CARS",
                                 {{"PRICE", false, ValueType::kDouble},
                                  {"FUEL", true, ValueType::kNull},
                                  {kAttrX, true, ValueType::kNull},
                                  {kAttrY, true, ValueType::kNull}})
                    .ok());
    Rng rng(1997);
    for (int i = 0; i < 120; ++i) {
      double price = rng.UniformDouble(10, 200);
      EXPECT_TRUE(
          most_
              .Insert(
                  "CARS", {{"PRICE", Value(price)}},
                  {{"FUEL",
                    DynamicAttribute(rng.UniformDouble(20, 100), 0,
                                     TimeFunction::Linear(
                                         rng.UniformDouble(-0.5, 0)))},
                   {kAttrX,
                    DynamicAttribute(rng.UniformDouble(-300, 300), 0,
                                     TimeFunction::Linear(
                                         rng.UniformDouble(-3, 3)))},
                   {kAttrY,
                    DynamicAttribute(rng.UniformDouble(-300, 300), 0,
                                     TimeFunction::Linear(
                                         rng.UniformDouble(-3, 3)))}})
              .ok());
    }
  }

  // Ground truth: materialize ALL rows into a MostDatabase and evaluate
  // the full query with the plain interval evaluator.
  TemporalRelation GroundTruth(const FtlQuery& query, Interval window) {
    HybridFtlExecutor::ExecStats stats;
    // Run the hybrid executor with an empty pushdown by evaluating a query
    // whose conjuncts are all residual: easiest is to reuse the hybrid
    // machinery but compare against it with different pushdown splits, so
    // instead build the view manually through a no-filter hybrid call
    // with a WHERE that has no static conjunct.
    // (The independent path below avoids the hybrid code entirely.)
    MostDatabase view;
    for (const auto& [name, polygon] : regions_) {
      (void)view.DefineRegion(name, polygon);
    }
    (void)view.CreateClass("CARS",
                           {{"PRICE", false, ValueType::kDouble},
                            {"FUEL", true, ValueType::kNull}},
                           /*spatial=*/true);
    auto host = db_.GetTable("CARS");
    const Schema& schema = (*host)->schema();
    (*host)->Scan([&](RowId rid, const Row& row) {
      auto obj = view.RestoreObject("CARS", rid);
      size_t price = schema.IndexOf("PRICE").value();
      (*obj)->SetStatic("PRICE", row[price]);
      for (const char* attr : {"FUEL", kAttrX, kAttrY}) {
        size_t vi = schema.IndexOf(std::string(attr) + ".value").value();
        size_t ui = schema.IndexOf(std::string(attr) + ".updatetime").value();
        size_t fi = schema.IndexOf(std::string(attr) + ".function").value();
        auto f = DecodeTimeFunction(row[fi].string_value());
        (*obj)->SetDynamic(attr, DynamicAttribute(row[vi].double_value(),
                                                  row[ui].int_value(), *f));
      }
    });
    FtlEvaluator eval(view);
    auto rel = eval.EvaluateQuery(query, window);
    EXPECT_TRUE(rel.ok()) << rel.status();
    return *rel;
  }

  Database db_;
  Clock clock_;
  MostOnDbms most_;
  std::map<std::string, Polygon> regions_;
  HybridFtlExecutor hybrid_;
};

TEST_F(HybridExecutorTest, PushesStaticConjunctsAndMatchesGroundTruth) {
  auto query = ParseQuery(
      "RETRIEVE o FROM CARS o "
      "WHERE o.PRICE <= 100 AND EVENTUALLY WITHIN 60 INSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  Interval window(0, 128);
  HybridFtlExecutor::ExecStats stats;
  auto rel = hybrid_.Evaluate(*query, window, &stats);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(stats.pushed_conjuncts, 1u);
  EXPECT_LT(stats.host_rows_qualifying, stats.table_rows);
  EXPECT_EQ(rel->rows, GroundTruth(*query, window).rows);
  EXPECT_FALSE(rel->rows.empty());
}

TEST_F(HybridExecutorTest, DynamicConjunctsStayResidual) {
  auto query = ParseQuery(
      "RETRIEVE o FROM CARS o WHERE o.FUEL >= 40 AND INSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  Interval window(0, 64);
  HybridFtlExecutor::ExecStats stats;
  auto rel = hybrid_.Evaluate(*query, window, &stats);
  ASSERT_TRUE(rel.ok()) << rel.status();
  // o.FUEL is dynamic: must not be pushed (its truth varies over time).
  EXPECT_EQ(stats.pushed_conjuncts, 0u);
  EXPECT_EQ(stats.host_rows_qualifying, stats.table_rows);
  EXPECT_EQ(rel->rows, GroundTruth(*query, window).rows);
}

TEST_F(HybridExecutorTest, SubAttributeConjunctsArePushable) {
  // FUEL.updatetime = 0 is time-invariant and lives in a host column.
  auto query = ParseQuery(
      "RETRIEVE o FROM CARS o "
      "WHERE o.FUEL.updatetime = 0 AND EVENTUALLY INSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  HybridFtlExecutor::ExecStats stats;
  auto rel = hybrid_.Evaluate(*query, Interval(0, 64), &stats);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(stats.pushed_conjuncts, 1u);
  EXPECT_EQ(rel->rows, GroundTruth(*query, Interval(0, 64)).rows);
}

TEST_F(HybridExecutorTest, HostIndexAcceleratesPushdown) {
  auto host = db_.GetTable("CARS");
  ASSERT_TRUE((*host)->CreateIndex("PRICE").ok());
  auto query = ParseQuery(
      "RETRIEVE o FROM CARS o "
      "WHERE o.PRICE <= 30 AND EVENTUALLY WITHIN 60 INSIDE(o, P)");
  ASSERT_TRUE(query.ok());
  HybridFtlExecutor::ExecStats stats;
  auto rel = hybrid_.Evaluate(*query, Interval(0, 128), &stats);
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_TRUE(stats.host_stats.used_index);
  EXPECT_LT(stats.host_stats.rows_examined, 120u);
  EXPECT_EQ(rel->rows, GroundTruth(*query, Interval(0, 128)).rows);
}

TEST_F(HybridExecutorTest, RejectsMultiVariableQueries) {
  auto query = ParseQuery(
      "RETRIEVE o, n FROM CARS o, CARS n WHERE DIST(o, n) <= 5");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(hybrid_.Evaluate(*query, Interval(0, 10)).ok());
}

}  // namespace
}  // namespace most
