#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/mec.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace most {
namespace {

TEST(Point2Test, Arithmetic) {
  Point2 a(1, 2), b(3, 5);
  EXPECT_EQ(a + b, Point2(4, 7));
  EXPECT_EQ(b - a, Point2(2, 3));
  EXPECT_EQ(a * 2.0, Point2(2, 4));
  EXPECT_EQ(2.0 * a, Point2(2, 4));
  EXPECT_DOUBLE_EQ(a.Dot(b), 13.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -1.0);
  EXPECT_DOUBLE_EQ(Point2(3, 4).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), std::sqrt(13.0));
}

TEST(MovingPointTest, PositionAtTime) {
  MovingPoint2 p({1, 1}, {2, -1});
  EXPECT_EQ(p.At(0), Point2(1, 1));
  EXPECT_EQ(p.At(3), Point2(7, -2));
  EXPECT_EQ(p.At(-1), Point2(-1, 2));
  EXPECT_FALSE(p.IsStationary());
  EXPECT_TRUE(MovingPoint2({5, 5}, {0, 0}).IsStationary());
}

TEST(PolygonTest, CreateValidation) {
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 1}}).ok());
  EXPECT_FALSE(Polygon::Create({{0, 0}, {0, 0}, {1, 1}}).ok());
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 1}, {2, 2}}).ok());  // Collinear.
  EXPECT_TRUE(Polygon::Create({{0, 0}, {4, 0}, {0, 4}}).ok());
}

TEST(PolygonTest, RectangleContains) {
  Polygon r = Polygon::Rectangle({0, 0}, {10, 6});
  EXPECT_TRUE(r.Contains({5, 3}));
  EXPECT_TRUE(r.Contains({0, 0}));    // Vertex counts as inside.
  EXPECT_TRUE(r.Contains({10, 3}));   // Edge counts as inside.
  EXPECT_TRUE(r.Contains({5, 6}));
  EXPECT_FALSE(r.Contains({10.001, 3}));
  EXPECT_FALSE(r.Contains({-0.001, 0}));
  EXPECT_FALSE(r.Contains({5, 7}));
}

TEST(PolygonTest, ConcavePolygon) {
  // A "U" shape: the notch between the prongs is outside.
  auto u = Polygon::Create({{0, 0}, {6, 0}, {6, 6}, {4, 6}, {4, 2},
                            {2, 2}, {2, 6}, {0, 6}});
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->Contains({1, 5}));    // Left prong.
  EXPECT_TRUE(u->Contains({5, 5}));    // Right prong.
  EXPECT_TRUE(u->Contains({3, 1}));    // Base.
  EXPECT_FALSE(u->Contains({3, 4}));   // Notch.
  EXPECT_FALSE(u->Contains({3, 6}));   // Above the notch.
}

TEST(PolygonTest, SignedAreaOrientation) {
  Polygon ccw = Polygon::Rectangle({0, 0}, {2, 3});
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), 6.0);
  auto cw = Polygon::Create({{0, 0}, {0, 3}, {2, 3}, {2, 0}});
  ASSERT_TRUE(cw.ok());
  EXPECT_DOUBLE_EQ(cw->SignedArea(), -6.0);
  // Containment must not depend on orientation.
  EXPECT_TRUE(cw->Contains({1, 1}));
  EXPECT_FALSE(cw->Contains({3, 1}));
}

TEST(PolygonTest, BoundaryDistance) {
  Polygon r = Polygon::Rectangle({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(r.BoundaryDistance({5, 5}), 5.0);
  EXPECT_DOUBLE_EQ(r.BoundaryDistance({5, 0}), 0.0);
  EXPECT_DOUBLE_EQ(r.BoundaryDistance({15, 5}), 5.0);
  EXPECT_DOUBLE_EQ(r.BoundaryDistance({13, 14}), 5.0);  // Corner distance.
}

TEST(PolygonTest, RegularApproxIsCircleLike) {
  Polygon c = Polygon::RegularApprox({0, 0}, 10.0, 64);
  EXPECT_TRUE(c.Contains({0, 0}));
  EXPECT_TRUE(c.Contains({9.9 * std::cos(0.3), 9.9 * std::sin(0.3)}));
  EXPECT_FALSE(c.Contains({10.1, 0}));
  // Area approaches pi r^2 from below.
  EXPECT_NEAR(std::abs(c.SignedArea()), M_PI * 100.0, 2.0);
}

TEST(PointSegmentDistanceTest, ProjectionCases) {
  // Perpendicular foot inside the segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 3}, {0, 0}, {10, 0}), 3.0);
  // Foot beyond an endpoint.
  EXPECT_DOUBLE_EQ(PointSegmentDistance({-3, 4}, {0, 0}, {10, 0}), 5.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(MecTest, SmallCases) {
  EXPECT_DOUBLE_EQ(MinimalEnclosingCircle({}).radius, 0.0);
  EXPECT_DOUBLE_EQ(MinimalEnclosingCircle({{3, 4}}).radius, 0.0);
  Circle two = MinimalEnclosingCircle({{0, 0}, {6, 8}});
  EXPECT_NEAR(two.radius, 5.0, 1e-9);
  EXPECT_NEAR(two.center.x, 3.0, 1e-9);
  EXPECT_NEAR(two.center.y, 4.0, 1e-9);
}

TEST(MecTest, EquilateralTriangleCircumcircle) {
  double s = 2.0;
  Circle c = MinimalEnclosingCircle(
      {{0, 0}, {s, 0}, {s / 2, s * std::sqrt(3.0) / 2}});
  EXPECT_NEAR(c.radius, s / std::sqrt(3.0), 1e-9);
}

TEST(MecTest, ObtuseTriangleUsesDiameter) {
  // For an obtuse triangle the MEC is the diameter circle of the long side.
  Circle c = MinimalEnclosingCircle({{0, 0}, {10, 0}, {5, 0.1}});
  EXPECT_NEAR(c.radius, 5.0, 1e-6);
}

TEST(MecTest, InteriorPointsDoNotMatter) {
  Circle base = MinimalEnclosingCircle({{0, 0}, {10, 0}, {5, 8}});
  Circle with_inner =
      MinimalEnclosingCircle({{0, 0}, {10, 0}, {5, 8}, {5, 3}, {4, 2}});
  EXPECT_NEAR(base.radius, with_inner.radius, 1e-9);
}

class MecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MecPropertyTest, EnclosesAllPointsAndIsTight) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::vector<Point2> pts;
    int n = static_cast<int>(rng.UniformInt(1, 30));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.UniformDouble(-100, 100),
                     rng.UniformDouble(-100, 100)});
    }
    Circle c = MinimalEnclosingCircle(pts);
    double max_dist = 0.0;
    for (const Point2& p : pts) {
      EXPECT_TRUE(c.Contains(p, 1e-7));
      max_dist = std::max(max_dist, c.center.DistanceTo(p));
    }
    // Tight: some point is on the boundary.
    EXPECT_NEAR(max_dist, c.radius, 1e-7);
    // Not larger than the trivial bound (half the max pairwise distance
    // times sqrt(4/3), the Jung bound for the plane).
    double max_pair = 0.0;
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        max_pair = std::max(max_pair, pts[i].DistanceTo(pts[j]));
      }
    }
    EXPECT_LE(c.radius, max_pair / std::sqrt(3.0) + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MecPropertyTest,
                         ::testing::Values(7, 11, 13, 1997));

class PolygonContainsPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PolygonContainsPropertyTest, MatchesConvexHalfPlaneOracle) {
  Rng rng(GetParam());
  // Random convex polygons (regular n-gon with jittered radius kept
  // convex by construction: use regular polygon, scale, rotate).
  for (int round = 0; round < 10; ++round) {
    Point2 center{rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)};
    double radius = rng.UniformDouble(1, 20);
    int sides = static_cast<int>(rng.UniformInt(3, 12));
    Polygon poly = Polygon::RegularApprox(center, radius, sides);
    for (int q = 0; q < 200; ++q) {
      Point2 p{rng.UniformDouble(center.x - 2 * radius, center.x + 2 * radius),
               rng.UniformDouble(center.y - 2 * radius, center.y + 2 * radius)};
      // Oracle: inside a CCW convex polygon iff left of (or on) every edge.
      bool expected = true;
      const auto& vs = poly.vertices();
      for (size_t i = 0; i < vs.size(); ++i) {
        const Point2& a = vs[i];
        const Point2& b = vs[(i + 1) % vs.size()];
        if ((b - a).Cross(p - a) < 0) {
          expected = false;
          break;
        }
      }
      EXPECT_EQ(poly.Contains(p), expected) << "point " << p << " polygon "
                                            << poly.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolygonContainsPropertyTest,
                         ::testing::Values(3, 5, 17));

}  // namespace
}  // namespace most
