#include "common/failpoint.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace most {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  FailpointRegistry& reg() { return FailpointRegistry::Instance(); }
};

TEST_F(FailpointTest, UnarmedSiteIsFree) {
  EXPECT_TRUE(reg().Check("never/armed").ok());
  EXPECT_EQ(reg().triggered("never/armed"), 0u);
}

TEST_F(FailpointTest, ErrorSpecInjectsInternalError) {
  ASSERT_TRUE(reg().Arm("test/error_site", "error").ok());
  Status s = reg().Check("test/error_site");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("test/error_site"), std::string::npos);
  // Unlimited budget: keeps firing.
  EXPECT_FALSE(reg().Check("test/error_site").ok());
  EXPECT_EQ(reg().triggered("test/error_site"), 2u);
}

TEST_F(FailpointTest, TriggerBudgetDisarmsAfterNShots) {
  ASSERT_TRUE(reg().Arm("test/budget", "error*2").ok());
  EXPECT_FALSE(reg().Check("test/budget").ok());
  EXPECT_FALSE(reg().Check("test/budget").ok());
  EXPECT_TRUE(reg().Check("test/budget").ok());  // Budget exhausted.
  EXPECT_EQ(reg().triggered("test/budget"), 2u);
  EXPECT_TRUE(reg().ArmedSites().empty());
}

TEST_F(FailpointTest, NoopCountsWithoutFailing) {
  ASSERT_TRUE(reg().Arm("test/probe", "noop").ok());
  EXPECT_TRUE(reg().Check("test/probe").ok());
  EXPECT_TRUE(reg().Check("test/probe").ok());
  EXPECT_EQ(reg().triggered("test/probe"), 2u);
}

TEST_F(FailpointTest, TruncateFaultTearsWrites) {
  ASSERT_TRUE(reg().Arm("test/write", "truncate(3)*1").ok());
  auto fault = reg().CheckWrite("test/write", 10);
  EXPECT_EQ(fault.write_bytes, 3u);
  EXPECT_FALSE(fault.status.ok());
  // Budget spent: next write is clean.
  fault = reg().CheckWrite("test/write", 10);
  EXPECT_EQ(fault.write_bytes, 10u);
  EXPECT_TRUE(fault.status.ok());
}

TEST_F(FailpointTest, TruncateDefaultsToHalfAndClamps) {
  ASSERT_TRUE(reg().Arm("test/write", "truncate").ok());
  EXPECT_EQ(reg().CheckWrite("test/write", 10).write_bytes, 5u);
  ASSERT_TRUE(reg().Arm("test/write", "truncate(999)").ok());
  EXPECT_EQ(reg().CheckWrite("test/write", 10).write_bytes, 10u);
}

TEST_F(FailpointTest, ErrorFaultSuppressesWholeWrite) {
  ASSERT_TRUE(reg().Arm("test/write", "error*1").ok());
  auto fault = reg().CheckWrite("test/write", 10);
  EXPECT_EQ(fault.write_bytes, 0u);
  EXPECT_FALSE(fault.status.ok());
}

TEST_F(FailpointTest, TruncateOnNonWriteSiteIsPlainError) {
  ASSERT_TRUE(reg().Arm("test/site", "truncate*1").ok());
  EXPECT_FALSE(reg().Check("test/site").ok());
}

TEST_F(FailpointTest, SleepInjectsLatency) {
  ASSERT_TRUE(reg().Arm("test/slow", "sleep(1)*1").ok());
  EXPECT_TRUE(reg().Check("test/slow").ok());
  EXPECT_EQ(reg().triggered("test/slow"), 1u);
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(reg().Arm("s", "explode").ok());
  EXPECT_FALSE(reg().Arm("s", "error*0").ok());
  EXPECT_FALSE(reg().Arm("s", "error*x").ok());
  EXPECT_FALSE(reg().Arm("s", "sleep").ok());      // Needs (ms).
  EXPECT_FALSE(reg().Arm("s", "sleep()").ok());
  EXPECT_FALSE(reg().Arm("s", "truncate(-1)").ok());
  EXPECT_TRUE(reg().ArmedSites().empty());
}

TEST_F(FailpointTest, OffSpecDisarms) {
  ASSERT_TRUE(reg().Arm("test/site", "error").ok());
  ASSERT_TRUE(reg().Arm("test/site", "off").ok());
  EXPECT_TRUE(reg().Check("test/site").ok());
}

TEST_F(FailpointTest, ArmFromEnvParsesLists) {
  ASSERT_TRUE(
      reg()
          .ArmFromEnv("test/env_a=error*1;test/env_b=noop,test/env_c=sleep(1)")
          .ok());
  auto armed = reg().ArmedSites();
  EXPECT_EQ(armed.size(), 3u);
  EXPECT_FALSE(reg().Check("test/env_a").ok());
  EXPECT_TRUE(reg().Check("test/env_b").ok());
  EXPECT_EQ(reg().triggered("test/env_b"), 1u);
}

TEST_F(FailpointTest, ArmFromEnvReportsBadEntriesButArmsGoodOnes) {
  EXPECT_FALSE(reg().ArmFromEnv("bogus;test/good=noop").ok());
  EXPECT_TRUE(reg().Check("test/good").ok());
  EXPECT_EQ(reg().triggered("test/good"), 1u);
}

TEST_F(FailpointTest, TotalTriggeredAccumulates) {
  uint64_t before = reg().total_triggered();
  ASSERT_TRUE(reg().Arm("test/a", "noop").ok());
  ASSERT_TRUE(reg().Arm("test/b", "error*1").ok());
  (void)reg().Check("test/a");
  (void)reg().Check("test/b");
  EXPECT_EQ(reg().total_triggered(), before + 2);
}

}  // namespace
}  // namespace most
