#include "workload/fleet.h"

#include <gtest/gtest.h>

namespace most {
namespace {

TEST(FleetGeneratorTest, DeterministicForSameSeed) {
  FleetGenerator a({.num_vehicles = 20, .seed = 7});
  FleetGenerator b({.num_vehicles = 20, .seed = 7});
  ASSERT_EQ(a.initial_states().size(), b.initial_states().size());
  for (size_t i = 0; i < a.initial_states().size(); ++i) {
    EXPECT_EQ(a.initial_states()[i].position, b.initial_states()[i].position);
    EXPECT_EQ(a.initial_states()[i].velocity, b.initial_states()[i].velocity);
  }
  EXPECT_EQ(a.GenerateUpdates(100).size(), b.GenerateUpdates(100).size());
}

TEST(FleetGeneratorTest, InitialStatesInsideArea) {
  FleetGenerator fleet({.num_vehicles = 50, .area = 500.0, .seed = 3});
  for (const ObjectState& s : fleet.initial_states()) {
    EXPECT_GE(s.position.x, 0);
    EXPECT_LE(s.position.x, 500);
    EXPECT_GE(s.position.y, 0);
    EXPECT_LE(s.position.y, 500);
    double speed = s.velocity.Norm();
    EXPECT_GE(speed, 0.5 - 1e-9);
    EXPECT_LE(speed, 3.0 + 1e-9);
  }
}

TEST(FleetGeneratorTest, UpdatesSortedAndContinuous) {
  FleetGenerator fleet({.num_vehicles = 10, .change_probability = 0.1, .seed = 5});
  auto updates = fleet.GenerateUpdates(200);
  EXPECT_FALSE(updates.empty());
  for (size_t i = 1; i < updates.size(); ++i) {
    EXPECT_LE(updates[i - 1].at, updates[i].at);
  }
  // Track one vehicle: each update's position must equal the previous
  // trajectory extrapolated to the update time (no teleporting).
  for (const ObjectState& start : fleet.initial_states()) {
    Point2 pos = start.position;
    Vec2 vel = start.velocity;
    Tick at = 0;
    for (const MotionUpdate& u : updates) {
      if (u.id != start.id) continue;
      Point2 expected = pos + vel * static_cast<double>(u.at - at);
      EXPECT_NEAR(expected.x, u.position.x, 1e-9);
      EXPECT_NEAR(expected.y, u.position.y, 1e-9);
      pos = u.position;
      vel = u.velocity;
      at = u.at;
    }
  }
}

TEST(FleetGeneratorTest, BouncingKeepsVehiclesInsideArea) {
  FleetGenerator fleet(
      {.num_vehicles = 20, .area = 100.0, .change_probability = 0.0,
       .seed = 11});
  auto updates = fleet.GenerateUpdates(500);
  // With no random turns, every update is a bounce; simulate and check
  // positions stay within a small tolerance of the area.
  for (const ObjectState& start : fleet.initial_states()) {
    Point2 pos = start.position;
    Vec2 vel = start.velocity;
    Tick at = 0;
    auto check_until = [&](Tick end) {
      for (Tick t = at; t <= end; ++t) {
        Point2 p = pos + vel * static_cast<double>(t - at);
        EXPECT_GE(p.x, -3.1);
        EXPECT_LE(p.x, 103.1);
        EXPECT_GE(p.y, -3.1);
        EXPECT_LE(p.y, 103.1);
      }
    };
    for (const MotionUpdate& u : updates) {
      if (u.id != start.id) continue;
      check_until(u.at);
      pos = u.position;
      vel = u.velocity;
      at = u.at;
    }
    check_until(500);
  }
}

TEST(FleetGeneratorTest, PopulateAndApply) {
  FleetGenerator fleet({.num_vehicles = 5, .seed = 13});
  MostDatabase db;
  ASSERT_TRUE(fleet.Populate(&db, "CARS").ok());
  auto cls = db.GetClass("CARS");
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ((*cls)->size(), 5u);

  auto updates = fleet.GenerateUpdates(100);
  if (!updates.empty()) {
    db.clock().AdvanceTo(updates[0].at);
    ASSERT_TRUE(FleetGenerator::Apply(&db, "CARS", updates[0]).ok());
    auto obj = (*cls)->Get(updates[0].id);
    ASSERT_TRUE(obj.ok());
    Point2 pos = (*obj)->PositionAt(updates[0].at);
    EXPECT_NEAR(pos.x, updates[0].position.x, 1e-9);
  }
}

TEST(RandomRegionTest, CoversRequestedFraction) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    Polygon region = RandomRegion(&rng, 1000.0, 0.1);
    double area = std::abs(region.SignedArea());
    EXPECT_NEAR(area, 0.1 * 1000.0 * 1000.0, 1.0);
    // Region inside the world.
    EXPECT_GE(region.bounding_box().min.x, 0);
    EXPECT_LE(region.bounding_box().max.x, 1000);
  }
}

}  // namespace
}  // namespace most
