// Per-tick telemetry timeline: sampling semantics (stride, retention,
// per-tick idempotence), window queries, and the latency watchdog's
// arm/relax loop against the resource governor
// (docs/observability.md, "Telemetry timeline").

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/governor.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace most {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TelemetryRecorder;

TEST(TelemetryRecorderTest, DisabledRecorderSamplesNothing) {
  MetricsRegistry registry;
  registry.GetCounter("t_events_total", "events")->Inc();
  TelemetryRecorder rec;
  rec.Track("t_events_total");
  rec.OnTick(1, registry);
  EXPECT_EQ(rec.samples_total(), 0u);
  EXPECT_TRUE(rec.Series("t_events_total").empty());
}

TEST(TelemetryRecorderTest, TracksCounterSeriesPerTick) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_events_total", "events");
  TelemetryRecorder rec;
  rec.set_enabled(true);
  std::string key = rec.Track("t_events_total");
  EXPECT_EQ(key, "t_events_total");
  for (Tick t = 1; t <= 3; ++t) {
    c->Inc(2);
    rec.OnTick(t, registry);
  }
  std::vector<TelemetryRecorder::Sample> s = rec.Series(key);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].tick, 1);
  EXPECT_EQ(s[0].value, 2.0);
  EXPECT_EQ(s[2].tick, 3);
  EXPECT_EQ(s[2].value, 6.0);
  EXPECT_EQ(rec.ticks_sampled(), 3u);
}

TEST(TelemetryRecorderTest, LabelFilterSumsMatchingSeriesOnly) {
  MetricsRegistry registry;
  registry.GetCounter("t_ops_total", "ops", {{"kind", "a"}})->Inc(5);
  registry.GetCounter("t_ops_total", "ops", {{"kind", "b"}})->Inc(11);
  TelemetryRecorder rec;
  rec.set_enabled(true);
  std::string filtered = rec.Track("t_ops_total", {{"kind", "a"}});
  std::string whole = rec.Track("t_ops_total");
  EXPECT_EQ(filtered, "t_ops_total{kind=\"a\"}");
  rec.OnTick(1, registry);
  ASSERT_EQ(rec.Series(filtered).size(), 1u);
  EXPECT_EQ(rec.Series(filtered)[0].value, 5.0);
  EXPECT_EQ(rec.Series(whole)[0].value, 16.0);
}

TEST(TelemetryRecorderTest, OnTickIsIdempotentPerTick) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_events_total", "events");
  TelemetryRecorder rec;
  rec.set_enabled(true);
  rec.Track("t_events_total");
  c->Inc();
  rec.OnTick(5, registry);
  c->Inc();  // Changes between the two calls must NOT produce a second
  rec.OnTick(5, registry);  // sample for the same tick.
  EXPECT_EQ(rec.ticks_sampled(), 1u);
  EXPECT_EQ(rec.Series("t_events_total").size(), 1u);
  rec.OnTick(6, registry);
  EXPECT_EQ(rec.ticks_sampled(), 2u);
}

TEST(TelemetryRecorderTest, StrideSkipsOffTicksAndRetentionBoundsTheRing) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_events_total", "events");
  TelemetryRecorder::Options opts;
  opts.stride = 2;
  opts.retention = 3;
  TelemetryRecorder rec(opts);
  rec.set_enabled(true);
  rec.Track("t_events_total");
  for (Tick t = 1; t <= 12; ++t) {
    c->Inc();
    rec.OnTick(t, registry);
  }
  // Even ticks only (6 of them), ring capped at the 3 newest.
  std::vector<TelemetryRecorder::Sample> s = rec.Series("t_events_total");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].tick, 8);
  EXPECT_EQ(s[1].tick, 10);
  EXPECT_EQ(s[2].tick, 12);
  EXPECT_EQ(rec.ticks_sampled(), 3u + 3u);  // All six even ticks sampled.
}

TEST(TelemetryRecorderTest, WindowQueriesComputeDeltaRateAndQuantile) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_events_total", "events");
  TelemetryRecorder rec;
  rec.set_enabled(true);
  rec.Track("t_events_total");
  for (Tick t = 1; t <= 5; ++t) {
    c->Inc(static_cast<uint64_t>(t));  // Cumulative 1, 3, 6, 10, 15.
    rec.OnTick(t, registry);
  }
  EXPECT_EQ(rec.WindowDelta("t_events_total", 5).value_or(-1), 14.0);
  EXPECT_EQ(rec.WindowRate("t_events_total", 5).value_or(-1), 3.5);
  EXPECT_EQ(rec.WindowQuantile("t_events_total", 5, 0.5).value_or(-1), 6.0);
  EXPECT_FALSE(rec.WindowDelta("no_such_series", 5).has_value());
  EXPECT_FALSE(rec.WindowRate("t_events_total", 1).has_value());
}

TEST(TelemetryRecorderTest, HistogramsSampleCountAndSumSubSeries) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("t_latency_seconds", "latency", {0.1, 1.0});
  TelemetryRecorder rec;
  rec.set_enabled(true);
  rec.Track("t_latency_seconds");
  h->Observe(0.5);
  rec.OnTick(1, registry);
  h->Observe(1.5);
  rec.OnTick(2, registry);
  ASSERT_EQ(rec.Series("t_latency_seconds").size(), 2u);
  EXPECT_EQ(rec.Series("t_latency_seconds")[1].value, 2.0);  // Count.
  ASSERT_EQ(rec.Series("t_latency_seconds.sum").size(), 2u);
  EXPECT_EQ(rec.Series("t_latency_seconds.sum")[1].value, 2.0);  // Sum.
}

// The governor-feedback acceptance check: sustained high refresh latency
// arms the watchdog (installing the tighter queue limit and delta
// fraction), a quiet stretch relaxes it, and the pre-arm limits come
// back verbatim.
TEST(TelemetryWatchdogTest, ArmsOnLatencyAndRelaxesRestoringLimits) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("t_wd_latency_seconds", "latency", {0.1, 1.0});
  TelemetryRecorder rec;
  rec.set_enabled(true);

  ResourceGovernor& governor = ResourceGovernor::Global();
  ResourceGovernor::Limits baseline;
  baseline.refresh_queue_limit = 77;
  governor.set_limits(baseline);

  TelemetryRecorder::WatchdogOptions wd;
  wd.latency_metric = "t_wd_latency_seconds";
  wd.window = 2;
  wd.arm_mean_seconds = 0.1;
  wd.armed_queue_limit = 3;
  wd.armed_delta_fraction = 0.8;
  wd.min_hold_ticks = 2;
  rec.ConfigureWatchdog(wd);

  h->Observe(0.5);
  rec.OnTick(1, registry);
  EXPECT_FALSE(rec.watchdog_armed());  // One sample: no window yet.
  h->Observe(0.5);
  rec.OnTick(2, registry);
  ASSERT_TRUE(rec.watchdog_armed());
  EXPECT_EQ(rec.watchdog_arms(), 1u);
  EXPECT_EQ(governor.limits().refresh_queue_limit, 3u);
  EXPECT_EQ(governor.limits().delta_max_dirty_fraction, 0.8);

  // Quiet: no new observations. Tick 3 is inside the hold; tick 4 sees an
  // empty window past the hold and relaxes.
  rec.OnTick(3, registry);
  EXPECT_TRUE(rec.watchdog_armed());
  rec.OnTick(4, registry);
  EXPECT_FALSE(rec.watchdog_armed());
  EXPECT_EQ(rec.watchdog_relaxes(), 1u);
  EXPECT_EQ(governor.limits().refresh_queue_limit, 77u);
  EXPECT_EQ(governor.limits().delta_max_dirty_fraction, 0.0);

  governor.set_limits({});
}

TEST(TelemetryWatchdogTest, UnconfiguredWatchdogNeverTouchesTheGovernor) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("t_wd2_latency_seconds", "latency", {0.1, 1.0});
  TelemetryRecorder rec;
  rec.set_enabled(true);
  rec.Track("t_wd2_latency_seconds");

  ResourceGovernor& governor = ResourceGovernor::Global();
  ResourceGovernor::Limits baseline;
  baseline.refresh_queue_limit = 55;
  governor.set_limits(baseline);

  for (Tick t = 1; t <= 6; ++t) {
    h->Observe(10.0);  // Catastrophic latency — but nobody is watching.
    rec.OnTick(t, registry);
  }
  EXPECT_FALSE(rec.watchdog_armed());
  EXPECT_EQ(rec.watchdog_arms(), 0u);
  EXPECT_EQ(governor.limits().refresh_queue_limit, 55u);
  governor.set_limits({});
}

TEST(TelemetryWatchdogTest, DisarmWhileArmedRestoresSavedLimits) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("t_wd3_latency_seconds", "latency", {0.1, 1.0});
  TelemetryRecorder rec;
  rec.set_enabled(true);

  ResourceGovernor& governor = ResourceGovernor::Global();
  ResourceGovernor::Limits baseline;
  baseline.refresh_queue_limit = 99;
  governor.set_limits(baseline);

  TelemetryRecorder::WatchdogOptions wd;
  wd.latency_metric = "t_wd3_latency_seconds";
  wd.window = 2;
  wd.arm_mean_seconds = 0.1;
  wd.armed_queue_limit = 1;
  rec.ConfigureWatchdog(wd);
  h->Observe(0.9);
  rec.OnTick(1, registry);
  h->Observe(0.9);
  rec.OnTick(2, registry);
  ASSERT_TRUE(rec.watchdog_armed());

  rec.DisarmWatchdog();
  EXPECT_FALSE(rec.watchdog_armed());
  EXPECT_EQ(governor.limits().refresh_queue_limit, 99u);
  governor.set_limits({});
}

TEST(TelemetryRecorderTest, ClearDropsSamplesButKeepsTrackingAndCounters) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_events_total", "events");
  TelemetryRecorder rec;
  rec.set_enabled(true);
  rec.Track("t_events_total");
  c->Inc();
  rec.OnTick(1, registry);
  EXPECT_EQ(rec.samples_total(), 1u);
  rec.Clear();
  EXPECT_TRUE(rec.Series("t_events_total").empty());
  EXPECT_EQ(rec.samples_total(), 1u);  // History counters persist.
  c->Inc();
  rec.OnTick(2, registry);
  EXPECT_EQ(rec.Series("t_events_total").size(), 1u);  // Still tracked.
}

}  // namespace
}  // namespace most
