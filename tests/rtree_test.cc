#include "index/rtree.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace most {
namespace {

using Box2 = RTreeBox<2>;

Box2 MakeBox(double x0, double y0, double x1, double y1) {
  Box2 b;
  b.min = {x0, y0};
  b.max = {x1, y1};
  return b;
}

TEST(RTreeBoxTest, IntersectsAndContains) {
  Box2 a = MakeBox(0, 0, 10, 10);
  EXPECT_TRUE(a.Intersects(MakeBox(5, 5, 15, 15)));
  EXPECT_TRUE(a.Intersects(MakeBox(10, 10, 20, 20)));  // Touching counts.
  EXPECT_FALSE(a.Intersects(MakeBox(11, 0, 20, 10)));
  EXPECT_TRUE(a.ContainsBox(MakeBox(1, 1, 9, 9)));
  EXPECT_FALSE(a.ContainsBox(MakeBox(1, 1, 11, 9)));
}

TEST(RTreeBoxTest, VolumeAndEnlargement) {
  Box2 a = MakeBox(0, 0, 4, 5);
  EXPECT_DOUBLE_EQ(a.Volume(), 20.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(MakeBox(0, 0, 8, 5)), 20.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(MakeBox(1, 1, 2, 2)), 0.0);
}

TEST(RTreeTest, EmptySearch) {
  RTree<2> tree;
  int hits = 0;
  tree.Search(MakeBox(0, 0, 100, 100),
              [&](const Box2&, const uint64_t&) { ++hits; });
  EXPECT_EQ(hits, 0);
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, InsertAndPointSearch) {
  RTree<2> tree(/*max_entries=*/4);
  for (uint64_t i = 0; i < 50; ++i) {
    double x = static_cast<double>(i % 10) * 10;
    double y = static_cast<double>(i / 10) * 10;
    tree.Insert(MakeBox(x, y, x + 5, y + 5), i);
  }
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_GT(tree.height(), 1);

  std::set<uint64_t> hits;
  tree.Search(MakeBox(12, 12, 13, 13),
              [&](const Box2&, const uint64_t& id) { hits.insert(id); });
  EXPECT_EQ(hits, (std::set<uint64_t>{11}));  // Box (10,10)-(15,15).
}

TEST(RTreeTest, RemoveSpecificEntry) {
  RTree<2> tree(/*max_entries=*/4);
  tree.Insert(MakeBox(0, 0, 1, 1), 1);
  tree.Insert(MakeBox(0, 0, 1, 1), 2);  // Same box, different payload.
  EXPECT_TRUE(tree.Remove(MakeBox(0, 0, 1, 1), 1));
  EXPECT_FALSE(tree.Remove(MakeBox(0, 0, 1, 1), 1));
  EXPECT_FALSE(tree.Remove(MakeBox(5, 5, 6, 6), 2));  // Wrong box.
  std::set<uint64_t> hits;
  tree.Search(MakeBox(-1, -1, 2, 2),
              [&](const Box2&, const uint64_t& id) { hits.insert(id); });
  EXPECT_EQ(hits, (std::set<uint64_t>{2}));
}

TEST(RTreeTest, RemoveEverything) {
  RTree<2> tree(/*max_entries=*/4);
  std::vector<Box2> boxes;
  for (uint64_t i = 0; i < 100; ++i) {
    Box2 b = MakeBox(static_cast<double>(i), 0, static_cast<double>(i) + 2, 2);
    boxes.push_back(b);
    tree.Insert(b, i);
  }
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(tree.Remove(boxes[i], i)) << i;
  }
  EXPECT_TRUE(tree.empty());
  int hits = 0;
  tree.Search(MakeBox(-1000, -1000, 1000, 1000),
              [&](const Box2&, const uint64_t&) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(RTreeTest, ThreeDimensional) {
  RTree<3> tree(/*max_entries=*/8);
  RTreeBox<3> b;
  b.min = {0, 0, 0};
  b.max = {10, 10, 10};
  tree.Insert(b, 7);
  RTreeBox<3> probe;
  probe.min = {5, 5, 5};
  probe.max = {6, 6, 6};
  int hits = 0;
  tree.Search(probe, [&](const RTreeBox<3>&, const uint64_t& id) {
    EXPECT_EQ(id, 7u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(RTreeTest, SearchVisitsFewNodesOnLargeTree) {
  // The Section 4 rationale: access should be logarithmic-ish, not linear.
  RTree<2> tree(/*max_entries=*/16);
  Rng rng(99);
  for (uint64_t i = 0; i < 20000; ++i) {
    double x = rng.UniformDouble(0, 10000);
    double y = rng.UniformDouble(0, 10000);
    tree.Insert(MakeBox(x, y, x + 1, y + 1), i);
  }
  tree.last_search_nodes = 0;
  int hits = 0;
  tree.Search(MakeBox(500, 500, 510, 510),
              [&](const Box2&, const uint64_t&) { ++hits; });
  // ~20000/16 = 1250 leaves; a point-ish query should touch far fewer.
  EXPECT_LT(tree.last_search_nodes, 200u);
}

TEST(RTreeTest, BulkLoadMatchesIncremental) {
  Rng rng(21);
  std::vector<std::pair<Box2, uint64_t>> entries;
  RTree<2> incremental(/*max_entries=*/8);
  for (uint64_t i = 0; i < 5000; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    Box2 b = MakeBox(x, y, x + rng.UniformDouble(0, 10),
                     y + rng.UniformDouble(0, 10));
    entries.emplace_back(b, i);
    incremental.Insert(b, i);
  }
  RTree<2> bulk(/*max_entries=*/8);
  bulk.BulkLoad(entries);
  EXPECT_EQ(bulk.size(), incremental.size());

  for (int q = 0; q < 50; ++q) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    Box2 query = MakeBox(x, y, x + 50, y + 50);
    std::set<uint64_t> a, b;
    incremental.Search(query,
                       [&](const Box2&, const uint64_t& id) { a.insert(id); });
    bulk.Search(query,
                [&](const Box2&, const uint64_t& id) { b.insert(id); });
    ASSERT_EQ(a, b) << "query " << q;
  }
}

TEST(RTreeTest, BulkLoadedTreeSupportsMutation) {
  std::vector<std::pair<Box2, uint64_t>> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.emplace_back(
        MakeBox(static_cast<double>(i), 0, static_cast<double>(i) + 1, 1), i);
  }
  RTree<2> tree(/*max_entries=*/4);
  tree.BulkLoad(entries);
  EXPECT_TRUE(tree.Remove(entries[50].first, 50));
  tree.Insert(MakeBox(500, 500, 501, 501), 999);
  std::set<uint64_t> hits;
  tree.Search(MakeBox(-10, -10, 1000, 1000),
              [&](const Box2&, const uint64_t& id) { hits.insert(id); });
  EXPECT_EQ(hits.size(), 100u);  // 100 - 1 + 1.
  EXPECT_FALSE(hits.count(50));
  EXPECT_TRUE(hits.count(999));
}

TEST(RTreeTest, BulkLoadEmptyAndTiny) {
  RTree<2> tree(/*max_entries=*/4);
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  tree.BulkLoad({{MakeBox(0, 0, 1, 1), 7}});
  EXPECT_EQ(tree.size(), 1u);
  int hits = 0;
  tree.Search(MakeBox(0, 0, 2, 2),
              [&](const Box2&, const uint64_t&) { ++hits; });
  EXPECT_EQ(hits, 1);
}

struct RTreeParam {
  uint64_t seed;
  size_t fanout;
};

class RTreePropertyTest : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreePropertyTest, MatchesLinearScanOracle) {
  Rng rng(GetParam().seed);
  RTree<2> tree(GetParam().fanout);
  std::vector<std::pair<Box2, uint64_t>> oracle;
  uint64_t next_id = 0;

  for (int step = 0; step < 1500; ++step) {
    double action = rng.UniformDouble(0, 1);
    if (action < 0.65 || oracle.empty()) {
      double x = rng.UniformDouble(0, 100);
      double y = rng.UniformDouble(0, 100);
      Box2 b = MakeBox(x, y, x + rng.UniformDouble(0, 20),
                       y + rng.UniformDouble(0, 20));
      tree.Insert(b, next_id);
      oracle.emplace_back(b, next_id);
      ++next_id;
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(oracle.size()) - 1));
      EXPECT_TRUE(tree.Remove(oracle[pick].first, oracle[pick].second));
      oracle.erase(oracle.begin() + pick);
    }

    if (step % 100 == 0) {
      // Random window query must match a linear scan.
      double qx = rng.UniformDouble(0, 100);
      double qy = rng.UniformDouble(0, 100);
      Box2 q = MakeBox(qx, qy, qx + rng.UniformDouble(0, 40),
                       qy + rng.UniformDouble(0, 40));
      std::set<uint64_t> got;
      tree.Search(q, [&](const Box2&, const uint64_t& id) { got.insert(id); });
      std::set<uint64_t> want;
      for (const auto& [b, id] : oracle) {
        if (b.Intersects(q)) want.insert(id);
      }
      ASSERT_EQ(got, want) << "step " << step;
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFanouts, RTreePropertyTest,
    ::testing::Values(RTreeParam{1, 4}, RTreeParam{2, 4}, RTreeParam{3, 8},
                      RTreeParam{4, 16}, RTreeParam{1997, 5}));

}  // namespace
}  // namespace most
