// Differential test harness for the FTL evaluation engine.
//
// Three implementations must agree on randomized worlds and formulas:
//   1. the interval evaluator, serial path (no pool, no cache),
//   2. the state-stepping reference evaluator (NaiveFtlEvaluator), and
//   3. the parallel path (worker pool + atomic-interval cache), whose
//      contract is *byte-identical* relations at any thread count, cold or
//      warm cache, before and after invalidating updates.
//
// Two corpora: grid worlds (all geometry snapped to a 0.25 grid so the
// naive oracle computes predicate flips exactly like the interval solver)
// are checked three ways; fleet worlds (continuous coordinates from the
// workload generator) are checked serial-vs-parallel only, since both
// sides share the same kinematic solvers there.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/object_model.h"
#include "ftl/ast.h"
#include "ftl/eval.h"
#include "ftl/interval_cache.h"
#include "ftl/naive_eval.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "core/sharded_engine.h"
#include "ftl/query_manager.h"
#include "test_seed.h"
#include "workload/fleet.h"

namespace most {
namespace {

// All geometry on a 0.25 grid so predicate flips at integer ticks are
// computed identically (exactly) by the interval solver and the oracle.
double Grid(Rng* rng, double lo, double hi) {
  int64_t steps = static_cast<int64_t>((hi - lo) * 4);
  return lo + 0.25 * static_cast<double>(rng->UniformInt(0, steps));
}

FormulaPtr RandomAtom(Rng* rng) {
  switch (rng->UniformInt(0, 9)) {
    case 0:
      return FtlFormula::Inside("o", rng->Bernoulli(0.5) ? "R1" : "R2");
    case 1:
      return FtlFormula::Outside("o", rng->Bernoulli(0.5) ? "R1" : "R2");
    case 2:
      return FtlFormula::Inside("n", rng->Bernoulli(0.5) ? "R1" : "R2");
    case 3:
      // Moving region anchored at the other object.
      return FtlFormula::Inside("o", rng->Bernoulli(0.5) ? "R1" : "R2", "n");
    case 4:
      return FtlFormula::Outside("n", rng->Bernoulli(0.5) ? "R1" : "R2", "o");
    case 5: {
      auto op = static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5));
      return FtlFormula::Compare(op, FtlTerm::Dist("o", "n"),
                                 FtlTerm::Literal(Value(Grid(rng, 1, 30))));
    }
    case 6: {
      auto op = static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5));
      return FtlFormula::Compare(op, FtlTerm::AttrRef("o", "FUEL"),
                                 FtlTerm::Literal(Value(Grid(rng, 0, 100))));
    }
    case 7: {
      auto op = static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5));
      return FtlFormula::Compare(op, FtlTerm::Time(),
                                 FtlTerm::Literal(Value(static_cast<double>(
                                     rng->UniformInt(0, 30)))));
    }
    case 8:
      // Assignment quantifier: remember o's fuel now, compare later.
      return FtlFormula::Assign(
          "x", FtlTerm::AttrRef("o", "FUEL"),
          FtlFormula::Compare(
              static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5)),
              FtlTerm::AttrRef("n", "FUEL"), FtlTerm::VarRef("x")));
    default:
      return FtlFormula::WithinSphere(Grid(rng, 1, 20), {"o", "n"});
  }
}

FormulaPtr RandomFormula(Rng* rng, int depth) {
  if (depth <= 0) return RandomAtom(rng);
  switch (rng->UniformInt(0, 9)) {
    case 0:
      return FtlFormula::And(RandomFormula(rng, depth - 1),
                             RandomFormula(rng, depth - 1));
    case 1:
      return FtlFormula::Or(RandomFormula(rng, depth - 1),
                            RandomFormula(rng, depth - 1));
    case 2:
      return FtlFormula::Not(RandomFormula(rng, depth - 1));
    case 3:
      return FtlFormula::Until(RandomFormula(rng, depth - 1),
                               RandomFormula(rng, depth - 1));
    case 4:
      return FtlFormula::UntilWithin(rng->UniformInt(0, 10),
                                     RandomFormula(rng, depth - 1),
                                     RandomFormula(rng, depth - 1));
    case 5:
      return FtlFormula::Nexttime(RandomFormula(rng, depth - 1));
    case 6:
      return FtlFormula::EventuallyWithin(rng->UniformInt(0, 12),
                                          RandomFormula(rng, depth - 1));
    case 7:
      return FtlFormula::AlwaysFor(rng->UniformInt(0, 8),
                                   RandomFormula(rng, depth - 1));
    case 8:
      return rng->Bernoulli(0.5)
                 ? FtlFormula::Eventually(RandomFormula(rng, depth - 1))
                 : FtlFormula::Always(RandomFormula(rng, depth - 1));
    default:
      return FtlFormula::EventuallyAfter(rng->UniformInt(0, 10),
                                         RandomFormula(rng, depth - 1));
  }
}

// A grid-snapped random world: spatial class "M" with a FUEL attribute,
// two rectangular regions, and a mix of straight and piecewise routes.
void BuildGridWorld(Rng* rng, MostDatabase* db, int num_objects) {
  ASSERT_TRUE(
      db->CreateClass("M", {{"FUEL", true, ValueType::kNull}}, true).ok());
  ASSERT_TRUE(
      db->DefineRegion("R1", Polygon::Rectangle({-10, -10}, {5, 5})).ok());
  ASSERT_TRUE(
      db->DefineRegion("R2", Polygon::Rectangle({0, 0}, {15, 12})).ok());
  for (int i = 0; i < num_objects; ++i) {
    auto obj = db->CreateObject("M");
    ASSERT_TRUE(obj.ok());
    ObjectId id = (*obj)->id();
    if (rng->Bernoulli(0.5)) {
      ASSERT_TRUE(db->SetMotion("M", id,
                                {Grid(rng, -20, 20), Grid(rng, -20, 20)},
                                {Grid(rng, -2, 2), Grid(rng, -2, 2)})
                      .ok());
    } else {
      auto fx = TimeFunction::Piecewise(
          {{0, Grid(rng, -2, 2)}, {rng->UniformInt(3, 15), Grid(rng, -2, 2)}});
      ASSERT_TRUE(fx.ok());
      ASSERT_TRUE(
          db->UpdateDynamic("M", id, kAttrX, Grid(rng, -20, 20), *fx).ok());
      ASSERT_TRUE(db->UpdateDynamic("M", id, kAttrY, Grid(rng, -20, 20),
                                    TimeFunction::Linear(Grid(rng, -2, 2)))
                      .ok());
    }
    ASSERT_TRUE(db->UpdateDynamic("M", id, "FUEL", Grid(rng, 0, 100),
                                  TimeFunction::Linear(Grid(rng, -2, 2)))
                    .ok());
  }
}

// Shared pools for the whole binary: also exercises pool reuse across many
// independent evaluations.
ThreadPool* Pool2() {
  static ThreadPool pool(2);
  return &pool;
}
ThreadPool* Pool4() {
  static ThreadPool pool(4);
  return &pool;
}

// Evaluates `query` with the given options and requires an identical
// relation to `expected`.
void ExpectSameRelation(const MostDatabase& db, const FtlQuery& query,
                        Interval window, const FtlEvaluator::Options& options,
                        const TemporalRelation& expected, const char* label) {
  FtlEvaluator eval(db, options);
  auto rel = eval.EvaluateQuery(query, window);
  ASSERT_TRUE(rel.ok()) << label << ": " << rel.status()
                        << "\nformula: " << query.where->ToString();
  EXPECT_EQ(rel->vars, expected.vars) << label;
  EXPECT_EQ(rel->rows, expected.rows)
      << label << " diverged\nformula: " << query.where->ToString()
      << "\ngot: " << rel->ToString() << "\nwant: " << expected.ToString();
}

// Corpus 1: grid worlds, three-way differential (serial interval evaluator
// vs naive oracle vs parallel/cached paths) on > 200 random queries.
TEST(DifferentialTest, SerialNaiveAndParallelAgreeOnGridWorlds) {
  int queries = 0;
  for (uint64_t seed : test::SuiteSeeds("DifferentialTest.GridWorlds",
                                        {1, 2, 3, 4, 5, 6, 42, 1997, 2026})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    for (int world = 0; world < 4; ++world) {
      MostDatabase db;
      ASSERT_NO_FATAL_FAILURE(
          BuildGridWorld(&rng, &db, 2 + static_cast<int>(world % 3)));

      // One cache per world, invalidated through the database's update
      // listeners; reused across rounds so later rounds hit warm entries
      // from earlier formulas sharing atoms.
      IntervalCache cache;
      cache.AttachTo(&db);

      for (int round = 0; round < 6; ++round) {
        ++queries;
        FtlQuery query;
        query.retrieve = {"o", "n"};
        query.from = {{"M", "o"}, {"M", "n"}};
        query.where = RandomFormula(&rng, 2);
        Interval window(0, 30);

        // Reference pair: serial interval evaluator and the oracle.
        FtlEvaluator serial(db);
        NaiveFtlEvaluator naive(db);
        auto serial_rel = serial.EvaluateQuery(query, window);
        auto naive_rel = naive.EvaluateQuery(query, window);
        ASSERT_TRUE(serial_rel.ok())
            << serial_rel.status()
            << "\nformula: " << query.where->ToString();
        ASSERT_TRUE(naive_rel.ok()) << naive_rel.status();
        EXPECT_EQ(serial_rel->vars, naive_rel->vars);
        EXPECT_EQ(serial_rel->rows, naive_rel->rows)
            << "oracle diverged\nformula: " << query.where->ToString()
            << "\nfast: " << serial_rel->ToString()
            << "\nnaive: " << naive_rel->ToString();

        // Parallel paths must be byte-identical to serial: two thread
        // counts, then cold + warm cache.
        FtlEvaluator::Options p2;
        p2.pool = Pool2();
        ExpectSameRelation(db, query, window, p2, *serial_rel, "pool2");

        FtlEvaluator::Options p4;
        p4.pool = Pool4();
        ExpectSameRelation(db, query, window, p4, *serial_rel, "pool4");

        FtlEvaluator::Options cached;
        cached.pool = Pool4();
        cached.interval_cache = &cache;
        ExpectSameRelation(db, query, window, cached, *serial_rel,
                           "pool4+cache cold");
        ExpectSameRelation(db, query, window, cached, *serial_rel,
                           "pool4+cache warm");
      }

      // An explicit update must invalidate exactly the stale entries: the
      // cached path must track the serial path across the change.
      ASSERT_TRUE(db.SetMotion("M", ObjectId(0),
                               {Grid(&rng, -20, 20), Grid(&rng, -20, 20)},
                               {Grid(&rng, -2, 2), Grid(&rng, -2, 2)})
                      .ok());
      ++queries;
      FtlQuery query;
      query.retrieve = {"o", "n"};
      query.from = {{"M", "o"}, {"M", "n"}};
      query.where = RandomFormula(&rng, 2);
      Interval window(0, 30);
      FtlEvaluator serial(db);
      auto serial_rel = serial.EvaluateQuery(query, window);
      ASSERT_TRUE(serial_rel.ok()) << serial_rel.status();
      FtlEvaluator::Options cached;
      cached.pool = Pool4();
      cached.interval_cache = &cache;
      ExpectSameRelation(db, query, window, cached, *serial_rel,
                         "post-update cached");
    }
  }
  if (!test::SeedOverridden()) {
    EXPECT_GE(queries, 200) << "differential corpus shrank below spec";
  }
}

// Corpus 1b: instrumentation must be invisible to answers. The same grid
// worlds and random formulas, evaluated with the observability layer fully
// off (registry kill switch, no profile) and fully on (registry enabled,
// trace sink recording, per-subformula profile tree): relations must be
// byte-identical. This is the guard that keeps metric flushes, trace spans
// and profile bookkeeping off the semantic path.
TEST(DifferentialTest, InstrumentationOnAndOffAgreeByteForByte) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::TraceSink& sink = obs::TraceSink::Global();
  obs::TelemetryRecorder& telemetry = obs::TelemetryRecorder::Global();
  const bool sink_was_enabled = sink.enabled();
  const bool telemetry_was_enabled = telemetry.enabled();
  telemetry.Track("most_ftl_eval_total");
  int queries = 0;
  for (uint64_t seed : test::SuiteSeeds("DifferentialTest.Instrumentation",
                                        {1, 2, 3, 4, 5, 6, 42, 1997, 2026})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    for (int world = 0; world < 4; ++world) {
      MostDatabase db;
      ASSERT_NO_FATAL_FAILURE(
          BuildGridWorld(&rng, &db, 2 + static_cast<int>(world % 3)));
      for (int round = 0; round < 6; ++round) {
        ++queries;
        FtlQuery query;
        query.retrieve = {"o", "n"};
        query.from = {{"M", "o"}, {"M", "n"}};
        query.where = RandomFormula(&rng, 2);
        Interval window(0, 30);

        registry.set_enabled(false);
        sink.set_enabled(false);
        telemetry.set_enabled(false);
        FtlEvaluator plain(db);
        auto baseline = plain.EvaluateQuery(query, window);
        ASSERT_TRUE(baseline.ok())
            << baseline.status() << "\nformula: " << query.where->ToString();

        registry.set_enabled(true);
        sink.set_enabled(true);
        // Telemetry on, sampling every evaluation round: the per-tick
        // recorder must also stay off the semantic path.
        telemetry.set_enabled(true);
        telemetry.OnTick(static_cast<Tick>(queries));
        obs::QueryProfile profile;
        FtlEvaluator::Options opts;
        opts.profile = &profile.root;
        FtlEvaluator instrumented(db, opts);
        auto traced = instrumented.EvaluateQuery(query, window);
        ASSERT_TRUE(traced.ok()) << traced.status();
        EXPECT_EQ(traced->vars, baseline->vars);
        EXPECT_EQ(traced->rows, baseline->rows)
            << "instrumentation changed the answer\nformula: "
            << query.where->ToString();
      }
    }
  }
  registry.set_enabled(true);
  sink.set_enabled(sink_was_enabled);
  telemetry.set_enabled(telemetry_was_enabled);
  if (!test::SeedOverridden()) {
    EXPECT_GE(queries, 200) << "instrumentation corpus shrank below spec";
  }
}

// Corpus 2: continuous fleet worlds from the workload generator. The naive
// oracle is skipped (grid-free geometry), but serial vs parallel vs cached
// must still be byte-identical, including across motion updates applied
// mid-stream.
TEST(DifferentialTest, ParallelMatchesSerialOnFleets) {
  for (uint64_t seed :
       test::SuiteSeeds("DifferentialTest.Fleets", {7, 11, 4099})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FleetGenerator::Options fopt;
    fopt.num_vehicles = 48;
    fopt.area = 400.0;
    fopt.change_probability = 0.01;
    fopt.seed = seed;
    FleetGenerator fleet(fopt);
    MostDatabase db;
    ASSERT_TRUE(fleet.Populate(&db, "V").ok());
    Rng rng(seed * 31 + 1);
    ASSERT_TRUE(db.DefineRegion("R1", RandomRegion(&rng, fopt.area, 0.2)).ok());
    ASSERT_TRUE(db.DefineRegion("R2", RandomRegion(&rng, fopt.area, 0.1)).ok());

    IntervalCache cache;
    cache.AttachTo(&db);
    std::vector<MotionUpdate> updates = fleet.GenerateUpdates(64);
    size_t next_update = 0;

    for (Tick now = 0; now <= 48; now += 16) {
      db.clock().AdvanceTo(now);
      while (next_update < updates.size() && updates[next_update].at <= now) {
        if (updates[next_update].at == now) {
          ASSERT_TRUE(
              FleetGenerator::Apply(&db, "V", updates[next_update]).ok());
        }
        ++next_update;
      }

      FtlQuery query;
      query.retrieve = {"o", "n"};
      query.from = {{"V", "o"}, {"V", "n"}};
      query.where = FtlFormula::And(
          FtlFormula::Eventually(FtlFormula::Inside("o", "R1")),
          FtlFormula::Until(
              FtlFormula::Compare(FtlFormula::CmpOp::kGe,
                                  FtlTerm::Dist("o", "n"),
                                  FtlTerm::Literal(Value(5.0))),
              FtlFormula::Inside("n", "R2")));
      Interval window(now, now + 64);

      FtlEvaluator serial(db);
      auto serial_rel = serial.EvaluateQuery(query, window);
      ASSERT_TRUE(serial_rel.ok()) << serial_rel.status();

      FtlEvaluator::Options cached;
      cached.pool = Pool4();
      cached.interval_cache = &cache;
      ExpectSameRelation(db, query, window, cached, *serial_rel,
                         "fleet pool4+cache cold");
      ExpectSameRelation(db, query, window, cached, *serial_rel,
                         "fleet pool4+cache warm");
    }
  }
}

// Corpus 2b: memory-layout crossing. The SoA snapshot/kernel paths
// (EvalLayout::kSoa, the default) replicate the legacy per-object solvers
// bit-for-bit, so every layout x execution-path combination must produce
// byte-identical relations: legacy/soa x serial, legacy/soa x pool, soa x
// cache cold/warm. Grid worlds reuse the random-formula generator, so the
// crossing covers INSIDE/OUTSIDE (anchored and not), DIST comparisons,
// boolean connectives and the temporal operators.
TEST(DifferentialTest, LayoutsAgreeByteForByteAcrossPaths) {
  int queries = 0;
  for (uint64_t seed : test::SuiteSeeds("DifferentialTest.Layouts",
                                        {1, 3, 9, 42, 2026})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 101 + 7);
    for (int world = 0; world < 3; ++world) {
      MostDatabase db;
      ASSERT_NO_FATAL_FAILURE(BuildGridWorld(&rng, &db, 3 + world));
      IntervalCache cache;
      cache.AttachTo(&db);
      for (int round = 0; round < 8; ++round) {
        ++queries;
        FtlQuery query;
        query.retrieve = {"o", "n"};
        query.from = {{"M", "o"}, {"M", "n"}};
        query.where = RandomFormula(&rng, 2);
        Interval window(0, 30);

        FtlEvaluator::Options legacy_serial;
        legacy_serial.layout = EvalLayout::kLegacy;
        FtlEvaluator baseline_eval(db, legacy_serial);
        auto baseline = baseline_eval.EvaluateQuery(query, window);
        ASSERT_TRUE(baseline.ok())
            << baseline.status() << "\nformula: " << query.where->ToString();

        FtlEvaluator::Options soa_serial;
        soa_serial.layout = EvalLayout::kSoa;
        ExpectSameRelation(db, query, window, soa_serial, *baseline,
                           "soa serial");

        FtlEvaluator::Options legacy_pool = legacy_serial;
        legacy_pool.pool = Pool4();
        ExpectSameRelation(db, query, window, legacy_pool, *baseline,
                           "legacy pool4");

        FtlEvaluator::Options soa_pool = soa_serial;
        soa_pool.pool = Pool4();
        ExpectSameRelation(db, query, window, soa_pool, *baseline,
                           "soa pool4");

        FtlEvaluator::Options soa_cached = soa_pool;
        soa_cached.interval_cache = &cache;
        ExpectSameRelation(db, query, window, soa_cached, *baseline,
                           "soa pool4+cache cold");
        ExpectSameRelation(db, query, window, soa_cached, *baseline,
                           "soa pool4+cache warm");

        // Cache entries written by the SoA path must serve the legacy
        // path unchanged (same fingerprints, same value bytes).
        FtlEvaluator::Options legacy_cached = legacy_serial;
        legacy_cached.interval_cache = &cache;
        ExpectSameRelation(db, query, window, legacy_cached, *baseline,
                           "legacy reading soa-warmed cache");
      }
    }
  }
  if (!test::SeedOverridden()) {
    EXPECT_GE(queries, 100) << "layout differential corpus shrank below spec";
  }
}

// Applies a random batch of mutations to the grid world: motion / fuel
// updates to live objects, occasional deletions and creations — the update
// stream the delta path must coalesce and splice correctly.
void RandomMutations(Rng* rng, MostDatabase* db) {
  int count = static_cast<int>(rng->UniformInt(1, 2));
  for (int u = 0; u < count; ++u) {
    auto cls = db->GetClass("M");
    ASSERT_TRUE(cls.ok());
    std::vector<ObjectId> ids;
    for (const auto& [oid, obj] : (*cls)->objects()) ids.push_back(oid);
    if (ids.empty()) return;
    ObjectId target =
        ids[rng->UniformInt(0, static_cast<int64_t>(ids.size()) - 1)];
    switch (rng->UniformInt(0, 5)) {
      case 0:
        if (ids.size() > 2) {
          ASSERT_TRUE(db->DeleteObject("M", target).ok());
          break;
        }
        [[fallthrough]];
      case 1: {
        auto obj = db->CreateObject("M");
        ASSERT_TRUE(obj.ok());
        ObjectId nid = (*obj)->id();
        ASSERT_TRUE(db->SetMotion("M", nid,
                                  {Grid(rng, -20, 20), Grid(rng, -20, 20)},
                                  {Grid(rng, -2, 2), Grid(rng, -2, 2)})
                        .ok());
        ASSERT_TRUE(db->UpdateDynamic("M", nid, "FUEL", Grid(rng, 0, 100),
                                      TimeFunction::Linear(Grid(rng, -2, 2)))
                        .ok());
        break;
      }
      case 2:
        ASSERT_TRUE(db->UpdateDynamic("M", target, "FUEL", Grid(rng, 0, 100),
                                      TimeFunction::Linear(Grid(rng, -2, 2)))
                        .ok());
        break;
      default:
        ASSERT_TRUE(db->SetMotion("M", target,
                                  {Grid(rng, -20, 20), Grid(rng, -20, 20)},
                                  {Grid(rng, -2, 2), Grid(rng, -2, 2)})
                        .ok());
    }
  }
}

// Corpus 3: continuous-query maintenance. Three query managers watch the
// same database through the same randomized update schedule — delta
// (serial), full re-evaluation (serial), and delta with worker pool +
// interval cache. Answer(CQ) must be byte-identical across all three after
// every step: coalesced updates, deletions, creations, clock advances and
// window expiries included. The delta managers must actually serve from
// the delta path (counters), otherwise this corpus silently degenerates
// into full-vs-full.
TEST(DifferentialTest, DeltaRefreshMatchesFullOnRandomizedUpdateSchedules) {
  int schedules = 0;
  uint64_t delta_served_serial = 0;
  uint64_t delta_served_parallel = 0;
  for (uint64_t seed : test::SuiteSeeds("DifferentialTest.DeltaRefresh",
                                        {1, 2, 3, 5, 8, 13, 21, 34, 55, 89})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 7919 + 3);
    for (int world = 0; world < 5; ++world) {
      MostDatabase db;
      ASSERT_NO_FATAL_FAILURE(BuildGridWorld(&rng, &db, 3 + world % 3));

      QueryManager::Options delta_opt;
      delta_opt.horizon = 24;
      // The worlds are a handful of objects, so any update exceeds a
      // realistic dirty fraction; lift the fallback so the delta path is
      // actually what gets differentially tested.
      delta_opt.delta_max_dirty_fraction = 1.0;
      QueryManager delta_serial(&db, delta_opt);

      QueryManager::Options full_opt = delta_opt;
      full_opt.enable_delta_refresh = false;
      QueryManager full_serial(&db, full_opt);

      QueryManager::Options par_opt = delta_opt;
      par_opt.thread_count = 4;
      par_opt.enable_interval_cache = true;
      QueryManager delta_parallel(&db, par_opt);

      // Delta path on the legacy (AoS) evaluation layout: crosses the
      // memory-layout axis with the refresh-path axis. Must be
      // byte-identical to the full-refresh SoA manager.
      QueryManager::Options legacy_opt = delta_opt;
      legacy_opt.layout = EvalLayout::kLegacy;
      QueryManager delta_legacy(&db, legacy_opt);

      for (int q = 0; q < 4; ++q) {
        ++schedules;
        FtlQuery query;
        query.retrieve = {"o", "n"};
        query.from = {{"M", "o"}, {"M", "n"}};
        query.where = RandomFormula(&rng, 2);

        auto id_d = delta_serial.RegisterContinuous(query);
        auto id_f = full_serial.RegisterContinuous(query);
        auto id_p = delta_parallel.RegisterContinuous(query);
        auto id_l = delta_legacy.RegisterContinuous(query);
        ASSERT_TRUE(id_d.ok()) << id_d.status()
                               << "\nformula: " << query.where->ToString();
        ASSERT_TRUE(id_f.ok()) << id_f.status();
        ASSERT_TRUE(id_p.ok()) << id_p.status();
        ASSERT_TRUE(id_l.ok()) << id_l.status();

        for (int step = 0; step < 6; ++step) {
          ASSERT_NO_FATAL_FAILURE(RandomMutations(&rng, &db));
          // Mostly small advances (delta refreshes over the live window);
          // occasionally jump past expiry to exercise re-anchoring.
          Tick advance = rng.Bernoulli(0.15) ? 30 : rng.UniformInt(0, 3);
          db.clock().AdvanceTo(db.Now() + advance);

          auto a_f = full_serial.ContinuousAnswer(*id_f);
          ASSERT_TRUE(a_f.ok()) << a_f.status()
                                << "\nformula: " << query.where->ToString();
          auto a_d = delta_serial.ContinuousAnswer(*id_d);
          ASSERT_TRUE(a_d.ok()) << a_d.status();
          auto a_p = delta_parallel.ContinuousAnswer(*id_p);
          ASSERT_TRUE(a_p.ok()) << a_p.status();
          auto a_l = delta_legacy.ContinuousAnswer(*id_l);
          ASSERT_TRUE(a_l.ok()) << a_l.status();
          ASSERT_EQ(*a_d, *a_f)
              << "delta diverged from full at step " << step
              << "\nformula: " << query.where->ToString();
          ASSERT_EQ(*a_p, *a_f)
              << "parallel+cached delta diverged from full at step " << step
              << "\nformula: " << query.where->ToString();
          ASSERT_EQ(*a_l, *a_f)
              << "legacy-layout delta diverged from full at step " << step
              << "\nformula: " << query.where->ToString();
        }

        auto c_d = delta_serial.QueryRefreshCounters(*id_d);
        auto c_p = delta_parallel.QueryRefreshCounters(*id_p);
        ASSERT_TRUE(c_d.ok() && c_p.ok());
        delta_served_serial += c_d->delta_evaluations;
        delta_served_parallel += c_p->delta_evaluations;
        ASSERT_TRUE(delta_serial.Cancel(*id_d).ok());
        ASSERT_TRUE(full_serial.Cancel(*id_f).ok());
        ASSERT_TRUE(delta_parallel.Cancel(*id_p).ok());
        ASSERT_TRUE(delta_legacy.Cancel(*id_l).ok());
      }
    }
  }
  if (!test::SeedOverridden()) {
    EXPECT_GE(schedules, 200) << "delta differential corpus shrank below spec";
    // The point of the corpus is delta-vs-full; if the delta path stopped
    // being selected these bounds catch it.
    EXPECT_GE(delta_served_serial, 200u);
    EXPECT_GE(delta_served_parallel, 200u);
  }
}

// ci.sh arms MOST_FAILPOINTS="ftl/delta/refresh=noop" before running the
// DeltaRefresh suite; the probe counts one hit per delta refresh. If the
// delta path silently stops being exercised (option plumbing broken,
// fallback always taken), the count stays zero and this fails the build
// loudly. Self-contained: drives its own minimal delta scenario.
TEST(DifferentialTest, DeltaRefreshEnvArmedProbeFires) {
  const char* env = std::getenv("MOST_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("ftl/delta/refresh") == std::string::npos) {
    GTEST_SKIP() << "MOST_FAILPOINTS probe not armed (not the CI stage)";
  }
  auto& reg = FailpointRegistry::Instance();
  // Other fixtures may DisarmAll(); re-parse the environment to restore
  // the probe exactly as startup arming did.
  ASSERT_TRUE(reg.ArmFromEnv().ok());

  Rng rng(99);
  MostDatabase db;
  ASSERT_NO_FATAL_FAILURE(BuildGridWorld(&rng, &db, 3));
  QueryManager::Options opt;
  opt.delta_max_dirty_fraction = 1.0;
  QueryManager qm(&db, opt);
  FtlQuery query;
  query.retrieve = {"o"};
  query.from = {{"M", "o"}};
  query.where = FtlFormula::Inside("o", "R1");
  auto id = qm.RegisterContinuous(query);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db.SetMotion("M", ObjectId(0), {1.0, 1.0}, {0.5, 0.0}).ok());
  ASSERT_TRUE(qm.ContinuousAnswer(*id).ok());

  auto counters = qm.QueryRefreshCounters(*id);
  ASSERT_TRUE(counters.ok());
  EXPECT_GE(counters->delta_evaluations, 1u)
      << "update-triggered refresh was not served by the delta path";
  EXPECT_GE(reg.triggered("ftl/delta/refresh"), 1u)
      << "environment-armed delta probe did not fire";
}

// Shard counts the sharded corpus sweeps. MOST_SHARDS pins the sweep to
// one count (the CI sharded stage runs the suite once per count under
// sanitizers instead of 4x in one process).
std::vector<size_t> ShardCounts() {
  if (const char* env = std::getenv("MOST_SHARDS")) {
    int n = std::atoi(env);
    if (n > 0) return {static_cast<size_t>(n)};
  }
  return {1, 2, 4, 8};
}

// Corpus 4: scatter-gather sharding. A sharded engine (twin database, all
// updates routed through the per-shard handoff queues and drained in
// parallel) must produce gathered continuous answers byte-identical to an
// unsharded serial QueryManager at every shard count — across random
// two-variable formulas (including DIST atoms whose join partners hash to
// different shards), coalesced updates, creations, deletions and window
// expiries. Instantaneous scatter evaluation is differenced the same way.
TEST(DifferentialTest, ShardedEngineMatchesUnshardedOracle) {
  int schedules = 0;
  uint64_t sharded_delta_served = 0;
  for (uint64_t seed : test::SuiteSeeds("DifferentialTest.Sharded",
                                        {1, 2, 3, 5, 42, 1997, 2026})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    for (size_t shards : ShardCounts()) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      Rng rng(seed * 2654435761u + shards);
      for (int world = 0; world < 2; ++world) {
        // Twin worlds: two identically-seeded generator streams produce
        // identical objects (and identical ids — both databases hand out
        // the same id counter).
        const uint64_t world_seed = seed * 131 + static_cast<uint64_t>(world);
        MostDatabase oracle_db;
        MostDatabase engine_db;
        {
          Rng wrng(world_seed);
          ASSERT_NO_FATAL_FAILURE(BuildGridWorld(&wrng, &oracle_db, 4));
        }
        {
          Rng wrng(world_seed);
          ASSERT_NO_FATAL_FAILURE(BuildGridWorld(&wrng, &engine_db, 4));
        }

        QueryManager::Options qm_opt;
        qm_opt.horizon = 24;
        qm_opt.delta_max_dirty_fraction = 1.0;
        QueryManager oracle(&oracle_db, qm_opt);

        ShardedEngine::Options eng_opt;
        eng_opt.shard_count = shards;
        eng_opt.query_options = qm_opt;
        ShardedEngine engine(&engine_db, eng_opt);

        for (int q = 0; q < 2; ++q) {
          ++schedules;
          FtlQuery query;
          query.retrieve = {"o", "n"};
          query.from = {{"M", "o"}, {"M", "n"}};
          query.where = RandomFormula(&rng, 2);

          auto oracle_id = oracle.RegisterContinuous(query);
          auto engine_id = engine.RegisterContinuous(query);
          ASSERT_TRUE(oracle_id.ok())
              << oracle_id.status()
              << "\nformula: " << query.where->ToString();
          ASSERT_TRUE(engine_id.ok()) << engine_id.status();

          for (int step = 0; step < 5; ++step) {
            // Mutations decided once, applied directly to the oracle and
            // enqueued to the engine.
            std::vector<ObjectId> live;
            auto cls = oracle_db.GetClass("M");
            ASSERT_TRUE(cls.ok());
            for (const auto& [id, obj] : (*cls)->objects()) {
              live.push_back(id);
            }
            int mutations = static_cast<int>(rng.UniformInt(1, 3));
            for (int m = 0; m < mutations && !live.empty(); ++m) {
              ObjectId target = live[static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
              if (rng.Bernoulli(0.3)) {
                double fuel = Grid(&rng, 0, 100);
                TimeFunction fn = TimeFunction::Linear(Grid(&rng, -2, 2));
                ASSERT_TRUE(oracle_db
                                .UpdateDynamic("M", target, "FUEL", fuel, fn)
                                .ok());
                engine.EnqueueDynamic("M", target, "FUEL", fuel, fn);
              } else {
                Point2 pos{Grid(&rng, -20, 20), Grid(&rng, -20, 20)};
                Vec2 vel{Grid(&rng, -2, 2), Grid(&rng, -2, 2)};
                ASSERT_TRUE(oracle_db.SetMotion("M", target, pos, vel).ok());
                engine.EnqueueMotion("M", target, pos, vel);
              }
            }
            if (rng.Bernoulli(0.15) && live.size() > 2) {
              ObjectId victim = live[static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
              ASSERT_TRUE(oracle_db.DeleteObject("M", victim).ok());
              ASSERT_TRUE(engine.DeleteObject("M", victim).ok());
            } else if (rng.Bernoulli(0.15)) {
              auto o1 = oracle_db.CreateObject("M");
              auto o2 = engine.CreateObject("M");
              ASSERT_TRUE(o1.ok() && o2.ok());
              ASSERT_EQ((*o1)->id(), (*o2)->id());
              Point2 pos{Grid(&rng, -20, 20), Grid(&rng, -20, 20)};
              Vec2 vel{Grid(&rng, -2, 2), Grid(&rng, -2, 2)};
              ASSERT_TRUE(
                  oracle_db.SetMotion("M", (*o1)->id(), pos, vel).ok());
              engine.EnqueueMotion("M", (*o2)->id(), pos, vel);
            }
            // Apply the engine's queued batch at the current tick (as the
            // oracle just did), then advance both clocks together.
            ASSERT_TRUE(engine.DrainAndRefresh().ok());
            Tick advance = rng.Bernoulli(0.15) ? 30 : rng.UniformInt(0, 3);
            ASSERT_TRUE(engine.Advance(advance).ok());
            oracle_db.clock().AdvanceTo(engine_db.Now());

            auto want = oracle.ContinuousAnswer(*oracle_id);
            auto got = engine.ContinuousAnswer(*engine_id);
            ASSERT_TRUE(want.ok())
                << want.status()
                << "\nformula: " << query.where->ToString();
            ASSERT_TRUE(got.ok()) << got.status();
            EXPECT_TRUE(got->complete());
            ASSERT_EQ(got->tuples, *want)
                << "sharded gather diverged from oracle at step " << step
                << " with " << shards << " shards\nformula: "
                << query.where->ToString();
          }

          // Instantaneous scatter evaluation differenced on the final
          // state.
          auto want_rel = oracle.Evaluate(query);
          auto got_rel = engine.Evaluate(query);
          ASSERT_TRUE(want_rel.ok()) << want_rel.status();
          ASSERT_TRUE(got_rel.ok()) << got_rel.status();
          EXPECT_EQ(got_rel->vars, want_rel->vars);
          ASSERT_EQ(got_rel->rows, want_rel->rows)
              << "scatter Evaluate diverged with " << shards
              << " shards\nformula: " << query.where->ToString();

          ASSERT_TRUE(engine.Cancel(*engine_id).ok());
          ASSERT_TRUE(oracle.Cancel(*oracle_id).ok());
        }
        sharded_delta_served +=
            engine.TotalRefreshCounters().delta_evaluations;
      }
    }
  }
  if (!test::SeedOverridden() && ShardCounts().size() > 1) {
    EXPECT_GE(schedules, 100) << "sharded differential corpus shrank";
    // The partition-aware delta path must actually serve refreshes, or
    // the corpus degenerates into full-vs-full.
    EXPECT_GE(sharded_delta_served, 100u);
  }
}

}  // namespace
}  // namespace most
