// End-to-end simulation mixing every subsystem: a fleet with ongoing
// motion updates, continuous queries, triggers, motion indexes, and the
// MOST-on-DBMS mirror — with cross-checked invariants at every step.

#include <gtest/gtest.h>

#include "core/motion_index_manager.h"
#include "core/most_on_dbms.h"
#include "ftl/naive_eval.h"
#include "ftl/parser.h"
#include "ftl/query_manager.h"
#include "workload/fleet.h"

namespace most {
namespace {

TEST(IntegrationTest, LongRunningSimulationInvariants) {
  MostDatabase db;
  FleetGenerator fleet({.num_vehicles = 60,
                        .area = 500.0,
                        .change_probability = 0.05,
                        .seed = 1997});
  ASSERT_TRUE(fleet.Populate(&db, "CARS").ok());
  ASSERT_TRUE(
      db.DefineRegion("P", Polygon::Rectangle({150, 150}, {350, 350})).ok());

  MotionIndexManager indexes(&db, {.horizon = 256});
  ASSERT_TRUE(indexes.IndexClass("CARS").ok());

  QueryManager qm(&db, {.horizon = 128, .motion_indexes = &indexes});
  auto inside_now = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  auto reach_soon = ParseQuery(
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 40 INSIDE(o, P)");
  ASSERT_TRUE(inside_now.ok());
  ASSERT_TRUE(reach_soon.ok());

  auto cq = qm.RegisterContinuous(*inside_now);
  ASSERT_TRUE(cq.ok());
  int trigger_fires = 0;
  auto trig = qm.RegisterTrigger(
      *reach_soon,
      [&](const std::vector<ObjectId>&, Tick) { ++trigger_fires; });
  ASSERT_TRUE(trig.ok());

  auto updates = fleet.GenerateUpdates(300);
  size_t next_update = 0;
  for (Tick t = 1; t <= 300; ++t) {
    db.clock().AdvanceTo(t);
    while (next_update < updates.size() && updates[next_update].at <= t) {
      ASSERT_TRUE(
          FleetGenerator::Apply(&db, "CARS", updates[next_update]).ok());
      ++next_update;
    }
    ASSERT_TRUE(qm.Poll().ok());

    if (t % 50 != 0) continue;
    // Invariant 1: the continuous query's current answer equals a fresh
    // instantaneous evaluation.
    auto from_cq = qm.CurrentAnswer(*cq);
    auto fresh = qm.Instantaneous(*inside_now);
    ASSERT_TRUE(from_cq.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(*from_cq, *fresh) << "t=" << t;

    // Invariant 2: indexed evaluation equals direct geometry.
    std::set<ObjectId> displayed;
    for (const auto& binding : *from_cq) displayed.insert(binding[0]);
    auto cars = db.GetClass("CARS");
    ASSERT_TRUE(cars.ok());
    auto region = db.GetRegion("P");
    for (const auto& [id, obj] : (*cars)->objects()) {
      EXPECT_EQ(displayed.count(id) > 0,
                (*region)->Contains(obj.PositionAt(t)))
          << "t=" << t << " id=" << id;
    }
  }
  EXPECT_GT(trigger_fires, 0);
  EXPECT_GT(db.update_count(), 60u);
}

TEST(IntegrationTest, InMemoryAndOnDbmsAgree) {
  // The same world represented twice: natively and via the Section 5.1
  // relational layering; both must return the same instantaneous answers
  // to a dynamic range query.
  MostDatabase native;
  Database host;
  Clock host_clock;
  MostOnDbms layered(&host, &host_clock);
  ASSERT_TRUE(native.CreateClass("T", {{"A", true, ValueType::kNull}}).ok());
  ASSERT_TRUE(layered.CreateTable("T", {{"A", true, ValueType::kNull}}).ok());

  Rng rng(7);
  std::vector<ObjectId> native_ids;
  std::vector<RowId> layered_ids;
  for (int i = 0; i < 50; ++i) {
    double v = rng.UniformDouble(-100, 100);
    double slope = rng.UniformDouble(-2, 2);
    auto obj = native.CreateObject("T");
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(native
                    .UpdateDynamic("T", (*obj)->id(), "A", v,
                                   TimeFunction::Linear(slope))
                    .ok());
    native_ids.push_back((*obj)->id());
    auto rid = layered.Insert(
        "T", {},
        {{"A", DynamicAttribute(v, 0, TimeFunction::Linear(slope))}});
    ASSERT_TRUE(rid.ok());
    layered_ids.push_back(*rid);
  }

  for (Tick t : {0, 10, 40, 90}) {
    native.clock().AdvanceTo(t);
    host_clock.AdvanceTo(t);
    // Native: FTL instantaneous query A <= 20.
    QueryManager qm(&native, {.horizon = 16});
    auto q = ParseQuery("RETRIEVE o FROM T o WHERE o.A <= 20");
    ASSERT_TRUE(q.ok());
    auto native_answer = qm.Instantaneous(*q);
    ASSERT_TRUE(native_answer.ok());
    std::set<size_t> native_set;
    for (const auto& b : *native_answer) {
      native_set.insert(static_cast<size_t>(
          std::find(native_ids.begin(), native_ids.end(), b[0]) -
          native_ids.begin()));
    }
    // Layered: SELECT with the dynamic atom decomposition.
    SelectQuery sq{.table = "T",
                   .where = Expr::Compare(Expr::CmpOp::kLe, Expr::Column("A"),
                                          Expr::Literal(Value(20.0))),
                   .project = {}};
    auto rs = layered.ExecuteSelect(sq);
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->rows.size(), native_set.size()) << "t=" << t;
  }
}

TEST(IntegrationTest, NaiveAndIntervalAgreeOnFleetWorkload) {
  // A coarser version of the randomized agreement test, on a realistic
  // fleet trace with piecewise routes applied mid-history.
  MostDatabase db;
  FleetGenerator fleet({.num_vehicles = 15,
                        .area = 200.0,
                        .change_probability = 0.05,
                        .seed = 3});
  ASSERT_TRUE(fleet.Populate(&db, "CARS").ok());
  ASSERT_TRUE(
      db.DefineRegion("P", Polygon::Rectangle({50, 50}, {150, 150})).ok());

  const char* queries[] = {
      "RETRIEVE o FROM CARS o WHERE EVENTUALLY WITHIN 20 INSIDE(o, P)",
      "RETRIEVE o FROM CARS o WHERE OUTSIDE(o, P) UNTIL INSIDE(o, P)",
      "RETRIEVE o, n FROM CARS o, CARS n "
      "WHERE DIST(o, n) <= 30 AND EVENTUALLY WITHIN 10 INSIDE(o, P)",
  };
  for (const char* text : queries) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok());
    FtlEvaluator fast(db);
    NaiveFtlEvaluator naive(db);
    auto fast_rel = fast.EvaluateQuery(*q, Interval(0, 50));
    auto naive_rel = naive.EvaluateQuery(*q, Interval(0, 50));
    ASSERT_TRUE(fast_rel.ok()) << fast_rel.status();
    ASSERT_TRUE(naive_rel.ok()) << naive_rel.status();
    EXPECT_EQ(fast_rel->rows, naive_rel->rows) << text;
  }
}

}  // namespace
}  // namespace most
