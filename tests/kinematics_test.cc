#include "geometry/kinematics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/mec.h"

namespace most {
namespace {

constexpr RealInterval kWindow{0.0, 100.0};

TEST(DistanceWithinTest, HeadOnApproach) {
  // Two objects approaching on the x axis: a at 0 moving +1, b at 20
  // stationary; |a-b| <= 5 when t in [15, 25].
  MovingPoint2 a({0, 0}, {1, 0});
  MovingPoint2 b({20, 0}, {0, 0});
  auto ivs = DistanceWithin(a, b, 5.0, kWindow);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].begin, 15.0, 1e-9);
  EXPECT_NEAR(ivs[0].end, 25.0, 1e-9);
}

TEST(DistanceWithinTest, NeverWithin) {
  // Parallel motion, constant separation 10 > 5.
  MovingPoint2 a({0, 0}, {1, 0});
  MovingPoint2 b({0, 10}, {1, 0});
  EXPECT_TRUE(DistanceWithin(a, b, 5.0, kWindow).empty());
}

TEST(DistanceWithinTest, AlwaysWithin) {
  MovingPoint2 a({0, 0}, {1, 1});
  MovingPoint2 b({3, 0}, {1, 1});
  auto ivs = DistanceWithin(a, b, 5.0, kWindow);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_DOUBLE_EQ(ivs[0].begin, kWindow.begin);
  EXPECT_DOUBLE_EQ(ivs[0].end, kWindow.end);
}

TEST(DistanceWithinTest, ClipsToWindow) {
  // Within 5 during [15,25] but window ends at 20.
  MovingPoint2 a({0, 0}, {1, 0});
  MovingPoint2 b({20, 0}, {0, 0});
  auto ivs = DistanceWithin(a, b, 5.0, {0.0, 20.0});
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].begin, 15.0, 1e-9);
  EXPECT_NEAR(ivs[0].end, 20.0, 1e-9);
}

TEST(DistanceWithinTest, LinearCaseSameVelocityDifferentStart) {
  // Same velocity: relative position constant -> within iff initial
  // distance <= r.
  MovingPoint2 a({0, 0}, {2, 3});
  MovingPoint2 b({1, 1}, {2, 3});
  EXPECT_EQ(DistanceWithin(a, b, 2.0, kWindow).size(), 1u);
  EXPECT_TRUE(DistanceWithin(a, b, 1.0, kWindow).empty());
}

TEST(DistanceAtLeastTest, ComplementOfWithin) {
  MovingPoint2 a({0, 0}, {1, 0});
  MovingPoint2 b({20, 0}, {0, 0});
  auto ivs = DistanceAtLeast(a, b, 5.0, kWindow);
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_NEAR(ivs[0].begin, 0.0, 1e-9);
  EXPECT_NEAR(ivs[0].end, 15.0, 1e-9);
  EXPECT_NEAR(ivs[1].begin, 25.0, 1e-9);
  EXPECT_NEAR(ivs[1].end, 100.0, 1e-9);
}

TEST(InsidePolygonTest, CrossThrough) {
  // Point crosses a 10x10 square from the left: inside when x in [0,10],
  // i.e. t in [10, 20].
  Polygon square = Polygon::Rectangle({0, 0}, {10, 10});
  MovingPoint2 p({-10, 5}, {1, 0});
  auto ivs = InsidePolygon(p, square, kWindow);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_NEAR(ivs[0].begin, 10.0, 1e-9);
  EXPECT_NEAR(ivs[0].end, 20.0, 1e-9);
}

TEST(InsidePolygonTest, StationaryInside) {
  Polygon square = Polygon::Rectangle({0, 0}, {10, 10});
  MovingPoint2 p({5, 5}, {0, 0});
  auto ivs = InsidePolygon(p, square, kWindow);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_DOUBLE_EQ(ivs[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(ivs[0].end, 100.0);
}

TEST(InsidePolygonTest, StationaryOutside) {
  Polygon square = Polygon::Rectangle({0, 0}, {10, 10});
  MovingPoint2 p({50, 5}, {0, 0});
  EXPECT_TRUE(InsidePolygon(p, square, kWindow).empty());
}

TEST(InsidePolygonTest, MissesPolygon) {
  Polygon square = Polygon::Rectangle({0, 0}, {10, 10});
  MovingPoint2 p({-10, 20}, {1, 0});
  EXPECT_TRUE(InsidePolygon(p, square, kWindow).empty());
}

TEST(InsidePolygonTest, ConcaveDoubleEntry) {
  // Crossing the "U" along y=4 enters the left prong, exits into the
  // notch, and re-enters the right prong.
  auto u = Polygon::Create({{0, 0}, {6, 0}, {6, 6}, {4, 6}, {4, 2},
                            {2, 2}, {2, 6}, {0, 6}});
  ASSERT_TRUE(u.ok());
  MovingPoint2 p({-2, 4}, {1, 0});
  auto ivs = InsidePolygon(p, *u, kWindow);
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_NEAR(ivs[0].begin, 2.0, 1e-9);   // x=0
  EXPECT_NEAR(ivs[0].end, 4.0, 1e-9);     // x=2
  EXPECT_NEAR(ivs[1].begin, 6.0, 1e-9);   // x=4
  EXPECT_NEAR(ivs[1].end, 8.0, 1e-9);     // x=6
}

TEST(TicksWhereTest, RoundsInward) {
  IntervalSet s = TicksWhere({{1.5, 4.5}});
  EXPECT_EQ(s, IntervalSet(Interval(2, 4)));
}

TEST(TicksWhereTest, EpsilonAbsorbsFloatNoise) {
  // 4.999999999 should still include tick 5.
  IntervalSet s = TicksWhere({{2.0000000001, 4.9999999999}});
  EXPECT_EQ(s, IntervalSet(Interval(2, 4 + 1)));
}

TEST(TicksWhereTest, EmptyWhenNoTickInside) {
  EXPECT_TRUE(TicksWhere({{1.2, 1.8}}).empty());
}

TEST(TicksWhereTest, MergesTouchingIntervals) {
  IntervalSet s = TicksWhere({{0.0, 3.2}, {3.9, 7.0}});
  EXPECT_EQ(s, IntervalSet(Interval(0, 7)));
}

TEST(IntersectRealTest, Basic) {
  auto out = IntersectReal({{0, 5}, {10, 15}}, {{3, 12}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].begin, 3.0);
  EXPECT_DOUBLE_EQ(out[0].end, 5.0);
  EXPECT_DOUBLE_EQ(out[1].begin, 10.0);
  EXPECT_DOUBLE_EQ(out[1].end, 12.0);
}

TEST(WithinSphereTest, TwoPointsExact) {
  // Two points approaching: enclosable in radius r iff distance <= 2r.
  MovingPoint2 a({0, 0}, {1, 0});
  MovingPoint2 b({20, 0}, {0, 0});
  // Distance <= 10 for t in [10, 30] -> ticks 10..30.
  IntervalSet s = WithinSphereTicks({a, b}, 5.0, Interval(0, 100));
  EXPECT_EQ(s, IntervalSet(Interval(10, 30)));
}

TEST(WithinSphereTest, SinglePointAlwaysFits) {
  IntervalSet s = WithinSphereTicks({MovingPoint2({0, 0}, {9, 9})}, 0.0,
                                    Interval(0, 10));
  EXPECT_EQ(s, IntervalSet(Interval(0, 10)));
}

TEST(WithinSphereTest, ThreePointsUseMec) {
  // Three stationary points forming a triangle with circumradius ~5.77;
  // they fit in radius 6 but not radius 5.
  double s = 10.0;
  MovingPoint2 a({0, 0}, {0, 0});
  MovingPoint2 b({s, 0}, {0, 0});
  MovingPoint2 c({s / 2, s * std::sqrt(3.0) / 2}, {0, 0});
  EXPECT_EQ(WithinSphereTicks({a, b, c}, 6.0, Interval(0, 5)),
            IntervalSet(Interval(0, 5)));
  EXPECT_TRUE(WithinSphereTicks({a, b, c}, 5.0, Interval(0, 5)).empty());
}

TEST(WithinSphereTest, ConvergingTriangle) {
  // Three points converging towards the origin become enclosable once
  // close enough.
  MovingPoint2 a({-30, 0}, {1, 0});
  MovingPoint2 b({30, 0}, {-1, 0});
  MovingPoint2 c({0, 30}, {0, -1});
  IntervalSet s = WithinSphereTicks({a, b, c}, 5.0, Interval(0, 40));
  EXPECT_FALSE(s.empty());
  EXPECT_FALSE(s.Contains(0));
  // At t=30 all three are at the origin.
  EXPECT_TRUE(s.Contains(30));
}

// ---------------------------------------------------------------------------
// Property tests: analytic interval solvers vs. per-tick sampling oracle.
// ---------------------------------------------------------------------------

class KinematicsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

MovingPoint2 RandomMover(Rng* rng) {
  return MovingPoint2({rng->UniformDouble(-50, 50), rng->UniformDouble(-50, 50)},
                      {rng->UniformDouble(-3, 3), rng->UniformDouble(-3, 3)});
}

TEST_P(KinematicsPropertyTest, DistanceWithinMatchesSampling) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    MovingPoint2 a = RandomMover(&rng);
    MovingPoint2 b = RandomMover(&rng);
    double r = rng.UniformDouble(0.5, 30.0);
    IntervalSet ticks = TicksWhere(DistanceWithin(a, b, r, {0.0, 60.0}));
    for (Tick t = 0; t <= 60; ++t) {
      double d = std::sqrt(DistanceSquaredAt(a, b, static_cast<double>(t)));
      // Skip near-boundary ticks where float rounding is ambiguous.
      if (std::abs(d - r) < 1e-6) continue;
      EXPECT_EQ(ticks.Contains(t), d <= r)
          << "t=" << t << " d=" << d << " r=" << r;
    }
  }
}

TEST_P(KinematicsPropertyTest, DistanceAtLeastIsComplement) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    MovingPoint2 a = RandomMover(&rng);
    MovingPoint2 b = RandomMover(&rng);
    double r = rng.UniformDouble(0.5, 30.0);
    IntervalSet within = TicksWhere(DistanceWithin(a, b, r, {0.0, 60.0}));
    IntervalSet at_least = TicksWhere(DistanceAtLeast(a, b, r, {0.0, 60.0}));
    // Every tick is in at least one of the two (boundary ticks in both).
    for (Tick t = 0; t <= 60; ++t) {
      EXPECT_TRUE(within.Contains(t) || at_least.Contains(t)) << "t=" << t;
    }
  }
}

TEST_P(KinematicsPropertyTest, InsidePolygonMatchesSampling) {
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    Polygon poly = Polygon::RegularApprox(
        {rng.UniformDouble(-20, 20), rng.UniformDouble(-20, 20)},
        rng.UniformDouble(3, 25), static_cast<int>(rng.UniformInt(3, 10)));
    MovingPoint2 p = RandomMover(&rng);
    IntervalSet ticks = TicksWhere(InsidePolygon(p, poly, {0.0, 60.0}));
    for (Tick t = 0; t <= 60; ++t) {
      Point2 pos = p.At(static_cast<double>(t));
      // Skip ticks too close to the boundary for float-stable comparison.
      if (poly.BoundaryDistance(pos) < 1e-6) continue;
      EXPECT_EQ(ticks.Contains(t), poly.Contains(pos))
          << "t=" << t << " pos=" << pos;
    }
  }
}

TEST_P(KinematicsPropertyTest, WithinSphereMatchesMecSampling) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    std::vector<MovingPoint2> movers;
    int k = static_cast<int>(rng.UniformInt(2, 5));
    for (int i = 0; i < k; ++i) movers.push_back(RandomMover(&rng));
    double r = rng.UniformDouble(5.0, 60.0);
    IntervalSet ticks = WithinSphereTicks(movers, r, Interval(0, 40));
    std::vector<Point2> sample(movers.size());
    for (Tick t = 0; t <= 40; ++t) {
      for (int i = 0; i < k; ++i) {
        sample[i] = movers[i].At(static_cast<double>(t));
      }
      double mec = MinimalEnclosingCircle(sample).radius;
      if (std::abs(mec - r) < 1e-6) continue;  // Boundary-ambiguous.
      EXPECT_EQ(ticks.Contains(t), mec <= r) << "t=" << t << " mec=" << mec;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KinematicsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace most
