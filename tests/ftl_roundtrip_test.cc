// Robustness tests for the FTL front end: printed formulas re-parse to the
// same formula, and arbitrary input never crashes the lexer/parser (it
// either parses or returns a ParseError status).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/parser.h"

namespace most {
namespace {

TermPtr RandomTerm(Rng* rng, int depth) {
  if (depth <= 0) {
    switch (rng->UniformInt(0, 4)) {
      case 0:
        return FtlTerm::Literal(
            Value(static_cast<double>(rng->UniformInt(-50, 50))));
      case 1:
        return FtlTerm::AttrRef("o", "FUEL");
      case 2:
        return FtlTerm::AttrRef("n", "X.POSITION", FtlTerm::AttrSub::kValue);
      case 3:
        return FtlTerm::Time();
      default:
        return FtlTerm::AttrRef("o", "X.POSITION", FtlTerm::AttrSub::kSpeed);
    }
  }
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return FtlTerm::Arith(
          static_cast<FtlTerm::ArithOp>(rng->UniformInt(0, 3)),
          RandomTerm(rng, depth - 1), RandomTerm(rng, depth - 1));
    case 1:
      return FtlTerm::Dist("o", "n");
    default:
      return RandomTerm(rng, 0);
  }
}

FormulaPtr RandomFormula(Rng* rng, int depth) {
  if (depth <= 0) {
    switch (rng->UniformInt(0, 4)) {
      case 0:
        return FtlFormula::Inside("o", "R1");
      case 1:
        return FtlFormula::Outside("n", "R2", "o");
      case 2:
        return FtlFormula::WithinSphere(2.5, {"o", "n"});
      case 3:
        return FtlFormula::BoolLit(rng->Bernoulli(0.5));
      default:
        return FtlFormula::Compare(
            static_cast<FtlFormula::CmpOp>(rng->UniformInt(0, 5)),
            RandomTerm(rng, 1), RandomTerm(rng, 1));
    }
  }
  switch (rng->UniformInt(0, 10)) {
    case 0:
      return FtlFormula::And(RandomFormula(rng, depth - 1),
                             RandomFormula(rng, depth - 1));
    case 1:
      return FtlFormula::Or(RandomFormula(rng, depth - 1),
                            RandomFormula(rng, depth - 1));
    case 2:
      return FtlFormula::Not(RandomFormula(rng, depth - 1));
    case 3:
      return FtlFormula::Until(RandomFormula(rng, depth - 1),
                               RandomFormula(rng, depth - 1));
    case 4:
      return FtlFormula::UntilWithin(rng->UniformInt(0, 20),
                                     RandomFormula(rng, depth - 1),
                                     RandomFormula(rng, depth - 1));
    case 5:
      return FtlFormula::Nexttime(RandomFormula(rng, depth - 1));
    case 6:
      return FtlFormula::EventuallyWithin(rng->UniformInt(0, 20),
                                          RandomFormula(rng, depth - 1));
    case 7:
      return FtlFormula::AlwaysFor(rng->UniformInt(0, 20),
                                   RandomFormula(rng, depth - 1));
    case 8:
      return FtlFormula::Assign("x", RandomTerm(rng, 1),
                                FtlFormula::Compare(FtlFormula::CmpOp::kLe,
                                                    FtlTerm::VarRef("x"),
                                                    RandomTerm(rng, 0)));
    case 9:
      return FtlFormula::EventuallyAfter(rng->UniformInt(0, 20),
                                         RandomFormula(rng, depth - 1));
    default:
      return rng->Bernoulli(0.5)
                 ? FtlFormula::Eventually(RandomFormula(rng, depth - 1))
                 : FtlFormula::Always(RandomFormula(rng, depth - 1));
  }
}

class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, PrintedFormulaReparsesIdentically) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    FormulaPtr f = RandomFormula(&rng, 3);
    std::string printed = f->ToString();
    auto reparsed = ParseFormula(printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << printed;
    EXPECT_EQ((*reparsed)->ToString(), printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 1997));

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF022);
  const char charset[] =
      "RETRIEVEFROMWHEREUNTILANDORNOT()[]<>=!.,:*/+-0123456789 '\"abcxyz_";
  for (int round = 0; round < 2000; ++round) {
    size_t len = static_cast<size_t>(rng.UniformInt(0, 60));
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += charset[rng.UniformInt(0, sizeof(charset) - 2)];
    }
    // Must not crash; status may be OK or ParseError.
    auto result = ParseQuery(input);
    auto formula = ParseFormula(input);
    (void)result;
    (void)formula;
  }
}

TEST(ParserFuzzTest, TokenSoupFromValidPieces) {
  Rng rng(0x50FF);
  const char* pieces[] = {"RETRIEVE", "o",        "FROM",     "CARS",
                          "WHERE",    "INSIDE",   "(",        ")",
                          ",",        "UNTIL",    "WITHIN",   "3",
                          "EVENTUALLY", "ALWAYS", "FOR",      "[",
                          "]",        ":=",       "o.A",      "<=",
                          "5",        "AND",      "DIST",     "time"};
  for (int round = 0; round < 2000; ++round) {
    size_t len = static_cast<size_t>(rng.UniformInt(1, 15));
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += pieces[rng.UniformInt(0, 23)];
      input += ' ';
    }
    (void)ParseQuery(input);
    (void)ParseFormula(input);
  }
}

}  // namespace
}  // namespace most
