// Causal tracing: span parenting (ambient + explicit), context guards,
// cross-boundary propagation through the distributed stack and the
// sharded engine's scatter-gather, and the Chrome trace-event exporter
// (docs/observability.md, "Distributed tracing").

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "distributed/coordinator.h"
#include "distributed/mobile_node.h"
#include "distributed/network.h"
#include "ftl/parser.h"
#include "obs/exporters.h"
#include "obs/trace.h"

namespace most {
namespace {

using obs::ChromeTraceJson;
using obs::ChromeTraceOptions;
using obs::TraceContext;
using obs::TraceContextGuard;
using obs::TraceEvent;
using obs::TraceSink;
using obs::TraceSpan;

const TraceEvent* FindByName(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  for (const TraceEvent& e : events) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

std::string AnnotationValue(const TraceEvent& e, const std::string& key) {
  for (const obs::TraceAnnotation& a : e.annotations) {
    if (key == a.key) return a.value;
  }
  return "";
}

// Every event of `trace_id` must hang off exactly one root: one event
// with parent 0, and every other parent id resolving to a span *in the
// same trace*. This is the "single connected span tree" acceptance check.
void ExpectConnectedTree(const std::vector<TraceEvent>& events,
                         uint64_t trace_id) {
  std::set<uint64_t> span_ids;
  size_t roots = 0;
  size_t members = 0;
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id) continue;
    ++members;
    span_ids.insert(e.span_id);
    if (e.parent_span_id == 0) ++roots;
  }
  ASSERT_GT(members, 0u) << "no events recorded for trace " << trace_id;
  EXPECT_EQ(roots, 1u) << "a trace must have exactly one root span";
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id || e.parent_span_id == 0) continue;
    EXPECT_TRUE(span_ids.count(e.parent_span_id))
        << "span " << e.span_id << " (" << e.name << ") has parent "
        << e.parent_span_id << " outside its own trace";
  }
}

TEST(TraceSpanTest, NestedSpansParentUnderTheAmbientSpan) {
  TraceSink sink;
  sink.set_enabled(true);
  TraceContext outer_ctx;
  {
    TraceSpan outer("outer", "test", obs::CurrentTraceContext(), &sink);
    outer_ctx = outer.context();
    ASSERT_TRUE(outer_ctx.valid());
    EXPECT_EQ(obs::CurrentTraceContext(), outer_ctx);
    {
      TraceSpan inner("inner", "test", obs::CurrentTraceContext(), &sink);
      EXPECT_EQ(inner.context().trace_id, outer_ctx.trace_id);
    }
    // Sibling after the inner span: ambient context restored to outer.
    EXPECT_EQ(obs::CurrentTraceContext(), outer_ctx);
  }
  EXPECT_FALSE(obs::CurrentTraceContext().valid());

  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);  // inner closed first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].trace_id, outer_ctx.trace_id);
  EXPECT_EQ(events[0].parent_span_id, outer_ctx.span_id);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].parent_span_id, 0u);
  EXPECT_GT(events[1].span_id, 0u);
}

TEST(TraceSpanTest, ExplicitParentWinsOverAmbient) {
  TraceSink sink;
  sink.set_enabled(true);
  TraceContext remote{777001, 777002};
  {
    TraceSpan ambient("ambient", "test", obs::CurrentTraceContext(), &sink);
    TraceSpan child("child", "test", remote, &sink);
    EXPECT_EQ(child.context().trace_id, 777001u);
  }
  std::vector<TraceEvent> events = sink.Events();
  const TraceEvent* child = FindByName(events, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, 777001u);
  EXPECT_EQ(child->parent_span_id, 777002u);
}

TEST(TraceSpanTest, ContextGuardInstallsAndRestoresRemoteContext) {
  TraceSink sink;
  sink.set_enabled(true);
  TraceContext remote{424242, 515151};
  {
    TraceContextGuard guard(remote);
    EXPECT_EQ(obs::CurrentTraceContext(), remote);
    TraceSpan span("handler", "test", obs::CurrentTraceContext(), &sink);
    EXPECT_EQ(span.context().trace_id, 424242u);
  }
  EXPECT_FALSE(obs::CurrentTraceContext().valid());
  std::vector<TraceEvent> events = sink.Events();
  const TraceEvent* handler = FindByName(events, "handler");
  ASSERT_NE(handler, nullptr);
  EXPECT_EQ(handler->trace_id, 424242u);
  EXPECT_EQ(handler->parent_span_id, 515151u);
}

TEST(TraceSpanTest, DisabledSinkMakesSpansFullyInert) {
  TraceSink sink;  // Disabled.
  TraceSpan span("inert", "test", obs::CurrentTraceContext(), &sink);
  EXPECT_FALSE(span.context().valid());
  EXPECT_FALSE(obs::CurrentTraceContext().valid());
  span.Annotate("key", "value");  // Must not crash or allocate into sink.
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(TraceSpanTest, AnnotationsLandOnTheRecordedEvent) {
  TraceSink sink;
  sink.set_enabled(true);
  {
    TraceSpan span("annotated", "test", obs::CurrentTraceContext(), &sink);
    span.Annotate("reason", "stale");
    span.AnnotateU64("tick", 42);
    obs::AnnotateActiveSpan("degrade_reason", "refresh_shed");
  }
  std::vector<TraceEvent> events = sink.Events();
  const TraceEvent* e = FindByName(events, "annotated");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(AnnotationValue(*e, "reason"), "stale");
  EXPECT_EQ(AnnotationValue(*e, "tick"), "42");
  EXPECT_EQ(AnnotationValue(*e, "degrade_reason"), "refresh_shed");
}

TEST(TraceSinkTest, OverflowCountsDroppedSeparatelyFromRecorded) {
  TraceSink sink(/*capacity=*/2);
  sink.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("wrap", "test", obs::CurrentTraceContext(), &sink);
  }
  EXPECT_EQ(sink.total_recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.Events().size(), 2u);
}

// The distributed acceptance check: a coordinator issuing a broadcast
// query to mobile nodes over the simulated network yields ONE trace —
// coord/issue roots it, each node's answer handler parents under it via
// the propagated message context, and the coordinator's report handler
// joins the same tree through the reply's context.
TEST(TracePropagationTest, CoordinatorRoundTripFormsOneConnectedTree) {
  TraceSink& sink = TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);

  Clock clock;
  SimNetwork net(&clock, {.latency = 1});
  std::map<std::string, Polygon> regions{
      {"P", Polygon::Rectangle({0, 0}, {100, 100})}};
  Coordinator coordinator(&net, &clock, regions);
  MobileNode::Options opts;
  opts.beacon_interval = 0;
  auto make_state = [](ObjectId id, Point2 pos) {
    ObjectState s;
    s.id = id;
    s.position = pos;
    return s;
  };
  MobileNode inside(&net, &clock, make_state(0, {50, 50}), regions, opts);
  MobileNode outside(&net, &clock, make_state(1, {5000, 5000}), regions, opts);

  auto q = ParseQuery("RETRIEVE o FROM CARS o WHERE INSIDE(o, P)");
  ASSERT_TRUE(q.ok());
  uint64_t qid = coordinator.IssueObjectQuery(
      *q, DistStrategy::kBroadcastFilter, /*continuous=*/false, 256);
  while (clock.Now() < 6) {
    clock.Advance();
    net.DeliverDue();
  }
  auto matches = coordinator.ReportedMatches(qid);
  ASSERT_TRUE(matches.ok());
  sink.set_enabled(false);

  std::vector<TraceEvent> events = sink.Events();
  const TraceEvent* issue = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "coord/issue" &&
        AnnotationValue(e, "qid") == std::to_string(qid)) {
      issue = &e;
    }
  }
  ASSERT_NE(issue, nullptr) << "coord/issue span missing";
  const uint64_t trace_id = issue->trace_id;

  // Both nodes answered inside the issue's trace; the coordinator's
  // report handler joined it too. All of it forms one connected tree.
  size_t answers = 0, reports = 0;
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id) continue;
    if (std::string(e.name) == "node/answer_request") ++answers;
    if (std::string(e.name) == "coord/on_report") ++reports;
  }
  EXPECT_EQ(answers, 2u);
  EXPECT_GE(reports, 1u);  // Only matching nodes ship ObjectReports.
  ExpectConnectedTree(events, trace_id);
  sink.Clear();
}

// The sharded acceptance check: one DrainAndRefresh over 4 shards makes a
// single trace — the engine's root span, with one shard/drain and one
// shard/refresh child per shard linked via the explicit-parent handoff
// into the worker pool (the per-shard qm/tick_all spans nest below).
TEST(TracePropagationTest, ShardedDrainAndRefreshFormsOneConnectedTree) {
  MostDatabase db;
  ASSERT_TRUE(db.CreateClass("V", {}, /*spatial=*/true).ok());
  ASSERT_TRUE(
      db.DefineRegion("R1", Polygon::Rectangle({0, 0}, {50, 50})).ok());
  for (int i = 0; i < 12; ++i) {
    auto obj = db.CreateObject("V");
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(db.SetMotion("V", (*obj)->id(),
                             {static_cast<double>(-3 * i), 5}, {1, 0})
                    .ok());
  }
  ShardedEngine::Options opt;
  opt.shard_count = 4;
  ShardedEngine engine(&db, opt);
  auto q = ParseQuery("RETRIEVE o FROM V o WHERE EVENTUALLY INSIDE(o, R1)");
  ASSERT_TRUE(q.ok());
  auto cq = engine.RegisterContinuous(*q);
  ASSERT_TRUE(cq.ok());

  TraceSink& sink = TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);
  for (ObjectId id = 0; id < 12; ++id) {
    engine.EnqueueMotion("V", id, {static_cast<double>(id), 1}, {1, 0});
  }
  ASSERT_TRUE(engine.Advance(1).ok());
  sink.set_enabled(false);

  std::vector<TraceEvent> events = sink.Events();
  const TraceEvent* root = FindByName(events, "shard/drain_and_refresh");
  ASSERT_NE(root, nullptr);
  const uint64_t trace_id = root->trace_id;

  std::set<std::string> drained, refreshed;
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id) continue;
    if (std::string(e.name) == "shard/drain") {
      EXPECT_EQ(e.parent_span_id, root->span_id);
      drained.insert(AnnotationValue(e, "shard"));
    }
    if (std::string(e.name) == "shard/refresh") {
      EXPECT_EQ(e.parent_span_id, root->span_id);
      refreshed.insert(AnnotationValue(e, "shard"));
    }
  }
  EXPECT_EQ(drained.size(), 4u) << "one shard/drain per shard";
  EXPECT_EQ(refreshed.size(), 4u) << "one shard/refresh per shard";
  ExpectConnectedTree(events, trace_id);
  sink.Clear();
}

TEST(ChromeTraceJsonTest, MaskedExportIsDeterministic) {
  std::vector<TraceEvent> events(2);
  events[0].name = "root";
  events[0].component = "ftl";
  events[0].trace_id = 900;
  events[0].span_id = 901;
  events[0].parent_span_id = 0;
  events[0].start_ns = 123456789;
  events[0].duration_ns = 5000;
  events[0].thread = 3;
  events[0].annotations.push_back({"tick", "7"});
  events[1].name = "child";
  events[1].component = "";  // Falls back to the "most" category.
  events[1].trace_id = 900;
  events[1].span_id = 902;
  events[1].parent_span_id = 901;
  events[1].start_ns = 123460000;
  events[1].duration_ns = 1000;
  events[1].thread = 4;

  ChromeTraceOptions opts;
  opts.mask = true;
  const std::string expected =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"root\", \"cat\": \"ftl\", \"ph\": \"X\", \"ts\": 0, "
      "\"dur\": 1, \"pid\": 1, \"tid\": 0, \"args\": {\"trace_id\": \"1\", "
      "\"span_id\": \"2\", \"parent_span_id\": \"0\", \"tick\": \"7\"}},\n"
      "  {\"name\": \"child\", \"cat\": \"most\", \"ph\": \"X\", \"ts\": 1, "
      "\"dur\": 1, \"pid\": 1, \"tid\": 0, \"args\": {\"trace_id\": \"1\", "
      "\"span_id\": \"3\", \"parent_span_id\": \"2\"}}\n"
      "]}";
  EXPECT_EQ(ChromeTraceJson(events, opts), expected);
  // Masking is stable across repeated exports of the same buffer.
  EXPECT_EQ(ChromeTraceJson(events, opts), expected);
}

TEST(ChromeTraceJsonTest, UnmaskedExportUsesRealIdsAndMicroseconds) {
  std::vector<TraceEvent> events(1);
  events[0].name = "span";
  events[0].component = "test";
  events[0].trace_id = 11;
  events[0].span_id = 12;
  events[0].parent_span_id = 0;
  events[0].start_ns = 2500;   // 2.5 us.
  events[0].duration_ns = 1000;
  events[0].thread = 7;
  std::string json = ChromeTraceJson(events);
  EXPECT_NE(json.find("\"ts\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"11\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, EscapesAnnotationAndNameEdgeCases) {
  std::vector<TraceEvent> events(1);
  events[0].name = "weird\"name";
  events[0].component = "c\\at";
  events[0].annotations.push_back({"note", "a\"b\\c\nd\te\x01" "f"});
  std::string json = ChromeTraceJson(events);
  EXPECT_NE(json.find("\"weird\\\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"c\\\\at\""), std::string::npos);
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\u0001f"), std::string::npos);
}

}  // namespace
}  // namespace most
